/**
 * @file
 * Pluggable compute-backend layer behind the core::Matrix kernels.
 *
 * Every dense kernel in the library (GEMM, transposed-B GEMM, the
 * element-wise maps and row reductions) dispatches through the
 * process-active Backend, so an algorithm path never names an
 * implementation: swapping naive loops for blocked multithreaded
 * kernels — or, later, SIMD / batched / sharded ones — is a matter
 * of installing another backend.
 *
 * Three implementations ship today:
 *  - NaiveBackend: the original single-threaded reference kernels,
 *    kept verbatim as the op-count and bit-exactness reference.
 *  - ParallelBackend: cache-blocked, register-tiled kernels fanned
 *    out over a persistent thread pool (core/parallel.h).
 *  - SimdBackend: ParallelBackend plus a packed-panel vectorized
 *    GEMM with runtime ISA dispatch (core/simd.h; CTA_SIMD knob).
 *
 * Determinism contract: every backend produces results that are a
 * pure function of the inputs — independent of thread count. Work is
 * partitioned over OUTPUT rows only and each output element keeps a
 * fixed accumulation order (ascending k); reductions combine
 * per-chunk partials in ascending chunk order with
 * thread-count-independent chunking (core/parallel.h chunkSpans).
 * naive and parallel are bit-identical to each other everywhere;
 * simd is additionally bit-identical to them for gemmTransposedB,
 * mapRows and reduceRows, while its gemm uses one k-ascending FMA
 * chain per output element regardless of shape — bit-identical
 * across every ISA level, thread count and internal kernel routing,
 * differing from the reference chain only by FMA's removed
 * intermediate roundings (so the incremental-equals-batch serving
 * contracts hold within each backend). OpCounts are charged
 * analytically by the calling kernel wrappers and therefore never
 * depend on the backend or thread count.
 *
 * Selection: the default backend is chosen once from the CTA_BACKEND
 * environment variable ("simd", the default, "parallel", or
 * "naive"), with the thread count from CTA_THREADS; tests override
 * it with setActiveBackend().
 */

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/types.h"

namespace cta::core {

class Matrix;
class ThreadPool;

/** Abstract compute backend the Matrix kernels dispatch through. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Human-readable backend name (e.g. "naive", "parallel:8"). */
    virtual std::string name() const = 0;

    /** Worker threads this backend may use (1 for serial backends). */
    virtual int threadCount() const = 0;

    /**
     * True when gemm() accumulates each output element with a fused
     * multiply-add chain (one rounding per step) instead of the
     * naive mul-then-add chain. Kernels that must replicate a gemm's
     * numerics exactly (the fused decode kernel) dispatch on this.
     */
    virtual bool gemmFmaChains() const { return false; }

    /**
     * C = A * B. @p c is pre-sized to rows(A) x cols(B) and
     * zero-filled by the caller.
     */
    virtual void gemm(const Matrix &a, const Matrix &b,
                      Matrix &c) const = 0;

    /** C = A * B^T. @p c is pre-sized to rows(A) x rows(B). */
    virtual void gemmTransposedB(const Matrix &a, const Matrix &b,
                                 Matrix &c) const = 0;

    /**
     * Row-parallel map: invokes body(row_begin, row_end) over
     * disjoint chunks covering [0, rows) exactly once. The body must
     * only write state disjoint per row range.
     */
    virtual void
    mapRows(Index rows,
            const std::function<void(Index, Index)> &body) const = 0;

    /**
     * Row-parallel deterministic reduction: sums
     * body(row_begin, row_end) over the same chunks as mapRows(), in
     * ascending chunk order regardless of thread count.
     */
    virtual Wide
    reduceRows(Index rows,
               const std::function<Wide(Index, Index)> &body) const = 0;
};

/**
 * The original single-threaded kernels, unchanged — the reference
 * every other backend is validated against (tests/backend_test.cc).
 */
class NaiveBackend : public Backend
{
  public:
    std::string name() const override { return "naive"; }
    int threadCount() const override { return 1; }
    void gemm(const Matrix &a, const Matrix &b,
              Matrix &c) const override;
    void gemmTransposedB(const Matrix &a, const Matrix &b,
                         Matrix &c) const override;
    void mapRows(Index rows, const std::function<void(Index, Index)>
                                 &body) const override;
    Wide reduceRows(Index rows, const std::function<Wide(Index, Index)>
                                    &body) const override;
};

/**
 * Cache-blocked, register-tiled kernels over a persistent thread
 * pool. Bit-identical to NaiveBackend at any thread count (see the
 * determinism contract above): row-range partitioning plus
 * ascending-k accumulation per output element.
 */
class ParallelBackend : public Backend
{
  public:
    /**
     * @param threads worker count; 0 uses the process-global pool
     *        sized by CTA_THREADS / hardware concurrency.
     */
    explicit ParallelBackend(int threads = 0);
    ~ParallelBackend() override;

    std::string name() const override;
    int threadCount() const override;
    void gemm(const Matrix &a, const Matrix &b,
              Matrix &c) const override;
    void gemmTransposedB(const Matrix &a, const Matrix &b,
                         Matrix &c) const override;
    void mapRows(Index rows, const std::function<void(Index, Index)>
                                 &body) const override;
    Wide reduceRows(Index rows, const std::function<Wide(Index, Index)>
                                    &body) const override;

  protected:
    ThreadPool &pool() const;

  private:
    std::unique_ptr<ThreadPool> owned_; ///< set when threads > 0
};

/**
 * ParallelBackend with the GEMM replaced by the vectorized kernels
 * from core/simd.h (AVX-512 / AVX2 / NEON with a scalar fallback,
 * dispatched at runtime and forceable via CTA_SIMD). Every output
 * element is one k-ascending FMA chain: GEMMs with fewer than
 * kSimdMr rows — every per-token decode GEMM — skip the B pack but
 * keep the identical chain, so a value never depends on shape
 * routing, ISA level or thread count (see core/simd.h).
 */
class SimdBackend : public ParallelBackend
{
  public:
    using ParallelBackend::ParallelBackend;

    std::string name() const override;
    bool gemmFmaChains() const override { return true; }
    void gemm(const Matrix &a, const Matrix &b,
              Matrix &c) const override;
};

/**
 * The backend all Matrix kernels currently dispatch through. The
 * default is resolved once from CTA_BACKEND / CTA_THREADS.
 */
Backend &activeBackend();

/**
 * Installs @p backend as the process-active backend (caller keeps
 * ownership; pass nullptr to restore the environment default).
 * Returns the previously active backend. Not thread-safe against
 * concurrent kernel dispatch — switch backends only between
 * computations (tests, bench setup).
 */
Backend *setActiveBackend(Backend *backend);

/**
 * Factory: "naive", "parallel" or "simd" (the pooled ones optionally
 * suffixed ":<threads>"). Fatal on unknown names.
 */
std::unique_ptr<Backend> makeBackend(const std::string &spec);

} // namespace cta::core

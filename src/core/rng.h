/**
 * @file
 * Deterministic random number generation for the whole library.
 *
 * All randomness in CTA (LSH hyperparameters, synthetic workloads,
 * test fixtures) flows through Rng so every experiment is exactly
 * reproducible from a 64-bit seed. The engine is xoshiro256++ which
 * is fast, has a 256-bit state and passes BigCrush.
 */

#pragma once

#include <array>
#include <cstdint>

#include "core/types.h"

namespace cta::core {

/**
 * Seedable xoshiro256++ engine with convenience distributions.
 *
 * Not thread-safe; create one Rng per thread / per experiment.
 */
class Rng
{
  public:
    /** Constructs the engine from a 64-bit seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0xC0FFEEull);

    /** Returns the next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform real in [0, 1). */
    Real uniform();

    /** Uniform real in [lo, hi). */
    Real uniform(Real lo, Real hi);

    /** Standard normal via Box-Muller (cached second sample). */
    Real normal();

    /** Normal with the given mean and standard deviation. */
    Real normal(Real mean, Real stddev);

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(Real p);

    /**
     * Splits off an independent child generator.
     *
     * The child is seeded from this engine's stream so sub-experiments
     * can be re-run independently while remaining reproducible.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    Real cachedNormal_ = 0;
    bool hasCachedNormal_ = false;
};

} // namespace cta::core

/**
 * @file
 * Minimal gem5-style logging and error handling.
 *
 * panic()  — an internal invariant was violated (a library bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  — the caller supplied an invalid configuration; exits
 *            with status 1.
 * warn()   — something suspicious but survivable happened.
 */

#pragma once

#include <sstream>
#include <string>

namespace cta::core {

/** Aborts the process after printing @p msg with source location. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exits the process with status 1 after printing @p msg. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Prints a warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail {

/** Stream-concatenates all arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    ((oss << args), ...);
    return oss.str();
}

} // namespace detail

} // namespace cta::core

#define CTA_PANIC(...) \
    ::cta::core::panicImpl(__FILE__, __LINE__, \
                           ::cta::core::detail::concat(__VA_ARGS__))

#define CTA_FATAL(...) \
    ::cta::core::fatalImpl(__FILE__, __LINE__, \
                           ::cta::core::detail::concat(__VA_ARGS__))

#define CTA_WARN(...) \
    ::cta::core::warnImpl(__FILE__, __LINE__, \
                          ::cta::core::detail::concat(__VA_ARGS__))

/** Checks an internal invariant; violations are library bugs. */
#define CTA_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            CTA_PANIC("assertion failed: ", #cond, " ", \
                      ::cta::core::detail::concat(__VA_ARGS__)); \
        } \
    } while (false)

/** Validates a user-supplied argument or configuration. */
#define CTA_REQUIRE(cond, ...) \
    do { \
        if (!(cond)) { \
            CTA_FATAL("requirement failed: ", #cond, " ", \
                      ::cta::core::detail::concat(__VA_ARGS__)); \
        } \
    } while (false)

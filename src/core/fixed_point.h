/**
 * @file
 * Fixed-point (FxP) number formats and matrix quantization.
 *
 * The CTA accelerator computes in fixed point throughout (paper
 * SIV-C): tokens are 13-bit with 6 integer / 7 fractional bits,
 * weight-memory values are 12-bit with per-tensor integer widths
 * chosen to cover the value range (e.g. the LSH direction matrix A,
 * drawn from N(0,1), gets 3 integer bits by the three-sigma
 * guideline), and centroids / compressed Q,K,V are 12-bit Q6.6.
 *
 * Quantization here is simulated: values are rounded to the FxP grid
 * and saturated to the representable range but kept in Real storage,
 * which is exactly how the paper's PyTorch extension models it.
 */

#pragma once

#include <string>

#include "core/types.h"

namespace cta::core {

class Matrix;

/**
 * A signed two's-complement fixed-point format. The integer field
 * includes the sign, matching the paper's accounting (tokens are
 * "13 bit, with 6 integer bits and 7 fractional bits": 6 + 7 = 13).
 */
struct FxpFormat
{
    /** Total bit width. */
    int totalBits;
    /** Fractional bits (scale = 2^fracBits). */
    int fracBits;

    /** Integer bits including sign (total - frac). */
    int intBits() const { return totalBits - fracBits; }

    /** Quantization step = 2^-fracBits. */
    Real step() const;

    /** Largest representable value. */
    Real maxValue() const;

    /** Smallest (most negative) representable value. */
    Real minValue() const;

    /** Rounds @p x to the grid and saturates to the range. */
    Real quantize(Real x) const;

    /** Raw integer code for @p x (round-to-nearest, saturated). */
    std::int64_t encode(Real x) const;

    /** Value for raw integer code @p code. */
    Real decode(std::int64_t code) const;

    /** e.g. "Q6.7 (13b)". */
    std::string toString() const;
};

/** Quantization scheme from paper SIV-C (Design Details). */
struct QuantScheme
{
    /** Tokens: 13-bit, 6 integer + 7 fractional bits. */
    FxpFormat tokens{13, 7};
    /** Linear weights: 12-bit, range-fit; default Q3.9 for |w| < 4. */
    FxpFormat weights{12, 9};
    /** LSH direction matrix A ~ N(0,1): 3 int bits (three sigma). */
    FxpFormat lshParams{12, 9};
    /** Centroids and compressed Q/K/V: 12-bit, 6 int + 6 frac. */
    FxpFormat centroids{12, 6};
    /** Attention scores / probabilities kept at 16-bit Q6.9. */
    FxpFormat scores{16, 9};

    /** The configuration used throughout the paper's evaluation. */
    static QuantScheme paperDefault() { return {}; }
};

/** Returns a copy of @p m with every element quantized to @p fmt. */
Matrix quantizeMatrix(const Matrix &m, const FxpFormat &fmt);

/**
 * Picks the 12-bit format whose integer bits minimally cover
 * [-range, range] (paper: "minimal integer bits to cover the value
 * range leaving the rest bits as fractional bits").
 */
FxpFormat fitWeightFormat(const Matrix &m, int total_bits = 12);

} // namespace cta::core

#include "core/matrix.h"

#include <algorithm>
#include <cmath>

#include "core/backend.h"
#include "core/logging.h"
#include "core/op_counter.h"
#include "core/rng.h"

namespace cta::core {

Matrix::Matrix(Index rows, Index cols, Real fill)
    : rows_(rows), cols_(cols)
{
    CTA_REQUIRE(rows >= 0 && cols >= 0,
                "matrix dims must be non-negative, got ", rows, "x", cols);
    // Cast the factors BEFORE multiplying: the product is formed in
    // std::size_t, so it cannot narrow through Index on the way in.
    data_.assign(static_cast<std::size_t>(rows) *
                     static_cast<std::size_t>(cols),
                 fill);
}

Real &
Matrix::operator()(Index r, Index c)
{
    CTA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
               "index (", r, ",", c, ") out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
}

Real
Matrix::operator()(Index r, Index c) const
{
    CTA_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
               "index (", r, ",", c, ") out of ", rows_, "x", cols_);
    return data_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
}

std::span<Real>
Matrix::row(Index r)
{
    CTA_ASSERT(r >= 0 && r < rows_, "row ", r, " out of ", rows_);
    return {data_.data() +
                static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
}

std::span<const Real>
Matrix::row(Index r) const
{
    CTA_ASSERT(r >= 0 && r < rows_, "row ", r, " out of ", rows_);
    return {data_.data() +
                static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
}

void
Matrix::fill(Real value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Matrix
Matrix::rowSlice(Index begin, Index end) const
{
    CTA_REQUIRE(begin >= 0 && begin <= end && end <= rows_,
                "bad row slice [", begin, ",", end, ") of ", rows_);
    Matrix out(end - begin, cols_);
    // Form byte offsets in std::size_t, not Index (narrowing audit).
    const auto first = static_cast<std::size_t>(begin) *
                       static_cast<std::size_t>(cols_);
    const auto last = static_cast<std::size_t>(end) *
                      static_cast<std::size_t>(cols_);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(first),
              data_.begin() + static_cast<std::ptrdiff_t>(last),
              out.data_.begin());
    return out;
}

void
Matrix::appendRows(const Matrix &other)
{
    if (other.empty())
        return;
    if (empty()) {
        *this = other;
        return;
    }
    CTA_REQUIRE(other.cols_ == cols_, "appendRows column mismatch: ",
                cols_, " vs ", other.cols_);
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
}

Matrix
Matrix::randomNormal(Index rows, Index cols, Rng &rng, Real mean,
                     Real stddev)
{
    Matrix out(rows, cols);
    for (auto &value : out.data_)
        value = rng.normal(mean, stddev);
    return out;
}

Matrix
Matrix::randomUniform(Index rows, Index cols, Rng &rng, Real lo, Real hi)
{
    Matrix out(rows, cols);
    for (auto &value : out.data_)
        value = rng.uniform(lo, hi);
    return out;
}

Matrix
Matrix::identity(Index order)
{
    Matrix out(order, order);
    for (Index i = 0; i < order; ++i)
        out(i, i) = 1;
    return out;
}

Matrix
matmul(const Matrix &a, const Matrix &b, OpCounts *counts)
{
    CTA_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch: ",
                a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix c(a.rows(), b.cols());
    activeBackend().gemm(a, b, c);
    // Op accounting is analytic — identical for every backend and
    // thread count (the OpCounts determinism contract).
    if (counts)
        counts->macs += static_cast<std::uint64_t>(a.rows()) *
                        static_cast<std::uint64_t>(a.cols()) *
                        static_cast<std::uint64_t>(b.cols());
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b, OpCounts *counts)
{
    CTA_REQUIRE(a.cols() == b.cols(), "matmulTransB shape mismatch: ",
                a.rows(), "x", a.cols(), " * (", b.rows(), "x", b.cols(),
                ")^T");
    Matrix c(a.rows(), b.rows());
    activeBackend().gemmTransposedB(a, b, c);
    if (counts)
        counts->macs += static_cast<std::uint64_t>(a.rows()) *
                        static_cast<std::uint64_t>(b.rows()) *
                        static_cast<std::uint64_t>(a.cols());
    return c;
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    // Parallel over OUTPUT rows (columns of A): disjoint writes.
    activeBackend().mapRows(a.cols(), [&](Index begin, Index end) {
        for (Index j = begin; j < end; ++j)
            for (Index i = 0; i < a.rows(); ++i)
                t(j, i) = a(i, j);
    });
    return t;
}

Matrix
add(const Matrix &a, const Matrix &b, OpCounts *counts)
{
    CTA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "add shape mismatch");
    Matrix c(a.rows(), a.cols());
    activeBackend().mapRows(a.rows(), [&](Index begin, Index end) {
        const Index lo = begin * a.cols();
        const Index hi = end * a.cols();
        for (Index i = lo; i < hi; ++i)
            c.data()[i] = a.data()[i] + b.data()[i];
    });
    if (counts)
        counts->adds += static_cast<std::uint64_t>(a.size());
    return c;
}

Matrix
sub(const Matrix &a, const Matrix &b, OpCounts *counts)
{
    CTA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "sub shape mismatch");
    Matrix c(a.rows(), a.cols());
    activeBackend().mapRows(a.rows(), [&](Index begin, Index end) {
        const Index lo = begin * a.cols();
        const Index hi = end * a.cols();
        for (Index i = lo; i < hi; ++i)
            c.data()[i] = a.data()[i] - b.data()[i];
    });
    if (counts)
        counts->adds += static_cast<std::uint64_t>(a.size());
    return c;
}

Matrix
scale(const Matrix &a, Real s, OpCounts *counts)
{
    Matrix c(a.rows(), a.cols());
    activeBackend().mapRows(a.rows(), [&](Index begin, Index end) {
        const Index lo = begin * a.cols();
        const Index hi = end * a.cols();
        for (Index i = lo; i < hi; ++i)
            c.data()[i] = a.data()[i] * s;
    });
    if (counts)
        counts->muls += static_cast<std::uint64_t>(a.size());
    return c;
}

Real
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    CTA_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "maxAbsDiff shape mismatch");
    Real max_diff = 0;
    for (Index i = 0; i < a.size(); ++i)
        max_diff = std::max(max_diff, std::abs(a.data()[i] - b.data()[i]));
    return max_diff;
}

Real
frobeniusNorm(const Matrix &a)
{
    const Wide acc = activeBackend().reduceRows(
        a.rows(), [&](Index begin, Index end) {
            const Index lo = begin * a.cols();
            const Index hi = end * a.cols();
            Wide partial = 0;
            for (Index i = lo; i < hi; ++i)
                partial +=
                    static_cast<Wide>(a.data()[i]) * a.data()[i];
            return partial;
        });
    return static_cast<Real>(std::sqrt(acc));
}

Real
relativeError(const Matrix &a, const Matrix &ref)
{
    const Real denom = frobeniusNorm(ref);
    if (denom == 0)
        return frobeniusNorm(a) == 0 ? 0 : 1;
    Matrix diff = sub(a, ref);
    return frobeniusNorm(diff) / denom;
}

} // namespace cta::core

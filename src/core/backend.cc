#include "core/backend.h"

#include <algorithm>
#include <cstring>

#include "core/env.h"
#include "core/logging.h"
#include "core/matrix.h"
#include "core/parallel.h"
#include "core/simd.h"

namespace cta::core {

namespace {

/**
 * Shared chunk grain for the row map/reduce entry points. Both
 * backends use the same grain so their reduction chunking — and
 * therefore every floating-point reduction result — is identical.
 */
constexpr Index kRowGrain = 8;

/**
 * GEMMs below this MAC count run inline even on pooled backends.
 * Sized from the micro-kernel sweep: at 128^3 (2.1M MACs) the serial
 * blocked kernel beats any fan-out — dispatch overhead dominates —
 * while 256^3 (16.8M) gains from the pool. Outputs are unchanged
 * either way (the determinism contract makes the partition
 * invisible), so the cutover is purely a scheduling decision.
 */
constexpr Index kSerialGemmMacs = 4 * 1024 * 1024;

/**
 * Reference ikj GEMM over output rows [row_begin, row_end): for each
 * output element, k ascends 0..K-1 — the accumulation order every
 * backend must reproduce bit-exactly.
 */
void
gemmRowsNaive(const Matrix &a, const Matrix &b, Matrix &c,
              Index row_begin, Index row_end)
{
    for (Index i = row_begin; i < row_end; ++i) {
        Real *crow = c.row(i).data();
        for (Index k = 0; k < a.cols(); ++k) {
            const Real aik = a(i, k);
            const Real *brow = b.row(k).data();
            for (Index j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
}

/** Reference dot-product A * B^T over output rows [row_begin, row_end). */
void
gemmTransBRowsNaive(const Matrix &a, const Matrix &b, Matrix &c,
                    Index row_begin, Index row_end)
{
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        for (Index j = 0; j < b.rows(); ++j) {
            const Real *brow = b.row(j).data();
            Wide acc = 0;
            for (Index k = 0; k < a.cols(); ++k)
                acc += static_cast<Wide>(arow[k]) * brow[k];
            c(i, j) = static_cast<Real>(acc);
        }
    }
}

/** Register-tile width of the blocked GEMM micro-kernel. */
constexpr Index kNr = 16;

/**
 * 1 x kNr GEMM micro-kernel: one output row's kNr-column tile
 * accumulated in registers across the full depth (k ascending, so
 * each element's rounding sequence matches gemmRowsNaive).
 */
inline void
gemmTile1(const Real *__restrict a0, const Real *__restrict bcol,
          Real *__restrict c0, Index depth, Index width)
{
    Real acc0[kNr];
    for (Index t = 0; t < kNr; ++t)
        acc0[t] = c0[t];
    for (Index k = 0; k < depth; ++k) {
        const Real *__restrict brow = bcol + k * width;
        const Real a0k = a0[k];
        for (Index t = 0; t < kNr; ++t)
            acc0[t] += a0k * brow[t];
    }
    for (Index t = 0; t < kNr; ++t)
        c0[t] = acc0[t];
}

/**
 * Blocked GEMM over output rows [row_begin, row_end): a 4 x kNr
 * register tile of C accumulates across the whole depth, so each
 * C element is read and written once instead of once per k (the
 * naive ikj order re-touches the full C row every k iteration). B
 * columns stream tile-by-tile; the 4-row block reuses each B load
 * 4x and gives 4 independent accumulator chains per column. k is
 * ascending per output element — bit-identical to gemmRowsNaive.
 */
void
gemmRowsBlocked(const Matrix &a, const Matrix &b, Matrix &c,
                Index row_begin, Index row_end)
{
    const Index depth = a.cols();
    const Index width = b.cols();
    const Real *__restrict bd = b.data();
    Index i = row_begin;
    for (; i + 4 <= row_end; i += 4) {
        const Real *__restrict a0 = a.row(i).data();
        const Real *__restrict a1 = a.row(i + 1).data();
        const Real *__restrict a2 = a.row(i + 2).data();
        const Real *__restrict a3 = a.row(i + 3).data();
        Real *__restrict c0 = c.row(i).data();
        Real *__restrict c1 = c.row(i + 1).data();
        Real *__restrict c2 = c.row(i + 2).data();
        Real *__restrict c3 = c.row(i + 3).data();
        Index j = 0;
        for (; j + kNr <= width; j += kNr) {
            Real acc0[kNr], acc1[kNr], acc2[kNr], acc3[kNr];
            for (Index t = 0; t < kNr; ++t) {
                acc0[t] = c0[j + t];
                acc1[t] = c1[j + t];
                acc2[t] = c2[j + t];
                acc3[t] = c3[j + t];
            }
            const Real *__restrict bcol = bd + j;
            for (Index k = 0; k < depth; ++k) {
                const Real *__restrict brow = bcol + k * width;
                const Real a0k = a0[k];
                const Real a1k = a1[k];
                const Real a2k = a2[k];
                const Real a3k = a3[k];
                for (Index t = 0; t < kNr; ++t) {
                    const Real bkt = brow[t];
                    acc0[t] += a0k * bkt;
                    acc1[t] += a1k * bkt;
                    acc2[t] += a2k * bkt;
                    acc3[t] += a3k * bkt;
                }
            }
            for (Index t = 0; t < kNr; ++t) {
                c0[j + t] = acc0[t];
                c1[j + t] = acc1[t];
                c2[j + t] = acc2[t];
                c3[j + t] = acc3[t];
            }
        }
        // Column tail: per-element register accumulation, k ascending.
        for (; j < width; ++j) {
            Real s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
            for (Index k = 0; k < depth; ++k) {
                const Real bkj = bd[k * width + j];
                s0 += a0[k] * bkj;
                s1 += a1[k] * bkj;
                s2 += a2[k] * bkj;
                s3 += a3[k] * bkj;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
        }
    }
    // Row tail (< 4 rows): 1 x kNr tiles, then scalar columns.
    for (; i < row_end; ++i) {
        const Real *__restrict a0 = a.row(i).data();
        Real *__restrict c0 = c.row(i).data();
        Index j = 0;
        for (; j + kNr <= width; j += kNr)
            gemmTile1(a0, bd + j, c0 + j, depth, width);
        for (; j < width; ++j) {
            Real s0 = c0[j];
            for (Index k = 0; k < depth; ++k)
                s0 += a0[k] * bd[k * width + j];
            c0[j] = s0;
        }
    }
}

/**
 * Blocked A * B^T over output rows [row_begin, row_end): 4 B rows
 * share one pass over the A row, turning the latency-bound single
 * accumulator chain into 4 independent chains. Each output element
 * keeps one accumulator with k ascending — bit-identical to
 * gemmTransBRowsNaive.
 */
void
gemmTransBRowsBlocked(const Matrix &a, const Matrix &b, Matrix &c,
                      Index row_begin, Index row_end)
{
    const Index depth = a.cols();
    const Index n = b.rows();
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        Index j = 0;
        for (; j + 4 <= n; j += 4) {
            const Real *b0 = b.row(j).data();
            const Real *b1 = b.row(j + 1).data();
            const Real *b2 = b.row(j + 2).data();
            const Real *b3 = b.row(j + 3).data();
            Wide acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
            for (Index k = 0; k < depth; ++k) {
                const Wide ak = arow[k];
                acc0 += ak * b0[k];
                acc1 += ak * b1[k];
                acc2 += ak * b2[k];
                acc3 += ak * b3[k];
            }
            c(i, j) = static_cast<Real>(acc0);
            c(i, j + 1) = static_cast<Real>(acc1);
            c(i, j + 2) = static_cast<Real>(acc2);
            c(i, j + 3) = static_cast<Real>(acc3);
        }
        for (; j < n; ++j) {
            const Real *brow = b.row(j).data();
            Wide acc = 0;
            for (Index k = 0; k < depth; ++k)
                acc += static_cast<Wide>(arow[k]) * brow[k];
            c(i, j) = static_cast<Real>(acc);
        }
    }
}

/**
 * Deterministic chunked reduction shared by every backend: partials
 * over chunkSpans(0, rows, kRowGrain) summed in ascending chunk
 * order. @p partial_fn fills partials[chunk]; it may run serially or
 * on a pool — the combination order is fixed either way.
 */
Wide
combineChunks(const std::vector<Wide> &partials)
{
    Wide total = 0;
    for (const Wide partial : partials)
        total += partial;
    return total;
}

} // namespace

void
NaiveBackend::gemm(const Matrix &a, const Matrix &b, Matrix &c) const
{
    gemmRowsNaive(a, b, c, 0, a.rows());
}

void
NaiveBackend::gemmTransposedB(const Matrix &a, const Matrix &b,
                              Matrix &c) const
{
    gemmTransBRowsNaive(a, b, c, 0, a.rows());
}

void
NaiveBackend::mapRows(Index rows,
                      const std::function<void(Index, Index)> &body) const
{
    if (rows > 0)
        body(0, rows);
}

Wide
NaiveBackend::reduceRows(Index rows,
                         const std::function<Wide(Index, Index)> &body)
    const
{
    const auto spans = chunkSpans(0, rows, kRowGrain);
    std::vector<Wide> partials(spans.size());
    for (std::size_t chunk = 0; chunk < spans.size(); ++chunk)
        partials[chunk] =
            body(spans[chunk].first, spans[chunk].second);
    return combineChunks(partials);
}

ParallelBackend::ParallelBackend(int threads)
{
    CTA_REQUIRE(threads >= 0, "negative thread count ", threads);
    if (threads > 0)
        owned_ = std::make_unique<ThreadPool>(threads);
}

ParallelBackend::~ParallelBackend() = default;

ThreadPool &
ParallelBackend::pool() const
{
    return owned_ ? *owned_ : ThreadPool::global();
}

std::string
ParallelBackend::name() const
{
    return "parallel:" + std::to_string(threadCount());
}

int
ParallelBackend::threadCount() const
{
    return pool().threadCount();
}

void
ParallelBackend::gemm(const Matrix &a, const Matrix &b, Matrix &c) const
{
    if (a.rows() * a.cols() * b.cols() <= kSerialGemmMacs) {
        gemmRowsBlocked(a, b, c, 0, a.rows());
        return;
    }
    parallelFor(pool(), 0, a.rows(),
                [&](Index row_begin, Index row_end) {
                    gemmRowsBlocked(a, b, c, row_begin, row_end);
                },
                /*grain=*/4);
}

void
ParallelBackend::gemmTransposedB(const Matrix &a, const Matrix &b,
                                 Matrix &c) const
{
    if (a.rows() * a.cols() * b.rows() <= kSerialGemmMacs) {
        gemmTransBRowsBlocked(a, b, c, 0, a.rows());
        return;
    }
    parallelFor(pool(), 0, a.rows(),
                [&](Index row_begin, Index row_end) {
                    gemmTransBRowsBlocked(a, b, c, row_begin, row_end);
                },
                /*grain=*/4);
}

void
ParallelBackend::mapRows(Index rows,
                         const std::function<void(Index, Index)> &body)
    const
{
    parallelFor(pool(), 0, rows, body, kRowGrain);
}

Wide
ParallelBackend::reduceRows(Index rows,
                            const std::function<Wide(Index, Index)>
                                &body) const
{
    const auto spans = chunkSpans(0, rows, kRowGrain);
    if (spans.size() <= 1) {
        std::vector<Wide> partials(spans.size());
        for (std::size_t chunk = 0; chunk < spans.size(); ++chunk)
            partials[chunk] =
                body(spans[chunk].first, spans[chunk].second);
        return combineChunks(partials);
    }
    std::vector<Wide> partials(spans.size());
    pool().run(static_cast<Index>(spans.size()), [&](Index chunk) {
        const auto &span = spans[static_cast<std::size_t>(chunk)];
        partials[static_cast<std::size_t>(chunk)] =
            body(span.first, span.second);
    });
    return combineChunks(partials);
}

std::string
SimdBackend::name() const
{
    return std::string("simd[") +
           simdLevelName(activeSimdLevel()) + "]:" +
           std::to_string(threadCount());
}

void
SimdBackend::gemm(const Matrix &a, const Matrix &b, Matrix &c) const
{
    // Short A (every decode-path GEMM is M = 1): skip the B pack —
    // it would cost more than the multiply itself. Same FMA chain per
    // element as the packed path, so the routing is invisible.
    if (a.rows() < kSimdMr) {
        simdVecMatRows(a, b, c, 0, a.rows());
        return;
    }
    // When the width is a multiple of the panel width, row-major B IS
    // a valid panel sequence read with k-stride = width, so the pack —
    // a serial full-B copy billed to every GEMM — is skipped and the
    // kernels read B in place. Ragged widths still pack to get the
    // zero-padded tail panel.
    std::vector<Real> packed;
    const Real *panels;
    Index bstride;
    if (b.cols() % kSimdPanelWidth == 0) {
        panels = b.data();
        bstride = b.cols();
    } else {
        simdPackB(b, packed);
        panels = packed.data();
        bstride = kSimdPanelWidth;
    }
    if (a.rows() * a.cols() * b.cols() <= kSerialGemmMacs) {
        simdGemmRowsPacked(a, panels, b.cols(), c, 0, a.rows(),
                           0, a.cols(), bstride);
        return;
    }
    // Depth slices OUTSIDE the thread fan-out: each kKc-deep slice of
    // the packed B (width x 1 KB at kKc = 256) stays L2-resident
    // across every row chunk, so B streams from memory once per GEMM
    // instead of once per chunk — past ~256^3 the working set
    // outgrows L2 and that re-streaming, not the FMA ports, is what
    // bounds the kernel. Slices continue each element's k-ascending
    // FMA chain through an exact fp32 store/load, so the slicing —
    // like the row partition — is invisible in the results.
    constexpr Index kKc = 256;
    const Index depth = a.cols();
    for (Index k0 = 0; k0 < depth; k0 += kKc) {
        const Index k1 = std::min<Index>(depth, k0 + kKc);
        // Grain 16 = 6 + 6 + 4: every full chunk decomposes into the
        // tall micro-kernels with no 1-row tail.
        parallelFor(pool(), 0, a.rows(),
                    [&](Index row_begin, Index row_end) {
                        simdGemmRowsPacked(a, panels, b.cols(), c,
                                           row_begin, row_end, k0, k1,
                                           bstride);
                    },
                    /*grain=*/16);
    }
}

namespace {

/** Test override slot; nullptr means "use the environment default". */
Backend *&
activeBackendSlot()
{
    static Backend *slot = nullptr;
    return slot;
}

/** The process default, resolved once from CTA_BACKEND. */
Backend &
defaultBackend()
{
    static std::unique_ptr<Backend> instance = [] {
        const char *env = envString("CTA_BACKEND");
        return makeBackend(env ? env : "simd");
    }();
    return *instance;
}

} // namespace

Backend &
activeBackend()
{
    Backend *override_backend = activeBackendSlot();
    return override_backend ? *override_backend : defaultBackend();
}

Backend *
setActiveBackend(Backend *backend)
{
    Backend *previous = activeBackendSlot();
    activeBackendSlot() = backend;
    return previous;
}

std::unique_ptr<Backend>
makeBackend(const std::string &spec)
{
    const auto pooledThreads = [&spec](const char *prefix) {
        const long threads =
            parseEnvInt(spec.c_str() + std::strlen(prefix),
                        "CTA_BACKEND thread count");
        CTA_REQUIRE(threads >= 1 && threads <= 64,
                    "backend thread count in '", spec,
                    "' outside [1, 64]");
        return static_cast<int>(threads);
    };
    if (spec == "naive")
        return std::make_unique<NaiveBackend>();
    if (spec == "parallel")
        return std::make_unique<ParallelBackend>();
    if (spec == "simd")
        return std::make_unique<SimdBackend>();
    if (spec.rfind("parallel:", 0) == 0)
        return std::make_unique<ParallelBackend>(
            pooledThreads("parallel:"));
    if (spec.rfind("simd:", 0) == 0)
        return std::make_unique<SimdBackend>(pooledThreads("simd:"));
    CTA_PANIC("unknown backend '", spec,
              "' (expected naive | parallel[:<threads>] | "
              "simd[:<threads>])");
}

} // namespace cta::core

/**
 * @file
 * Persistent worker-thread pool and a deterministic parallel-for,
 * the substrate of the compute-backend layer (core/backend.h) and of
 * the per-head / per-case fan-out in the upper layers.
 *
 * Determinism contract: chunkSpans() partitions an iteration range as
 * a function of the range and the grain ONLY — never of the thread
 * count — and every reduction in the library combines per-chunk
 * partials in ascending chunk order. The thread count therefore only
 * decides which worker executes which chunk; all floating-point
 * results and all OpCounts are bit-identical for any CTA_THREADS
 * setting (verified by tests/backend_test.cc).
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.h"

namespace cta::core {

/**
 * Strictly parses @p text as a base-10 integer. Exits via CTA_FATAL
 * (naming @p what) on empty input, trailing garbage ("8x"), or
 * overflow — a malformed CTA_THREADS/CTA_BACKEND must never silently
 * degrade to a default.
 */
long parseEnvInt(const char *text, const char *what);

/**
 * Worker count used by the process-global pool: the CTA_THREADS
 * environment variable when set (malformed values are fatal;
 * out-of-range values clamp to [1, 64] with a warning), otherwise
 * std::thread::hardware_concurrency() clamped to [1, 16]. Read once
 * at first use of the global pool.
 */
int configuredThreadCount();

/**
 * The pure policy behind configuredThreadCount(), testable without
 * touching the environment: @p env_threads is the parsed CTA_THREADS
 * value (nullopt when unset), @p hardware the reported hardware
 * concurrency — 0 (the standard's "unknown" value) resolves to 1.
 * Warns once per process when the requested count exceeds the
 * hardware concurrency; @p warned_oversubscribed (optional) reports
 * that condition on every call regardless of the once-latch.
 */
int resolveThreadCount(std::optional<long> env_threads,
                       unsigned hardware,
                       bool *warned_oversubscribed = nullptr);

/**
 * Deterministic static partition of [begin, end) into contiguous
 * chunks of at least @p grain iterations, capped at kMaxChunks
 * chunks. Depends only on its arguments (see the determinism
 * contract above). Returns no spans for an empty range.
 */
std::vector<std::pair<Index, Index>> chunkSpans(Index begin, Index end,
                                                Index grain = 1);

/** Upper bound on the number of chunks chunkSpans() produces. */
inline constexpr Index kMaxChunks = 64;

/**
 * A pool of persistent worker threads draining task batches through
 * a shared ticket counter (work stealing over a fixed task list).
 *
 * run() publishes the batch and every participant — the calling
 * thread plus any worker that wakes in time — claims the next
 * unclaimed task index until the batch is drained. A worker that
 * finishes its task immediately steals the next one, so load
 * imbalance between chunks never idles a thread; a worker that
 * arrives after the caller drained everything claims nothing and
 * goes back to sleep. Which thread ran which task is
 * non-deterministic, but every task runs exactly once and tasks are
 * mutually independent by contract, so results are bit-identical for
 * any schedule.
 *
 * Fan-out is skipped entirely — the batch runs inline on the caller
 * — when the pool has more threads than the machine has hardware
 * concurrency to run them (oversubscription can only add context
 * switches), when run() is re-entered from inside a task, or when
 * another run() is in flight. Inline execution processes the same
 * tasks in ascending order: identical results by the same contract.
 */
class ThreadPool
{
  public:
    /**
     * Spawns @p threads - 1 workers (the caller is the last one).
     * @p force_fanout disables the oversubscription inline shortcut
     * so tests can exercise the cross-thread claiming path on any
     * machine.
     */
    explicit ThreadPool(int threads, bool force_fanout = false);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total worker count including the calling thread. */
    int threadCount() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Executes task(t) for every t in [0, num_tasks), distributed
     * over the workers; returns when all tasks finished. If any task
     * threw, the exception of the lowest-numbered failing task is
     * rethrown after the batch completes.
     */
    void run(Index num_tasks, const std::function<void(Index)> &task);

    /** Process-wide pool, sized by configuredThreadCount(). */
    static ThreadPool &global();

  private:
    void workerLoop();

    /** Claims and runs tasks off nextTask_ until the batch drains. */
    void drainTasks(Index num_tasks,
                    const std::function<void(Index)> &task,
                    std::vector<std::exception_ptr> &errors);

    std::vector<std::thread> workers_;
    int hardwareThreads_ = 1; ///< snapshot at construction, >= 1
    bool forceFanout_ = false;

    std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::uint64_t epoch_ = 0;      ///< batch generation counter
    Index numTasks_ = 0;           ///< tasks in the current batch
    const std::function<void(Index)> *task_ = nullptr;
    std::vector<std::exception_ptr> *errors_ = nullptr;
    int pendingWorkers_ = 0;       ///< spawned workers still running
    bool stop_ = false;

    /** Next unclaimed task index of the current batch. Reset under
     *  mutex_ before each epoch; claimed lock-free while draining. */
    std::atomic<Index> nextTask_{0};

    std::mutex runMutex_;          ///< serializes concurrent run()s
};

/**
 * Applies body(chunk_begin, chunk_end) over the chunkSpans() of
 * [begin, end), potentially concurrently on @p pool. Chunks are
 * disjoint and cover the range exactly once; the body must only
 * write state disjoint per chunk.
 */
void parallelFor(ThreadPool &pool, Index begin, Index end,
                 const std::function<void(Index, Index)> &body,
                 Index grain = 1);

/** parallelFor() on the process-global pool. */
void parallelFor(Index begin, Index end,
                 const std::function<void(Index, Index)> &body,
                 Index grain = 1);

} // namespace cta::core

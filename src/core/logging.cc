#include "core/logging.h"

#include <cstdio>
#include <cstdlib>

namespace cta::core {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s:%d: %s\n", file, line, msg.c_str());
}

} // namespace cta::core

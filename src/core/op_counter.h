/**
 * @file
 * Arithmetic operation accounting.
 *
 * Every algorithm path (exact attention, CTA, ELSA) reports an
 * OpCounts so the computation-reduction ratios RL / RA (paper Fig. 11)
 * and the roofline hardware models consume *measured* operation
 * counts. The closed-form complexity expressions from paper SIII-D are
 * verified against these counters in tests/cta_complexity_test.cc.
 */

#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"

namespace cta::core {

/** Counts of scalar arithmetic operations performed by a kernel. */
struct OpCounts
{
    /** Fused multiply-accumulate operations (1 mul + 1 add). */
    std::uint64_t macs = 0;
    /** Standalone additions / subtractions. */
    std::uint64_t adds = 0;
    /** Standalone multiplications. */
    std::uint64_t muls = 0;
    /** Divisions (or reciprocal lookups). */
    std::uint64_t divs = 0;
    /** Exponential evaluations (or exp-LUT lookups). */
    std::uint64_t exps = 0;
    /** Comparisons (max trees, threshold tests, trie probes). */
    std::uint64_t cmps = 0;
    /** Floor/rounding operations (LSH bucketization). */
    std::uint64_t floors = 0;

    /** Sum of all operation classes. */
    std::uint64_t total() const;

    /**
     * Total multiplier-engaged operations (macs + muls). This is the
     * quantity the paper's RL/RA ratios and the ideal-accelerator
     * model (same multiplier count at peak) are defined over.
     */
    std::uint64_t multiplierOps() const { return macs + muls; }

    /** Equivalent FLOPs, counting a MAC as 2 floating-point ops. */
    std::uint64_t flops() const;

    OpCounts &operator+=(const OpCounts &other);
    friend OpCounts operator+(OpCounts lhs, const OpCounts &rhs)
    {
        lhs += rhs;
        return lhs;
    }

    bool operator==(const OpCounts &other) const = default;

    /** One-line human-readable rendering. */
    std::string toString() const;
};

} // namespace cta::core

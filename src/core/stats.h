/**
 * @file
 * Small statistics helpers used by benchmarks and tests (geometric
 * means for speedup aggregation, cosine similarity for accuracy
 * proxies, simple summary statistics).
 */

#pragma once

#include <span>
#include <vector>

#include "core/types.h"

namespace cta::core {

/** Arithmetic mean; returns 0 for an empty span. */
Wide mean(std::span<const Wide> values);

/** Sample standard deviation; returns 0 for fewer than 2 values. */
Wide stddev(std::span<const Wide> values);

/** Geometric mean; all values must be positive. */
Wide geomean(std::span<const Wide> values);

/**
 * Geometric mean over the positive entries only: non-positive or
 * non-finite values are dropped with a warning instead of aborting,
 * so one degenerate measurement cannot take down a whole bench run.
 * Returns 0 when no positive values survive.
 */
Wide geomeanPositive(std::span<const Wide> values);

/** Minimum; span must be non-empty. */
Wide minOf(std::span<const Wide> values);

/** Maximum; span must be non-empty. */
Wide maxOf(std::span<const Wide> values);

/** Cosine similarity of two equal-length vectors; 0 if either is 0. */
Real cosineSimilarity(std::span<const Real> a, std::span<const Real> b);

/** Euclidean (L2) distance of two equal-length vectors. */
Real l2Distance(std::span<const Real> a, std::span<const Real> b);

/** Squared L2 norm of a vector. */
Real squaredNorm(std::span<const Real> a);

/**
 * Accumulates a running summary (count/mean/min/max) without storing
 * samples — used by the simulator's per-step statistics.
 */
class RunningStat
{
  public:
    /** Adds one sample. */
    void add(Wide value);

    /** Number of samples added. */
    std::uint64_t count() const { return count_; }

    /** Mean of samples, 0 when empty. */
    Wide mean() const { return count_ ? sum_ / count_ : 0; }

    /** Sum of samples. */
    Wide sum() const { return sum_; }

    /** Minimum sample, 0 when empty. */
    Wide min() const { return count_ ? min_ : 0; }

    /** Maximum sample, 0 when empty. */
    Wide max() const { return count_ ? max_ : 0; }

  private:
    std::uint64_t count_ = 0;
    Wide sum_ = 0;
    Wide min_ = 0;
    Wide max_ = 0;
};

} // namespace cta::core

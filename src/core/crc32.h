/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) — the integrity check
 * appended to every serialized session snapshot (CTAS v2 blobs).
 *
 * A 32-bit CRC detects every single-bit and single-byte error, every
 * burst up to 32 bits, and misses a random multi-byte corruption with
 * probability 2^-32 — sufficient for the snapshot blobs, whose threat
 * model is storage bit rot / truncation, not an adversary.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace cta::core {

/**
 * CRC-32 of @p size bytes at @p data, continuing from @p seed (pass
 * the default for a fresh checksum; feed a previous result to chain
 * over split buffers).
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

} // namespace cta::core

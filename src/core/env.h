/**
 * @file
 * Strict environment-variable access — the one sanctioned route to
 * getenv() for CTA_* knobs.
 *
 * Every knob shares the CTA_THREADS/CTA_BACKEND strictness contract
 * (core/parallel.h parseEnvInt): an *unset* variable falls back to
 * the documented default, but a *set* variable must parse cleanly —
 * empty strings, trailing garbage ("8x", "0.5q") and out-of-range
 * values are fatal, never silently coerced to a default. A malformed
 * knob that quietly degraded to the default once hid a misconfigured
 * fleet for days; these helpers make that impossible.
 */

#pragma once

#include <cstddef>
#include <optional>

namespace cta::core {

long parseEnvInt(const char *text, const char *what); // core/parallel.h

/**
 * Strictly parses @p text as a base-10 real number (strtod). Exits
 * via CTA_FATAL (naming @p what) on empty input, trailing garbage or
 * a non-finite result — same contract as parseEnvInt.
 */
double parseEnvReal(const char *text, const char *what);

/** getenv(@p name); nullptr when unset. Prefer the typed helpers. */
const char *envString(const char *name);

/** @p name parsed via parseEnvInt; nullopt when unset. */
std::optional<long> envInt(const char *name);

/** @p name parsed via parseEnvReal; nullopt when unset. */
std::optional<double> envReal(const char *name);

/**
 * Strictly parses @p text as a positive byte count: a base-10
 * integer with an optional single `K`/`M`/`G` suffix (case-
 * insensitive, powers of 1024). Fatal (naming @p what) on empty
 * input, sign characters, zero, trailing garbage, or overflow —
 * "64M" is 67108864; "64MB", "-5" and "0" are configuration errors.
 */
std::size_t parseEnvBytes(const char *text, const char *what);

/** @p name parsed via parseEnvBytes; nullopt when unset. */
std::optional<std::size_t> envBytes(const char *name);

} // namespace cta::core

#include "core/config_io.h"

#include <charconv>
#include <sstream>

#include "core/logging.h"

namespace cta::core {

namespace {

/** Trims ASCII whitespace from both ends. */
std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t\r\n");
    return text.substr(begin, end - begin + 1);
}

} // namespace

ConfigMap
ConfigMap::parse(const std::string &text)
{
    ConfigMap map;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const auto eq = stripped.find('=');
        CTA_REQUIRE(eq != std::string::npos,
                    "config line ", line_no, " has no '=': '",
                    stripped, "'");
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        CTA_REQUIRE(!key.empty(), "config line ", line_no,
                    " has empty key");
        map.values_[key] = value;
    }
    return map;
}

std::string
ConfigMap::toString() const
{
    std::ostringstream oss;
    for (const auto &[key, value] : values_)
        oss << key << " = " << value << "\n";
    return oss.str();
}

bool
ConfigMap::contains(const std::string &key) const
{
    return values_.count(key) > 0;
}

void
ConfigMap::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
ConfigMap::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
ConfigMap::set(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    values_[key] = oss.str();
}

void
ConfigMap::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

std::string
ConfigMap::getString(const std::string &key) const
{
    const auto it = values_.find(key);
    CTA_REQUIRE(it != values_.end(), "missing config key '", key, "'");
    return it->second;
}

std::int64_t
ConfigMap::getInt(const std::string &key) const
{
    const std::string value = getString(key);
    std::int64_t out = 0;
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), out);
    CTA_REQUIRE(ec == std::errc{} && ptr == value.data() + value.size(),
                "config key '", key, "' is not an integer: '", value,
                "'");
    return out;
}

double
ConfigMap::getDouble(const std::string &key) const
{
    const std::string value = getString(key);
    try {
        std::size_t consumed = 0;
        const double out = std::stod(value, &consumed);
        CTA_REQUIRE(consumed == value.size(), "config key '", key,
                    "' is not a number: '", value, "'");
        return out;
    } catch (const std::exception &) {
        CTA_FATAL("config key '", key, "' is not a number: '", value,
                  "'");
    }
}

bool
ConfigMap::getBool(const std::string &key) const
{
    const std::string value = getString(key);
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    CTA_FATAL("config key '", key, "' is not a bool: '", value, "'");
}

std::int64_t
ConfigMap::getInt(const std::string &key, std::int64_t fallback) const
{
    return contains(key) ? getInt(key) : fallback;
}

double
ConfigMap::getDouble(const std::string &key, double fallback) const
{
    return contains(key) ? getDouble(key) : fallback;
}

bool
ConfigMap::getBool(const std::string &key, bool fallback) const
{
    return contains(key) ? getBool(key) : fallback;
}

} // namespace cta::core

#include "core/page_arena.h"

#include "core/env.h"

namespace cta::core {

PageArena::PageArena(std::size_t page_bytes) : pageBytes_(page_bytes)
{
    CTA_REQUIRE(page_bytes >= sizeof(Real),
                "page size must hold at least one element, got ",
                page_bytes);
}

std::size_t
PageArena::pageBytesFromEnv()
{
    const auto parsed = envBytes("CTA_PAGE_BYTES");
    return parsed ? *parsed : kDefaultPageBytes;
}

PageRef
PageArena::allocateLocked()
{
    std::uint32_t id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(allocatedSlots_);
        if (id / kPagesPerSegment == segments_.size())
            segments_.push_back(std::make_unique<Segment>());
        ++allocatedSlots_;
    }
    Page &p = page(id);
    if (!p.data)
        p.data = std::make_unique<std::byte[]>(pageBytes_);
    // Zero on every allocation — including free-list reuse — so
    // buffer contents depend only on writes, never on history.
    std::memset(p.data.get(), 0, pageBytes_);
    p.refs.store(1, std::memory_order_release);
    ++livePages_;
    ++allocated_;
    return PageRef{id, p.data.get(), &p.refs};
}

PageRef
PageArena::allocate()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return allocateLocked();
}

void
PageArena::addRef(const PageRef &ref)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint32_t before =
        ref.refs->fetch_add(1, std::memory_order_acq_rel);
    CTA_REQUIRE(before > 0, "addRef on a freed page ", ref.id);
    if (before == 1)
        ++sharedPages_;
}

void
PageArena::addRefs(std::span<const PageRef> refs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const PageRef &ref : refs) {
        const std::uint32_t before =
            ref.refs->fetch_add(1, std::memory_order_acq_rel);
        CTA_REQUIRE(before > 0, "addRef on a freed page ", ref.id);
        if (before == 1)
            ++sharedPages_;
    }
}

void
PageArena::releaseLocked(const PageRef &ref)
{
    const std::uint32_t before =
        ref.refs->fetch_sub(1, std::memory_order_acq_rel);
    CTA_REQUIRE(before > 0, "release on a freed page ", ref.id);
    if (before == 2)
        --sharedPages_;
    if (before == 1) {
        --livePages_;
        freeList_.push_back(ref.id);
    }
}

void
PageArena::release(const PageRef &ref)
{
    std::lock_guard<std::mutex> lock(mutex_);
    releaseLocked(ref);
}

void
PageArena::releaseAll(std::span<const PageRef> refs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const PageRef &ref : refs)
        releaseLocked(ref);
}

PageRef
PageArena::makeWritable(const PageRef &ref)
{
    if (ref.solelyOwned())
        return ref;
    std::lock_guard<std::mutex> lock(mutex_);
    // Re-check under the lock: the other owner may have released its
    // reference between the check above and acquiring the mutex.
    if (ref.refs->load(std::memory_order_acquire) == 1)
        return ref;
    PageRef fresh = allocateLocked();
    std::memcpy(fresh.data, ref.data, pageBytes_);
    releaseLocked(ref);
    ++cowCopies_;
    return fresh;
}

std::size_t
PageArena::livePages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return livePages_;
}

std::size_t
PageArena::liveBytes() const
{
    return livePages() * pageBytes_;
}

std::size_t
PageArena::sharedPages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sharedPages_;
}

std::size_t
PageArena::sharedBytes() const
{
    return sharedPages() * pageBytes_;
}

std::uint64_t
PageArena::cowCopies() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cowCopies_;
}

std::uint64_t
PageArena::allocated() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return allocated_;
}

PagedRows::PagedRows(std::shared_ptr<PageArena> arena, Index cols)
    : arena_(std::move(arena)), cols_(cols)
{
    CTA_REQUIRE(cols > 0, "paged rows need a positive column count, "
                "got ", cols);
    rowsPerPage_ = static_cast<Index>(
        arena_->pageBytes() /
        (static_cast<std::size_t>(cols) * sizeof(Real)));
    CTA_REQUIRE(rowsPerPage_ > 0, "page size ", arena_->pageBytes(),
                " too small for a ", cols, "-column row");
}

PagedRows::PagedRows(const PagedRows &other)
    : arena_(other.arena_),
      cols_(other.cols_),
      rowsPerPage_(other.rowsPerPage_),
      pages_(other.pages_),
      rows_(other.rows_)
{
    arena_->addRefs(pages_);
}

PagedRows &
PagedRows::operator=(const PagedRows &other)
{
    if (this == &other)
        return *this;
    other.arena_->addRefs(other.pages_);
    arena_->releaseAll(pages_);
    arena_ = other.arena_;
    cols_ = other.cols_;
    rowsPerPage_ = other.rowsPerPage_;
    pages_ = other.pages_;
    rows_ = other.rows_;
    return *this;
}

PagedRows::PagedRows(PagedRows &&other) noexcept
    : arena_(std::move(other.arena_)),
      cols_(other.cols_),
      rowsPerPage_(other.rowsPerPage_),
      pages_(std::move(other.pages_)),
      rows_(other.rows_)
{
    other.pages_.clear();
    other.rows_ = 0;
}

PagedRows &
PagedRows::operator=(PagedRows &&other) noexcept
{
    if (this == &other)
        return *this;
    if (arena_)
        arena_->releaseAll(pages_);
    arena_ = std::move(other.arena_);
    cols_ = other.cols_;
    rowsPerPage_ = other.rowsPerPage_;
    pages_ = std::move(other.pages_);
    rows_ = other.rows_;
    other.pages_.clear();
    other.rows_ = 0;
    return *this;
}

PagedRows::~PagedRows()
{
    if (arena_)
        arena_->releaseAll(pages_);
}

const Real *
PagedRows::rowPtr(Index r) const
{
    CTA_REQUIRE(r >= 0 && r < rows_, "row ", r, " out of range [0, ",
                rows_, ")");
    const std::size_t page_idx =
        static_cast<std::size_t>(r / rowsPerPage_);
    const std::size_t offset =
        static_cast<std::size_t>(r % rowsPerPage_) *
        static_cast<std::size_t>(cols_) * sizeof(Real);
    return reinterpret_cast<const Real *>(pages_[page_idx].data +
                                          offset);
}

void
PagedRows::ensureWritable(std::size_t page_idx)
{
    PageRef &ref = pages_[page_idx];
    if (!ref.solelyOwned())
        ref = arena_->makeWritable(ref);
}

std::span<Real>
PagedRows::writableRow(Index r)
{
    CTA_REQUIRE(r >= 0 && r < rows_, "row ", r, " out of range [0, ",
                rows_, ")");
    ensureWritable(static_cast<std::size_t>(r / rowsPerPage_));
    return {const_cast<Real *>(rowPtr(r)),
            static_cast<std::size_t>(cols_)};
}

void
PagedRows::appendRow(std::span<const Real> values)
{
    CTA_REQUIRE(static_cast<Index>(values.size()) == cols_,
                "row length ", values.size(), " != ", cols_);
    appendZeroRow();
    std::memcpy(const_cast<Real *>(rowPtr(rows_ - 1)), values.data(),
                static_cast<std::size_t>(cols_) * sizeof(Real));
}

void
PagedRows::appendZeroRow()
{
    if (rows_ == static_cast<Index>(pages_.size()) * rowsPerPage_)
        pages_.push_back(arena_->allocate());
    else
        ensureWritable(static_cast<std::size_t>(rows_ / rowsPerPage_));
    ++rows_;
    // Clear the row region explicitly: a CoW-copied page carries the
    // donor's bytes beyond the donor's row count.
    std::memset(const_cast<Real *>(rowPtr(rows_ - 1)), 0,
                static_cast<std::size_t>(cols_) * sizeof(Real));
}

void
PagedRows::clear()
{
    arena_->releaseAll(pages_);
    pages_.clear();
    rows_ = 0;
}

Matrix
PagedRows::toMatrix() const
{
    Matrix out(rows_, cols_);
    for (Index r = 0; r < rows_; ++r) {
        const std::span<const Real> src = row(r);
        std::memcpy(out.row(r).data(), src.data(),
                    static_cast<std::size_t>(cols_) * sizeof(Real));
    }
    return out;
}

std::size_t
PagedRows::sharedPageCount() const
{
    std::size_t shared = 0;
    for (const PageRef &ref : pages_)
        shared += ref.solelyOwned() ? 0 : 1;
    return shared;
}

std::size_t
PagedRows::privateBytes() const
{
    std::size_t bytes = pages_.capacity() * sizeof(PageRef);
    for (const PageRef &ref : pages_)
        if (ref.solelyOwned())
            bytes += arena_->pageBytes();
    return bytes;
}

} // namespace cta::core

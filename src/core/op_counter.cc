#include "core/op_counter.h"

#include <sstream>

namespace cta::core {

std::uint64_t
OpCounts::total() const
{
    return macs + adds + muls + divs + exps + cmps + floors;
}

std::uint64_t
OpCounts::flops() const
{
    return 2 * macs + adds + muls + divs + exps;
}

OpCounts &
OpCounts::operator+=(const OpCounts &other)
{
    macs += other.macs;
    adds += other.adds;
    muls += other.muls;
    divs += other.divs;
    exps += other.exps;
    cmps += other.cmps;
    floors += other.floors;
    return *this;
}

std::string
OpCounts::toString() const
{
    std::ostringstream oss;
    oss << "macs=" << macs << " adds=" << adds << " muls=" << muls
        << " divs=" << divs << " exps=" << exps << " cmps=" << cmps
        << " floors=" << floors;
    return oss.str();
}

} // namespace cta::core

#include "core/crc32.h"

#include <array>

namespace cta::core {

namespace {

/** Reflected CRC-32 lookup table (polynomial 0xEDB88320). */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace cta::core

/**
 * @file
 * Refcounted fixed-size-page allocator with copy-on-write semantics
 * and exact byte accounting — the memory substrate for prefix-shared
 * session state (DESIGN.md §4.6).
 *
 * A PageArena hands out pages of `pageBytes()` bytes each, identified
 * by a PageRef that carries the page id plus cached data/refcount
 * pointers. Buffers built on top (PagedVector, PagedRows) copy by
 * bumping refcounts; the first write to a shared page copies just
 * that page (makeWritable), so forking a session is O(pages touched),
 * not O(session bytes).
 *
 * Thread-safety: structural operations (allocate, release, the CoW
 * slow path) take the arena mutex. Reads and the sole-owner check are
 * lock-free — PageRef caches the data and refcount pointers, page
 * storage is segmented so pages never move, and a refcount of 1 can
 * only change from the owning buffer's own thread. This is exactly
 * the access pattern of the Batcher: forked sessions step in parallel
 * and CoW concurrently, but a given page is written only by the one
 * session that solely owns it.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/logging.h"
#include "core/matrix.h"
#include "core/types.h"

namespace cta::core {

/** Handle to one arena page. Copyable; does not own a reference —
 *  refcounting is explicit via PageArena::addRef/release. */
struct PageRef
{
    std::uint32_t id = 0;
    std::byte *data = nullptr;
    std::atomic<std::uint32_t> *refs = nullptr;

    /** Lock-free: true iff this buffer is the only owner. Stable when
     *  called from the owning buffer's thread (nobody else can take a
     *  new reference to a refs==1 page). */
    bool solelyOwned() const
    {
        return refs->load(std::memory_order_acquire) == 1;
    }
};

/**
 * Fixed-size-page allocator. Pages are zero-filled on every
 * allocation (including free-list reuse) so restored and fresh
 * buffers are bit-identical regardless of allocation history.
 */
class PageArena
{
  public:
    static constexpr std::size_t kDefaultPageBytes = 4096;

    explicit PageArena(std::size_t page_bytes = kDefaultPageBytes);

    PageArena(const PageArena &) = delete;
    PageArena &operator=(const PageArena &) = delete;

    /** CTA_PAGE_BYTES (K/M/G suffixes allowed), default 4096. */
    static std::size_t pageBytesFromEnv();

    std::size_t pageBytes() const { return pageBytes_; }

    /** Allocates a zero-filled page with refcount 1. */
    PageRef allocate();

    /** Takes one extra reference to @p ref's page. */
    void addRef(const PageRef &ref);

    /** addRef over a whole buffer's worth of pages. */
    void addRefs(std::span<const PageRef> refs);

    /** Drops one reference; frees the page at zero. */
    void release(const PageRef &ref);

    void releaseAll(std::span<const PageRef> refs);

    /**
     * Copy-on-write: returns @p ref unchanged when solely owned;
     * otherwise copies the page contents into a fresh page, drops the
     * shared reference, and returns the private copy.
     */
    PageRef makeWritable(const PageRef &ref);

    /** Pages currently allocated (refcount > 0). */
    std::size_t livePages() const;
    /** livePages() * pageBytes(). */
    std::size_t liveBytes() const;
    /** Pages with refcount >= 2 (each priced once by the owner that
     *  reports shared bytes — see SessionManager::residentBytes). */
    std::size_t sharedPages() const;
    std::size_t sharedBytes() const;
    /** CoW page copies performed since construction. */
    std::uint64_t cowCopies() const;
    /** Cumulative pages ever allocated (monotone; free-list reuse
     *  counts again — an allocation-rate proxy, not a footprint). */
    std::uint64_t allocated() const;

  private:
    struct Page
    {
        std::unique_ptr<std::byte[]> data;
        std::atomic<std::uint32_t> refs{0};
    };

    static constexpr std::size_t kPagesPerSegment = 256;

    struct Segment
    {
        Page pages[kPagesPerSegment];
    };

    Page &page(std::uint32_t id)
    {
        return segments_[id / kPagesPerSegment]
            ->pages[id % kPagesPerSegment];
    }

    /** Allocates with the lock held. */
    PageRef allocateLocked();
    void releaseLocked(const PageRef &ref);

    const std::size_t pageBytes_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Segment>> segments_;
    std::vector<std::uint32_t> freeList_;
    std::size_t allocatedSlots_ = 0;
    std::size_t livePages_ = 0;
    std::size_t sharedPages_ = 0;
    std::uint64_t cowCopies_ = 0;
    std::uint64_t allocated_ = 0;
};

/**
 * Append-only-ish vector of trivially copyable T stored in arena
 * pages. Copying shares every page CoW; element writes go through
 * set() which privatises just the touched page.
 */
template <typename T>
class PagedVector
{
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit PagedVector(std::shared_ptr<PageArena> arena)
        : arena_(std::move(arena)),
          perPage_(arena_->pageBytes() / sizeof(T))
    {
        CTA_REQUIRE(perPage_ > 0, "page size ", arena_->pageBytes(),
                    " too small for element size ", sizeof(T));
    }

    PagedVector(const PagedVector &other)
        : arena_(other.arena_),
          perPage_(other.perPage_),
          pages_(other.pages_),
          size_(other.size_)
    {
        arena_->addRefs(pages_);
    }

    PagedVector &operator=(const PagedVector &other)
    {
        if (this == &other)
            return *this;
        other.arena_->addRefs(other.pages_);
        arena_->releaseAll(pages_);
        arena_ = other.arena_;
        perPage_ = other.perPage_;
        pages_ = other.pages_;
        size_ = other.size_;
        return *this;
    }

    PagedVector(PagedVector &&other) noexcept
        : arena_(std::move(other.arena_)),
          perPage_(other.perPage_),
          pages_(std::move(other.pages_)),
          size_(other.size_)
    {
        other.pages_.clear();
        other.size_ = 0;
    }

    PagedVector &operator=(PagedVector &&other) noexcept
    {
        if (this == &other)
            return *this;
        if (arena_)
            arena_->releaseAll(pages_);
        arena_ = std::move(other.arena_);
        perPage_ = other.perPage_;
        pages_ = std::move(other.pages_);
        size_ = other.size_;
        other.pages_.clear();
        other.size_ = 0;
        return *this;
    }

    ~PagedVector()
    {
        if (arena_)
            arena_->releaseAll(pages_);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T operator[](std::size_t i) const
    {
        T value;
        std::memcpy(&value, slot(i), sizeof(T));
        return value;
    }

    void set(std::size_t i, const T &value)
    {
        CTA_REQUIRE(i < size_, "paged vector index ", i,
                    " out of range [0, ", size_, ")");
        ensureWritable(i / perPage_);
        std::memcpy(slot(i), &value, sizeof(T));
    }

    void push_back(const T &value)
    {
        if (size_ == pages_.size() * perPage_)
            pages_.push_back(arena_->allocate());
        else
            ensureWritable(size_ / perPage_);
        ++size_;
        std::memcpy(slot(size_ - 1), &value, sizeof(T));
    }

    void clear()
    {
        arena_->releaseAll(pages_);
        pages_.clear();
        size_ = 0;
    }

    std::size_t pageCount() const { return pages_.size(); }

    std::size_t sharedPageCount() const
    {
        std::size_t shared = 0;
        for (const PageRef &ref : pages_)
            shared += ref.solelyOwned() ? 0 : 1;
        return shared;
    }

    /** Bytes owned by this buffer alone: solely-owned pages plus the
     *  PageRef index. Shared pages are priced once by the arena. */
    std::size_t privateBytes() const
    {
        std::size_t bytes = pages_.capacity() * sizeof(PageRef);
        for (const PageRef &ref : pages_)
            if (ref.solelyOwned())
                bytes += arena_->pageBytes();
        return bytes;
    }

    const PageArena &arena() const { return *arena_; }

  private:
    std::byte *slot(std::size_t i) const
    {
        CTA_REQUIRE(i < size_, "paged vector index ", i,
                    " out of range [0, ", size_, ")");
        return pages_[i / perPage_].data + (i % perPage_) * sizeof(T);
    }

    void ensureWritable(std::size_t page_idx)
    {
        PageRef &ref = pages_[page_idx];
        if (!ref.solelyOwned())
            ref = arena_->makeWritable(ref);
    }

    std::shared_ptr<PageArena> arena_;
    std::size_t perPage_;
    std::vector<PageRef> pages_;
    std::size_t size_ = 0;
};

/**
 * Row store with a fixed column count, rows packed into arena pages
 * (rowsPerPage = pageBytes / rowBytes; the page tail beyond the last
 * whole row stays zero). The paged replacement for the monolithic
 * Matrix buffers of the incremental compression state.
 */
class PagedRows
{
  public:
    PagedRows(std::shared_ptr<PageArena> arena, Index cols);

    PagedRows(const PagedRows &other);
    PagedRows &operator=(const PagedRows &other);
    PagedRows(PagedRows &&other) noexcept;
    PagedRows &operator=(PagedRows &&other) noexcept;
    ~PagedRows();

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    std::span<const Real> row(Index r) const
    {
        return {rowPtr(r), static_cast<std::size_t>(cols_)};
    }

    /** CoW: privatises the page holding row @p r before returning a
     *  writable view. */
    std::span<Real> writableRow(Index r);

    void appendRow(std::span<const Real> values);

    /** Appends a row of zeros (explicitly cleared — safe even if the
     *  page came off the free list). */
    void appendZeroRow();

    void clear();

    Matrix toMatrix() const;

    std::size_t pageCount() const { return pages_.size(); }
    std::size_t sharedPageCount() const;
    /** Same accounting contract as PagedVector::privateBytes. */
    std::size_t privateBytes() const;

  private:
    const Real *rowPtr(Index r) const;
    void ensureWritable(std::size_t page_idx);

    std::shared_ptr<PageArena> arena_;
    Index cols_;
    Index rowsPerPage_;
    std::vector<PageRef> pages_;
    Index rows_ = 0;
};

} // namespace cta::core

#include "core/simd.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string_view>

#include "core/env.h"
#include "core/logging.h"
#include "core/matrix.h"

#if defined(__x86_64__) || defined(__i386__)
#define CTA_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define CTA_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cta::core {

namespace {

constexpr Index kW = kSimdPanelWidth;

// ---------------------------------------------------------------
// Scalar reference kernels. Every vector kernel below reproduces
// these per-element operation sequences exactly (see simd.h).
// ---------------------------------------------------------------

Real
rowMaxScalar(const Real *x, Index n)
{
    Real m = x[0];
    for (Index j = 1; j < n; ++j)
        m = std::max(m, x[j]);
    return m;
}

void
scaleRowScalar(Real *x, Index n, Real s)
{
    for (Index j = 0; j < n; ++j)
        x[j] *= s;
}

void
addRowScalar(Real *acc, const Real *x, Index n)
{
    for (Index j = 0; j < n; ++j)
        acc[j] += x[j];
}

void
mulAddRowScalar(Real *acc, const Real *x, Real w, Index n)
{
    for (Index j = 0; j < n; ++j)
        acc[j] += w * x[j];
}

void
fmaRowScalar(Real *acc, const Real *x, Real w, Index n)
{
    for (Index j = 0; j < n; ++j)
        acc[j] = std::fmaf(w, x[j], acc[j]);
}

/** One panel column's FMA chain: c += sum_k a[k] * panel[k*stride +
 *  t], rounded once per step — the element semantics of every packed
 *  GEMM path. @p stride is kW for a simdPackB image and B's row
 *  width when the panel aliases B's row-major storage directly. */
inline Real
fmaChain(const Real *a, const Real *panel, Index stride, Index t,
         Index depth, Real c)
{
    for (Index k = 0; k < depth; ++k)
        c = std::fmaf(a[k], panel[k * stride + t], c);
    return c;
}

// Every packed path below loops panel-OUTER, rows-INNER within its
// [k_begin, k_end) depth slice: one packed panel slice stays
// cache-resident across all rows instead of the full packed B being
// re-streamed once per row block. The loop order and the depth
// slicing only reorder which element is computed when; each element
// keeps its single k-ascending FMA chain (slices continue the chain
// through an exact store/load of the fp32 partial), so neither can
// change a bit of the result.

void
gemmRowsPackedScalar(const Matrix &a, const Real *packed, Index width,
                     Matrix &c, Index row_begin, Index row_end,
                     Index k_begin, Index k_end, Index bstride)
{
    const Index depth = a.cols();
    const Index panels = (width + kW - 1) / kW;
    const Index kd = k_end - k_begin;
    // Panel p starts kW floats into the previous one when the
    // "pack" is B's own row-major storage (bstride == width), and
    // a full depth x kW block later in a simdPackB image.
    const Index panel_step = bstride == kW ? depth * kW : kW;
    for (Index p = 0; p < panels; ++p) {
        const Real *panel =
            packed + p * panel_step + k_begin * bstride;
        const Index j0 = p * kW;
        const Index pw = std::min<Index>(kW, width - j0);
        for (Index i = row_begin; i < row_end; ++i) {
            const Real *arow = a.row(i).data() + k_begin;
            Real *crow = c.row(i).data() + j0;
            for (Index t = 0; t < pw; ++t)
                crow[t] = fmaChain(arow, panel, bstride, t, kd, crow[t]);
        }
    }
}

void
vecMatRowsScalar(const Matrix &a, const Matrix &b, Matrix &c,
                 Index row_begin, Index row_end)
{
    // ikj order — per output element one k-ascending fmaf chain, the
    // same chain class as the packed GEMM kernels.
    const Index width = b.cols();
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        Real *crow = c.row(i).data();
        for (Index k = 0; k < a.cols(); ++k) {
            const Real aik = arow[k];
            const Real *brow = b.row(k).data();
            for (Index j = 0; j < width; ++j)
                crow[j] = std::fmaf(aik, brow[j], crow[j]);
        }
    }
}

#if CTA_SIMD_X86

// ---------------------------------------------------------------
// AVX2 kernels (8-lane float, FMA).
// ---------------------------------------------------------------

__attribute__((target("avx2,fma"))) Real
rowMaxAvx2(const Real *x, Index n)
{
    if (n < 8)
        return rowMaxScalar(x, n);
    __m256 vm = _mm256_loadu_ps(x);
    Index j = 8;
    for (; j + 8 <= n; j += 8)
        vm = _mm256_max_ps(vm, _mm256_loadu_ps(x + j));
    float lanes[8];
    _mm256_storeu_ps(lanes, vm);
    Real m = lanes[0];
    for (int t = 1; t < 8; ++t)
        m = std::max(m, lanes[t]);
    for (; j < n; ++j)
        m = std::max(m, x[j]);
    return m;
}

__attribute__((target("avx2,fma"))) void
scaleRowAvx2(Real *x, Index n, Real s)
{
    const __m256 vs = _mm256_set1_ps(s);
    Index j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(x + j,
                         _mm256_mul_ps(_mm256_loadu_ps(x + j), vs));
    for (; j < n; ++j)
        x[j] *= s;
}

__attribute__((target("avx2,fma"))) void
addRowAvx2(Real *acc, const Real *x, Index n)
{
    Index j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(acc + j,
                         _mm256_add_ps(_mm256_loadu_ps(acc + j),
                                       _mm256_loadu_ps(x + j)));
    for (; j < n; ++j)
        acc[j] += x[j];
}

__attribute__((target("avx2,fma"))) void
mulAddRowAvx2(Real *acc, const Real *x, Real w, Index n)
{
    const __m256 vw = _mm256_set1_ps(w);
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 prod = _mm256_mul_ps(vw, _mm256_loadu_ps(x + j));
        _mm256_storeu_ps(
            acc + j, _mm256_add_ps(_mm256_loadu_ps(acc + j), prod));
    }
    for (; j < n; ++j)
        acc[j] += w * x[j];
}

__attribute__((target("avx2,fma"))) void
fmaRowAvx2(Real *acc, const Real *x, Real w, Index n)
{
    const __m256 vw = _mm256_set1_ps(w);
    Index j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(acc + j,
                         _mm256_fmadd_ps(vw, _mm256_loadu_ps(x + j),
                                         _mm256_loadu_ps(acc + j)));
    for (; j < n; ++j)
        acc[j] = std::fmaf(w, x[j], acc[j]);
}

/** 4 x 16 FMA micro-kernel on one packed panel (stride kW): 8 ymm
 *  accumulators live across the whole depth. */
__attribute__((target("avx2,fma"))) void
micro4x16Avx2(const Real *a0, const Real *a1, const Real *a2,
              const Real *a3, const Real *panel, Index bstride,
              Index depth, Real *c0, Real *c1, Real *c2, Real *c3)
{
#define CTA_LOAD2(r)                                                  \
    __m256 acc##r##0 = _mm256_loadu_ps(c##r);                         \
    __m256 acc##r##1 = _mm256_loadu_ps(c##r + 8)
    CTA_LOAD2(0);
    CTA_LOAD2(1);
    CTA_LOAD2(2);
    CTA_LOAD2(3);
#undef CTA_LOAD2
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m256 b0 = _mm256_loadu_ps(bk);
        const __m256 b1 = _mm256_loadu_ps(bk + 8);
        __m256 av;
#define CTA_FMA2(r)                                                   \
    av = _mm256_set1_ps(a##r[k]);                                     \
    acc##r##0 = _mm256_fmadd_ps(av, b0, acc##r##0);                   \
    acc##r##1 = _mm256_fmadd_ps(av, b1, acc##r##1)
        CTA_FMA2(0);
        CTA_FMA2(1);
        CTA_FMA2(2);
        CTA_FMA2(3);
#undef CTA_FMA2
    }
#define CTA_STORE2(r)                                                 \
    _mm256_storeu_ps(c##r, acc##r##0);                                \
    _mm256_storeu_ps(c##r + 8, acc##r##1)
    CTA_STORE2(0);
    CTA_STORE2(1);
    CTA_STORE2(2);
    CTA_STORE2(3);
#undef CTA_STORE2
}

/** 6 x 16 variant: 12 ymm accumulators + 2 panel vectors + 1
 *  broadcast — 15 of the 16 ymm registers. Same panel bytes per k
 *  step as the 4-row kernel for 1.5x the FLOPs (see the 6 x 64
 *  AVX-512 note); same one FMA chain per element. */
__attribute__((target("avx2,fma"))) void
micro6x16Avx2(const Real *a0, const Real *a1, const Real *a2,
              const Real *a3, const Real *a4, const Real *a5,
              const Real *panel, Index bstride, Index depth, Real *c0,
              Real *c1, Real *c2, Real *c3, Real *c4, Real *c5)
{
#define CTA_LOAD2(r)                                                  \
    __m256 acc##r##0 = _mm256_loadu_ps(c##r);                         \
    __m256 acc##r##1 = _mm256_loadu_ps(c##r + 8)
    CTA_LOAD2(0);
    CTA_LOAD2(1);
    CTA_LOAD2(2);
    CTA_LOAD2(3);
    CTA_LOAD2(4);
    CTA_LOAD2(5);
#undef CTA_LOAD2
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m256 b0 = _mm256_loadu_ps(bk);
        const __m256 b1 = _mm256_loadu_ps(bk + 8);
        __m256 av;
#define CTA_FMA2(r)                                                   \
    av = _mm256_set1_ps(a##r[k]);                                     \
    acc##r##0 = _mm256_fmadd_ps(av, b0, acc##r##0);                   \
    acc##r##1 = _mm256_fmadd_ps(av, b1, acc##r##1)
        CTA_FMA2(0);
        CTA_FMA2(1);
        CTA_FMA2(2);
        CTA_FMA2(3);
        CTA_FMA2(4);
        CTA_FMA2(5);
#undef CTA_FMA2
    }
#define CTA_STORE2(r)                                                 \
    _mm256_storeu_ps(c##r, acc##r##0);                                \
    _mm256_storeu_ps(c##r + 8, acc##r##1)
    CTA_STORE2(0);
    CTA_STORE2(1);
    CTA_STORE2(2);
    CTA_STORE2(3);
    CTA_STORE2(4);
    CTA_STORE2(5);
#undef CTA_STORE2
}

/** 1 x 16 variant for the row tail. */
__attribute__((target("avx2,fma"))) void
micro1x16Avx2(const Real *a0, const Real *panel, Index bstride,
              Index depth, Real *c0)
{
    __m256 acc0 = _mm256_loadu_ps(c0);
    __m256 acc1 = _mm256_loadu_ps(c0 + 8);
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m256 av = _mm256_set1_ps(a0[k]);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk + 8), acc1);
    }
    _mm256_storeu_ps(c0, acc0);
    _mm256_storeu_ps(c0 + 8, acc1);
}

void
gemmRowsPackedAvx2(const Matrix &a, const Real *packed, Index width,
                   Matrix &c, Index row_begin, Index row_end,
                   Index k_begin, Index k_end, Index bstride)
{
    const Index depth = a.cols();
    const Index panels = (width + kW - 1) / kW;
    const Index kd = k_end - k_begin;
    // Panel p starts kW floats into the previous one when the
    // "pack" is B's own row-major storage (bstride == width), and
    // a full depth x kW block later in a simdPackB image.
    const Index panel_step = bstride == kW ? depth * kW : kW;
    for (Index p = 0; p < panels; ++p) {
        const Real *panel =
            packed + p * panel_step + k_begin * bstride;
        const Index j0 = p * kW;
        const Index pw = std::min<Index>(kW, width - j0);
        Index i = row_begin;
        for (; i + 6 <= row_end; i += 6) {
            const Real *a0 = a.row(i).data() + k_begin;
            const Real *a1 = a.row(i + 1).data() + k_begin;
            const Real *a2 = a.row(i + 2).data() + k_begin;
            const Real *a3 = a.row(i + 3).data() + k_begin;
            const Real *a4 = a.row(i + 4).data() + k_begin;
            const Real *a5 = a.row(i + 5).data() + k_begin;
            Real *c0 = c.row(i).data() + j0;
            Real *c1 = c.row(i + 1).data() + j0;
            Real *c2 = c.row(i + 2).data() + j0;
            Real *c3 = c.row(i + 3).data() + j0;
            Real *c4 = c.row(i + 4).data() + j0;
            Real *c5 = c.row(i + 5).data() + j0;
            Index t = 0;
            for (; t + 16 <= pw; t += 16)
                micro6x16Avx2(a0, a1, a2, a3, a4, a5, panel + t, bstride,
                              kd, c0 + t, c1 + t, c2 + t, c3 + t,
                              c4 + t, c5 + t);
            for (; t < pw; ++t) {
                c0[t] = fmaChain(a0, panel, bstride, t, kd, c0[t]);
                c1[t] = fmaChain(a1, panel, bstride, t, kd, c1[t]);
                c2[t] = fmaChain(a2, panel, bstride, t, kd, c2[t]);
                c3[t] = fmaChain(a3, panel, bstride, t, kd, c3[t]);
                c4[t] = fmaChain(a4, panel, bstride, t, kd, c4[t]);
                c5[t] = fmaChain(a5, panel, bstride, t, kd, c5[t]);
            }
        }
        for (; i + 4 <= row_end; i += 4) {
            const Real *a0 = a.row(i).data() + k_begin;
            const Real *a1 = a.row(i + 1).data() + k_begin;
            const Real *a2 = a.row(i + 2).data() + k_begin;
            const Real *a3 = a.row(i + 3).data() + k_begin;
            Real *c0 = c.row(i).data() + j0;
            Real *c1 = c.row(i + 1).data() + j0;
            Real *c2 = c.row(i + 2).data() + j0;
            Real *c3 = c.row(i + 3).data() + j0;
            Index t = 0;
            for (; t + 16 <= pw; t += 16)
                micro4x16Avx2(a0, a1, a2, a3, panel + t, bstride, kd,
                              c0 + t, c1 + t, c2 + t, c3 + t);
            for (; t < pw; ++t) {
                c0[t] = fmaChain(a0, panel, bstride, t, kd, c0[t]);
                c1[t] = fmaChain(a1, panel, bstride, t, kd, c1[t]);
                c2[t] = fmaChain(a2, panel, bstride, t, kd, c2[t]);
                c3[t] = fmaChain(a3, panel, bstride, t, kd, c3[t]);
            }
        }
        for (; i < row_end; ++i) {
            const Real *a0 = a.row(i).data() + k_begin;
            Real *c0 = c.row(i).data() + j0;
            Index t = 0;
            for (; t + 16 <= pw; t += 16)
                micro1x16Avx2(a0, panel + t, bstride, kd, c0 + t);
            for (; t < pw; ++t)
                c0[t] = fmaChain(a0, panel, bstride, t, kd, c0[t]);
        }
    }
}

__attribute__((target("avx2,fma"))) void
vecMatRowsAvx2(const Matrix &a, const Matrix &b, Matrix &c,
               Index row_begin, Index row_end)
{
    const Index width = b.cols();
    const Index depth = a.cols();
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        Real *crow = c.row(i).data();
        Index j = 0;
        for (; j + 32 <= width; j += 32) {
            __m256 s0 = _mm256_loadu_ps(crow + j);
            __m256 s1 = _mm256_loadu_ps(crow + j + 8);
            __m256 s2 = _mm256_loadu_ps(crow + j + 16);
            __m256 s3 = _mm256_loadu_ps(crow + j + 24);
            for (Index k = 0; k < depth; ++k) {
                const Real *brow = b.row(k).data() + j;
                const __m256 av = _mm256_set1_ps(arow[k]);
                s0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), s0);
                s1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8),
                                     s1);
                s2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 16),
                                     s2);
                s3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 24),
                                     s3);
            }
            _mm256_storeu_ps(crow + j, s0);
            _mm256_storeu_ps(crow + j + 8, s1);
            _mm256_storeu_ps(crow + j + 16, s2);
            _mm256_storeu_ps(crow + j + 24, s3);
        }
        for (; j + 8 <= width; j += 8) {
            __m256 s0 = _mm256_loadu_ps(crow + j);
            for (Index k = 0; k < depth; ++k) {
                const __m256 av = _mm256_set1_ps(arow[k]);
                const __m256 bv = _mm256_loadu_ps(b.row(k).data() + j);
                s0 = _mm256_fmadd_ps(av, bv, s0);
            }
            _mm256_storeu_ps(crow + j, s0);
        }
        for (; j < width; ++j) {
            Real s = crow[j];
            for (Index k = 0; k < depth; ++k)
                s = std::fmaf(arow[k], b.row(k).data()[j], s);
            crow[j] = s;
        }
    }
}

// ---------------------------------------------------------------
// AVX-512F kernels (16-lane float).
// ---------------------------------------------------------------

__attribute__((target("avx512f"))) Real
rowMaxAvx512(const Real *x, Index n)
{
    if (n < 16)
        return rowMaxScalar(x, n);
    __m512 vm = _mm512_loadu_ps(x);
    Index j = 16;
    for (; j + 16 <= n; j += 16)
        vm = _mm512_max_ps(vm, _mm512_loadu_ps(x + j));
    float lanes[16];
    _mm512_storeu_ps(lanes, vm);
    Real m = lanes[0];
    for (int t = 1; t < 16; ++t)
        m = std::max(m, lanes[t]);
    for (; j < n; ++j)
        m = std::max(m, x[j]);
    return m;
}

__attribute__((target("avx512f"))) void
scaleRowAvx512(Real *x, Index n, Real s)
{
    const __m512 vs = _mm512_set1_ps(s);
    Index j = 0;
    for (; j + 16 <= n; j += 16)
        _mm512_storeu_ps(x + j,
                         _mm512_mul_ps(_mm512_loadu_ps(x + j), vs));
    if (j < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        const __m512 v = _mm512_maskz_loadu_ps(m, x + j);
        _mm512_mask_storeu_ps(x + j, m, _mm512_mul_ps(v, vs));
    }
}

__attribute__((target("avx512f"))) void
addRowAvx512(Real *acc, const Real *x, Index n)
{
    Index j = 0;
    for (; j + 16 <= n; j += 16)
        _mm512_storeu_ps(acc + j,
                         _mm512_add_ps(_mm512_loadu_ps(acc + j),
                                       _mm512_loadu_ps(x + j)));
    if (j < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        const __m512 av = _mm512_maskz_loadu_ps(m, acc + j);
        const __m512 xv = _mm512_maskz_loadu_ps(m, x + j);
        _mm512_mask_storeu_ps(acc + j, m, _mm512_add_ps(av, xv));
    }
}

__attribute__((target("avx512f"))) void
mulAddRowAvx512(Real *acc, const Real *x, Real w, Index n)
{
    const __m512 vw = _mm512_set1_ps(w);
    Index j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 prod = _mm512_mul_ps(vw, _mm512_loadu_ps(x + j));
        _mm512_storeu_ps(
            acc + j, _mm512_add_ps(_mm512_loadu_ps(acc + j), prod));
    }
    if (j < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        const __m512 av = _mm512_maskz_loadu_ps(m, acc + j);
        const __m512 xv = _mm512_maskz_loadu_ps(m, x + j);
        _mm512_mask_storeu_ps(
            acc + j, m, _mm512_add_ps(av, _mm512_mul_ps(vw, xv)));
    }
}

__attribute__((target("avx512f"))) void
fmaRowAvx512(Real *acc, const Real *x, Real w, Index n)
{
    const __m512 vw = _mm512_set1_ps(w);
    Index j = 0;
    for (; j + 16 <= n; j += 16)
        _mm512_storeu_ps(acc + j,
                         _mm512_fmadd_ps(vw, _mm512_loadu_ps(x + j),
                                         _mm512_loadu_ps(acc + j)));
    if (j < n) {
        const __mmask16 m =
            static_cast<__mmask16>((1u << (n - j)) - 1u);
        const __m512 av = _mm512_maskz_loadu_ps(m, acc + j);
        const __m512 xv = _mm512_maskz_loadu_ps(m, x + j);
        _mm512_mask_storeu_ps(acc + j, m,
                              _mm512_fmadd_ps(vw, xv, av));
    }
}

/** 4 x 64 FMA micro-kernel on one packed panel: 16 zmm accumulators
 *  live across the whole depth; @p lanes (1..64) masks the stores of
 *  a partial last panel (the panel itself is zero-padded, so the
 *  full-width loads and FMAs are safe and the dead lanes are simply
 *  not stored). */
__attribute__((target("avx512f"))) void
micro4x64Avx512(const Real *a0, const Real *a1, const Real *a2,
                const Real *a3, const Real *panel, Index bstride,
                Index depth, Real *c0, Real *c1, Real *c2, Real *c3,
                Index lanes)
{
    __mmask16 m[4];
    for (int g = 0; g < 4; ++g) {
        const Index rem = lanes - g * 16;
        m[g] = rem >= 16 ? static_cast<__mmask16>(0xFFFF)
               : rem <= 0
                   ? static_cast<__mmask16>(0)
                   : static_cast<__mmask16>((1u << rem) - 1u);
    }
#define CTA_LOAD4(r)                                                  \
    __m512 acc##r##0 = _mm512_maskz_loadu_ps(m[0], c##r);             \
    __m512 acc##r##1 = _mm512_maskz_loadu_ps(m[1], c##r + 16);        \
    __m512 acc##r##2 = _mm512_maskz_loadu_ps(m[2], c##r + 32);        \
    __m512 acc##r##3 = _mm512_maskz_loadu_ps(m[3], c##r + 48)
    CTA_LOAD4(0);
    CTA_LOAD4(1);
    CTA_LOAD4(2);
    CTA_LOAD4(3);
#undef CTA_LOAD4
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m512 b0 = _mm512_loadu_ps(bk);
        const __m512 b1 = _mm512_loadu_ps(bk + 16);
        const __m512 b2 = _mm512_loadu_ps(bk + 32);
        const __m512 b3 = _mm512_loadu_ps(bk + 48);
        __m512 av;
#define CTA_FMA4(r)                                                   \
    av = _mm512_set1_ps(a##r[k]);                                     \
    acc##r##0 = _mm512_fmadd_ps(av, b0, acc##r##0);                   \
    acc##r##1 = _mm512_fmadd_ps(av, b1, acc##r##1);                   \
    acc##r##2 = _mm512_fmadd_ps(av, b2, acc##r##2);                   \
    acc##r##3 = _mm512_fmadd_ps(av, b3, acc##r##3)
        CTA_FMA4(0);
        CTA_FMA4(1);
        CTA_FMA4(2);
        CTA_FMA4(3);
#undef CTA_FMA4
    }
#define CTA_STORE4(r)                                                 \
    _mm512_mask_storeu_ps(c##r, m[0], acc##r##0);                     \
    _mm512_mask_storeu_ps(c##r + 16, m[1], acc##r##1);                \
    _mm512_mask_storeu_ps(c##r + 32, m[2], acc##r##2);                \
    _mm512_mask_storeu_ps(c##r + 48, m[3], acc##r##3)
    CTA_STORE4(0);
    CTA_STORE4(1);
    CTA_STORE4(2);
    CTA_STORE4(3);
#undef CTA_STORE4
}

/** 6 x 64 variant: 24 zmm accumulators + 4 panel vectors + 1
 *  broadcast — the ceiling of the 32-register file. A taller row
 *  block reads the same 256 panel bytes per k step for 1.5x the
 *  FLOPs of the 4-row kernel; the panel stream out of L2 is what
 *  bounds the 4-row kernel at sizes whose panels outgrow L1, so the
 *  extra rows translate directly into sustained FMA rate. Same one
 *  FMA chain per output element — grouping rows 6-at-a-time instead
 *  of 4 cannot change a bit. */
__attribute__((target("avx512f"))) void
micro6x64Avx512(const Real *a0, const Real *a1, const Real *a2,
                const Real *a3, const Real *a4, const Real *a5,
                const Real *panel, Index bstride, Index depth,
                Real *c0, Real *c1, Real *c2, Real *c3, Real *c4,
                Real *c5, Index lanes)
{
    __mmask16 m[4];
    for (int g = 0; g < 4; ++g) {
        const Index rem = lanes - g * 16;
        m[g] = rem >= 16 ? static_cast<__mmask16>(0xFFFF)
               : rem <= 0
                   ? static_cast<__mmask16>(0)
                   : static_cast<__mmask16>((1u << rem) - 1u);
    }
#define CTA_LOAD4(r)                                                  \
    __m512 acc##r##0 = _mm512_maskz_loadu_ps(m[0], c##r);             \
    __m512 acc##r##1 = _mm512_maskz_loadu_ps(m[1], c##r + 16);        \
    __m512 acc##r##2 = _mm512_maskz_loadu_ps(m[2], c##r + 32);        \
    __m512 acc##r##3 = _mm512_maskz_loadu_ps(m[3], c##r + 48)
    CTA_LOAD4(0);
    CTA_LOAD4(1);
    CTA_LOAD4(2);
    CTA_LOAD4(3);
    CTA_LOAD4(4);
    CTA_LOAD4(5);
#undef CTA_LOAD4
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m512 b0 = _mm512_loadu_ps(bk);
        const __m512 b1 = _mm512_loadu_ps(bk + 16);
        const __m512 b2 = _mm512_loadu_ps(bk + 32);
        const __m512 b3 = _mm512_loadu_ps(bk + 48);
        __m512 av;
#define CTA_FMA4(r)                                                   \
    av = _mm512_set1_ps(a##r[k]);                                     \
    acc##r##0 = _mm512_fmadd_ps(av, b0, acc##r##0);                   \
    acc##r##1 = _mm512_fmadd_ps(av, b1, acc##r##1);                   \
    acc##r##2 = _mm512_fmadd_ps(av, b2, acc##r##2);                   \
    acc##r##3 = _mm512_fmadd_ps(av, b3, acc##r##3)
        CTA_FMA4(0);
        CTA_FMA4(1);
        CTA_FMA4(2);
        CTA_FMA4(3);
        CTA_FMA4(4);
        CTA_FMA4(5);
#undef CTA_FMA4
    }
#define CTA_STORE4(r)                                                 \
    _mm512_mask_storeu_ps(c##r, m[0], acc##r##0);                     \
    _mm512_mask_storeu_ps(c##r + 16, m[1], acc##r##1);                \
    _mm512_mask_storeu_ps(c##r + 32, m[2], acc##r##2);                \
    _mm512_mask_storeu_ps(c##r + 48, m[3], acc##r##3)
    CTA_STORE4(0);
    CTA_STORE4(1);
    CTA_STORE4(2);
    CTA_STORE4(3);
    CTA_STORE4(4);
    CTA_STORE4(5);
#undef CTA_STORE4
}

/** 1 x 64 variant for the row tail. */
__attribute__((target("avx512f"))) void
micro1x64Avx512(const Real *a0, const Real *panel, Index bstride,
                Index depth, Real *c0, Index lanes)
{
    __mmask16 m[4];
    for (int g = 0; g < 4; ++g) {
        const Index rem = lanes - g * 16;
        m[g] = rem >= 16 ? static_cast<__mmask16>(0xFFFF)
               : rem <= 0
                   ? static_cast<__mmask16>(0)
                   : static_cast<__mmask16>((1u << rem) - 1u);
    }
    __m512 acc0 = _mm512_maskz_loadu_ps(m[0], c0);
    __m512 acc1 = _mm512_maskz_loadu_ps(m[1], c0 + 16);
    __m512 acc2 = _mm512_maskz_loadu_ps(m[2], c0 + 32);
    __m512 acc3 = _mm512_maskz_loadu_ps(m[3], c0 + 48);
    for (Index k = 0; k < depth; ++k) {
        const Real *bk = panel + k * bstride;
        const __m512 av = _mm512_set1_ps(a0[k]);
        acc0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bk), acc0);
        acc1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bk + 16), acc1);
        acc2 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bk + 32), acc2);
        acc3 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bk + 48), acc3);
    }
    _mm512_mask_storeu_ps(c0, m[0], acc0);
    _mm512_mask_storeu_ps(c0 + 16, m[1], acc1);
    _mm512_mask_storeu_ps(c0 + 32, m[2], acc2);
    _mm512_mask_storeu_ps(c0 + 48, m[3], acc3);
}

void
gemmRowsPackedAvx512(const Matrix &a, const Real *packed, Index width,
                     Matrix &c, Index row_begin, Index row_end,
                     Index k_begin, Index k_end, Index bstride)
{
    const Index depth = a.cols();
    const Index panels = (width + kW - 1) / kW;
    const Index kd = k_end - k_begin;
    // Panel p starts kW floats into the previous one when the
    // "pack" is B's own row-major storage (bstride == width), and
    // a full depth x kW block later in a simdPackB image.
    const Index panel_step = bstride == kW ? depth * kW : kW;
    for (Index p = 0; p < panels; ++p) {
        const Real *panel =
            packed + p * panel_step + k_begin * bstride;
        const Index j0 = p * kW;
        const Index pw = std::min<Index>(kW, width - j0);
        Index i = row_begin;
        for (; i + 6 <= row_end; i += 6)
            micro6x64Avx512(a.row(i).data() + k_begin,
                            a.row(i + 1).data() + k_begin,
                            a.row(i + 2).data() + k_begin,
                            a.row(i + 3).data() + k_begin,
                            a.row(i + 4).data() + k_begin,
                            a.row(i + 5).data() + k_begin,
                            panel, bstride, kd, c.row(i).data() + j0,
                            c.row(i + 1).data() + j0,
                            c.row(i + 2).data() + j0,
                            c.row(i + 3).data() + j0,
                            c.row(i + 4).data() + j0,
                            c.row(i + 5).data() + j0, pw);
        for (; i + 4 <= row_end; i += 4)
            micro4x64Avx512(a.row(i).data() + k_begin,
                            a.row(i + 1).data() + k_begin,
                            a.row(i + 2).data() + k_begin,
                            a.row(i + 3).data() + k_begin,
                            panel, bstride, kd, c.row(i).data() + j0,
                            c.row(i + 1).data() + j0,
                            c.row(i + 2).data() + j0,
                            c.row(i + 3).data() + j0, pw);
        for (; i < row_end; ++i)
            micro1x64Avx512(a.row(i).data() + k_begin, panel, bstride, kd,
                            c.row(i).data() + j0, pw);
    }
}

__attribute__((target("avx512f"))) void
vecMatRowsAvx512(const Matrix &a, const Matrix &b, Matrix &c,
                 Index row_begin, Index row_end)
{
    const Index width = b.cols();
    const Index depth = a.cols();
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        Real *crow = c.row(i).data();
        Index j = 0;
        for (; j + 64 <= width; j += 64) {
            __m512 s0 = _mm512_loadu_ps(crow + j);
            __m512 s1 = _mm512_loadu_ps(crow + j + 16);
            __m512 s2 = _mm512_loadu_ps(crow + j + 32);
            __m512 s3 = _mm512_loadu_ps(crow + j + 48);
            for (Index k = 0; k < depth; ++k) {
                const Real *brow = b.row(k).data() + j;
                const __m512 av = _mm512_set1_ps(arow[k]);
                s0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow), s0);
                s1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 16),
                                     s1);
                s2 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 32),
                                     s2);
                s3 = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + 48),
                                     s3);
            }
            _mm512_storeu_ps(crow + j, s0);
            _mm512_storeu_ps(crow + j + 16, s1);
            _mm512_storeu_ps(crow + j + 32, s2);
            _mm512_storeu_ps(crow + j + 48, s3);
        }
        for (; j + 16 <= width; j += 16) {
            __m512 s0 = _mm512_loadu_ps(crow + j);
            for (Index k = 0; k < depth; ++k) {
                const __m512 av = _mm512_set1_ps(arow[k]);
                const __m512 bv = _mm512_loadu_ps(b.row(k).data() + j);
                s0 = _mm512_fmadd_ps(av, bv, s0);
            }
            _mm512_storeu_ps(crow + j, s0);
        }
        if (j < width) {
            const __mmask16 m =
                static_cast<__mmask16>((1u << (width - j)) - 1u);
            __m512 s0 = _mm512_maskz_loadu_ps(m, crow + j);
            for (Index k = 0; k < depth; ++k) {
                const __m512 av = _mm512_set1_ps(arow[k]);
                const __m512 bv =
                    _mm512_maskz_loadu_ps(m, b.row(k).data() + j);
                s0 = _mm512_fmadd_ps(av, bv, s0);
            }
            _mm512_mask_storeu_ps(crow + j, m, s0);
        }
    }
}

#endif // CTA_SIMD_X86

#if CTA_SIMD_NEON

// ---------------------------------------------------------------
// NEON kernels (4-lane float; baseline on aarch64, no target attr).
// ---------------------------------------------------------------

Real
rowMaxNeon(const Real *x, Index n)
{
    if (n < 4)
        return rowMaxScalar(x, n);
    float32x4_t vm = vld1q_f32(x);
    Index j = 4;
    for (; j + 4 <= n; j += 4)
        vm = vmaxq_f32(vm, vld1q_f32(x + j));
    Real m = vmaxvq_f32(vm);
    for (; j < n; ++j)
        m = std::max(m, x[j]);
    return m;
}

void
scaleRowNeon(Real *x, Index n, Real s)
{
    Index j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(x + j, vmulq_n_f32(vld1q_f32(x + j), s));
    for (; j < n; ++j)
        x[j] *= s;
}

void
addRowNeon(Real *acc, const Real *x, Index n)
{
    Index j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(acc + j,
                  vaddq_f32(vld1q_f32(acc + j), vld1q_f32(x + j)));
    for (; j < n; ++j)
        acc[j] += x[j];
}

void
mulAddRowNeon(Real *acc, const Real *x, Real w, Index n)
{
    Index j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(acc + j,
                  vaddq_f32(vld1q_f32(acc + j),
                            vmulq_n_f32(vld1q_f32(x + j), w)));
    for (; j < n; ++j)
        acc[j] += w * x[j];
}

void
fmaRowNeon(Real *acc, const Real *x, Real w, Index n)
{
    Index j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(acc + j,
                  vfmaq_n_f32(vld1q_f32(acc + j), vld1q_f32(x + j),
                              w));
    for (; j < n; ++j)
        acc[j] = std::fmaf(w, x[j], acc[j]);
}

void
gemmRowsPackedNeon(const Matrix &a, const Real *packed, Index width,
                   Matrix &c, Index row_begin, Index row_end,
                   Index k_begin, Index k_end, Index bstride)
{
    const Index depth = a.cols();
    const Index panels = (width + kW - 1) / kW;
    const Index kd = k_end - k_begin;
    // Panel p starts kW floats into the previous one when the
    // "pack" is B's own row-major storage (bstride == width), and
    // a full depth x kW block later in a simdPackB image.
    const Index panel_step = bstride == kW ? depth * kW : kW;
    for (Index p = 0; p < panels; ++p) {
        const Real *panel =
            packed + p * panel_step + k_begin * bstride;
        const Index j0 = p * kW;
        const Index pw = std::min<Index>(kW, width - j0);
        for (Index i = row_begin; i < row_end; ++i) {
            const Real *arow = a.row(i).data() + k_begin;
            Real *crow = c.row(i).data() + j0;
            Index t = 0;
            for (; t + 16 <= pw; t += 16) {
                float32x4_t s0 = vld1q_f32(crow + t);
                float32x4_t s1 = vld1q_f32(crow + t + 4);
                float32x4_t s2 = vld1q_f32(crow + t + 8);
                float32x4_t s3 = vld1q_f32(crow + t + 12);
                for (Index k = 0; k < kd; ++k) {
                    const Real *bk = panel + k * bstride + t;
                    const Real av = arow[k];
                    s0 = vfmaq_n_f32(s0, vld1q_f32(bk), av);
                    s1 = vfmaq_n_f32(s1, vld1q_f32(bk + 4), av);
                    s2 = vfmaq_n_f32(s2, vld1q_f32(bk + 8), av);
                    s3 = vfmaq_n_f32(s3, vld1q_f32(bk + 12), av);
                }
                vst1q_f32(crow + t, s0);
                vst1q_f32(crow + t + 4, s1);
                vst1q_f32(crow + t + 8, s2);
                vst1q_f32(crow + t + 12, s3);
            }
            for (; t < pw; ++t)
                crow[t] = fmaChain(arow, panel, bstride, t, kd, crow[t]);
        }
    }
}

void
vecMatRowsNeon(const Matrix &a, const Matrix &b, Matrix &c,
               Index row_begin, Index row_end)
{
    const Index width = b.cols();
    const Index depth = a.cols();
    for (Index i = row_begin; i < row_end; ++i) {
        const Real *arow = a.row(i).data();
        Real *crow = c.row(i).data();
        Index j = 0;
        for (; j + 16 <= width; j += 16) {
            float32x4_t s0 = vld1q_f32(crow + j);
            float32x4_t s1 = vld1q_f32(crow + j + 4);
            float32x4_t s2 = vld1q_f32(crow + j + 8);
            float32x4_t s3 = vld1q_f32(crow + j + 12);
            for (Index k = 0; k < depth; ++k) {
                const Real *brow = b.row(k).data() + j;
                const Real av = arow[k];
                s0 = vfmaq_n_f32(s0, vld1q_f32(brow), av);
                s1 = vfmaq_n_f32(s1, vld1q_f32(brow + 4), av);
                s2 = vfmaq_n_f32(s2, vld1q_f32(brow + 8), av);
                s3 = vfmaq_n_f32(s3, vld1q_f32(brow + 12), av);
            }
            vst1q_f32(crow + j, s0);
            vst1q_f32(crow + j + 4, s1);
            vst1q_f32(crow + j + 8, s2);
            vst1q_f32(crow + j + 12, s3);
        }
        for (; j < width; ++j) {
            Real s = crow[j];
            for (Index k = 0; k < depth; ++k)
                s = std::fmaf(arow[k], b.row(k).data()[j], s);
            crow[j] = s;
        }
    }
}

#endif // CTA_SIMD_NEON

// ---------------------------------------------------------------
// Register-resident FMA peak loops (roofline ceiling). 16
// independent chains cover the FMA latency x throughput product on
// every target; the sink return defeats dead-code elimination.
// ---------------------------------------------------------------

#define CTA_PEAK_BODY(VT, SET1, FMA, ADD)                             \
    const VT m = SET1(1.0000001f);                                    \
    const VT d = SET1(1e-7f);                                         \
    VT a0 = SET1(0.1f), a1 = SET1(0.2f), a2 = SET1(0.3f),             \
       a3 = SET1(0.4f), a4 = SET1(0.5f), a5 = SET1(0.6f),             \
       a6 = SET1(0.7f), a7 = SET1(0.8f), a8 = SET1(0.9f),             \
       a9 = SET1(1.0f), a10 = SET1(1.1f), a11 = SET1(1.2f),           \
       a12 = SET1(1.3f), a13 = SET1(1.4f), a14 = SET1(1.5f),          \
       a15 = SET1(1.6f);                                              \
    for (long i = 0; i < iters; ++i) {                                \
        a0 = FMA(a0, m, d);                                           \
        a1 = FMA(a1, m, d);                                           \
        a2 = FMA(a2, m, d);                                           \
        a3 = FMA(a3, m, d);                                           \
        a4 = FMA(a4, m, d);                                           \
        a5 = FMA(a5, m, d);                                           \
        a6 = FMA(a6, m, d);                                           \
        a7 = FMA(a7, m, d);                                           \
        a8 = FMA(a8, m, d);                                           \
        a9 = FMA(a9, m, d);                                           \
        a10 = FMA(a10, m, d);                                         \
        a11 = FMA(a11, m, d);                                         \
        a12 = FMA(a12, m, d);                                         \
        a13 = FMA(a13, m, d);                                         \
        a14 = FMA(a14, m, d);                                         \
        a15 = FMA(a15, m, d);                                         \
    }                                                                 \
    VT r = ADD(a0, a1);                                               \
    r = ADD(r, a2);                                                   \
    r = ADD(r, a3);                                                   \
    r = ADD(r, a4);                                                   \
    r = ADD(r, a5);                                                   \
    r = ADD(r, a6);                                                   \
    r = ADD(r, a7);                                                   \
    r = ADD(r, a8);                                                   \
    r = ADD(r, a9);                                                   \
    r = ADD(r, a10);                                                  \
    r = ADD(r, a11);                                                  \
    r = ADD(r, a12);                                                  \
    r = ADD(r, a13);                                                  \
    r = ADD(r, a14);                                                  \
    r = ADD(r, a15)

float
fmaPeakScalar(long iters)
{
    float m = 1.0000001f, d = 1e-7f;
    float a0 = 0.1f, a1 = 0.2f, a2 = 0.3f, a3 = 0.4f, a4 = 0.5f,
          a5 = 0.6f, a6 = 0.7f, a7 = 0.8f, a8 = 0.9f, a9 = 1.0f,
          a10 = 1.1f, a11 = 1.2f, a12 = 1.3f, a13 = 1.4f, a14 = 1.5f,
          a15 = 1.6f;
    for (long i = 0; i < iters; ++i) {
        a0 = std::fmaf(a0, m, d);
        a1 = std::fmaf(a1, m, d);
        a2 = std::fmaf(a2, m, d);
        a3 = std::fmaf(a3, m, d);
        a4 = std::fmaf(a4, m, d);
        a5 = std::fmaf(a5, m, d);
        a6 = std::fmaf(a6, m, d);
        a7 = std::fmaf(a7, m, d);
        a8 = std::fmaf(a8, m, d);
        a9 = std::fmaf(a9, m, d);
        a10 = std::fmaf(a10, m, d);
        a11 = std::fmaf(a11, m, d);
        a12 = std::fmaf(a12, m, d);
        a13 = std::fmaf(a13, m, d);
        a14 = std::fmaf(a14, m, d);
        a15 = std::fmaf(a15, m, d);
    }
    return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9 + a10 +
           a11 + a12 + a13 + a14 + a15;
}

#if CTA_SIMD_X86

__attribute__((target("avx2,fma"))) float
fmaPeakAvx2(long iters)
{
    float out[8];
    CTA_PEAK_BODY(__m256, _mm256_set1_ps, _mm256_fmadd_ps,
                  _mm256_add_ps);
    _mm256_storeu_ps(out, r);
    return out[0];
}

__attribute__((target("avx512f"))) float
fmaPeakAvx512(long iters)
{
    float out[16];
    CTA_PEAK_BODY(__m512, _mm512_set1_ps, _mm512_fmadd_ps,
                  _mm512_add_ps);
    _mm512_storeu_ps(out, r);
    return out[0];
}

#endif // CTA_SIMD_X86

#if CTA_SIMD_NEON

float
fmaPeakNeon(long iters)
{
    float out[4];
    CTA_PEAK_BODY(float32x4_t, vdupq_n_f32, vfmaq_f32, vaddq_f32);
    vst1q_f32(out, r);
    return out[0];
}

#endif // CTA_SIMD_NEON

#undef CTA_PEAK_BODY

/** Lanes per vector at each level (peak flops = 16 chains x 2 x
 *  lanes per iteration). */
int
peakLanes(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx512:
        return 16;
    case SimdLevel::Avx2:
        return 8;
    case SimdLevel::Neon:
        return 4;
    default:
        return 1;
    }
}

float
fmaPeakIter(SimdLevel level, long iters)
{
    switch (level) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        return fmaPeakAvx512(iters);
    case SimdLevel::Avx2:
        return fmaPeakAvx2(iters);
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        return fmaPeakNeon(iters);
#endif
    default:
        return fmaPeakScalar(iters);
    }
}

/** Test-forced level, or -1 to use the CTA_SIMD/default resolution. */
std::atomic<int> g_forced_level{-1};

SimdLevel
envSimdLevel()
{
    static const SimdLevel level = [] {
        const char *env = envString("CTA_SIMD");
        if (env == nullptr)
            return detectSimdLevel();
        const std::string_view spec(env);
        if (spec == "auto")
            return detectSimdLevel();
        SimdLevel forced;
        if (spec == "off" || spec == "scalar")
            forced = SimdLevel::Scalar;
        else if (spec == "avx2")
            forced = SimdLevel::Avx2;
        else if (spec == "avx512")
            forced = SimdLevel::Avx512;
        else if (spec == "neon")
            forced = SimdLevel::Neon;
        else
            CTA_FATAL("unknown CTA_SIMD '", env,
                      "' (expected auto | off | scalar | avx2 | "
                      "avx512 | neon)");
        if (!simdLevelSupported(forced))
            CTA_FATAL("CTA_SIMD=", env,
                      " is not supported by this host (detected ",
                      simdLevelName(detectSimdLevel()), ")");
        return forced;
    }();
    return level;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Avx512:
        return "avx512";
    case SimdLevel::Neon:
        return "neon";
    }
    return "unknown";
}

SimdLevel
detectSimdLevel()
{
#if CTA_SIMD_X86
    if (__builtin_cpu_supports("avx512f"))
        return SimdLevel::Avx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
#elif CTA_SIMD_NEON
    return SimdLevel::Neon;
#else
    return SimdLevel::Scalar;
#endif
}

bool
simdLevelSupported(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return true;
#if CTA_SIMD_X86
    case SimdLevel::Avx2:
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
    case SimdLevel::Avx512:
        return __builtin_cpu_supports("avx512f");
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        return true;
#endif
    default:
        return false;
    }
}

SimdLevel
activeSimdLevel()
{
    const int forced = g_forced_level.load(std::memory_order_relaxed);
    return forced >= 0 ? static_cast<SimdLevel>(forced)
                       : envSimdLevel();
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    CTA_REQUIRE(simdLevelSupported(level), "SIMD level ",
                simdLevelName(level), " not supported by this host");
    const SimdLevel previous = activeSimdLevel();
    g_forced_level.store(static_cast<int>(level),
                         std::memory_order_relaxed);
    return previous;
}

double
simdFmaPeakGflops()
{
    const SimdLevel level = activeSimdLevel();
    const double flopsPerIter = 16.0 * 2.0 * peakLanes(level);
    volatile float sink = 0;
    long iters = 1L << 16;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        sink = sink + fmaPeakIter(level, iters);
        const auto t1 = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        if (s >= 0.02)
            return flopsPerIter * static_cast<double>(iters) / s /
                   1e9;
        iters *= 4;
    }
}

Real
simdRowMax(const Real *x, Index n)
{
    CTA_ASSERT(n >= 1, "row max over empty row");
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        return rowMaxAvx512(x, n);
    case SimdLevel::Avx2:
        return rowMaxAvx2(x, n);
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        return rowMaxNeon(x, n);
#endif
    default:
        return rowMaxScalar(x, n);
    }
}

void
simdScaleRow(Real *x, Index n, Real s)
{
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        scaleRowAvx512(x, n, s);
        return;
    case SimdLevel::Avx2:
        scaleRowAvx2(x, n, s);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        scaleRowNeon(x, n, s);
        return;
#endif
    default:
        scaleRowScalar(x, n, s);
    }
}

void
simdAddRow(Real *acc, const Real *x, Index n)
{
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        addRowAvx512(acc, x, n);
        return;
    case SimdLevel::Avx2:
        addRowAvx2(acc, x, n);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        addRowNeon(acc, x, n);
        return;
#endif
    default:
        addRowScalar(acc, x, n);
    }
}

void
simdMulAddRow(Real *acc, const Real *x, Real w, Index n)
{
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        mulAddRowAvx512(acc, x, w, n);
        return;
    case SimdLevel::Avx2:
        mulAddRowAvx2(acc, x, w, n);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        mulAddRowNeon(acc, x, w, n);
        return;
#endif
    default:
        mulAddRowScalar(acc, x, w, n);
    }
}

void
simdFmaRow(Real *acc, const Real *x, Real w, Index n)
{
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        fmaRowAvx512(acc, x, w, n);
        return;
    case SimdLevel::Avx2:
        fmaRowAvx2(acc, x, w, n);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        fmaRowNeon(acc, x, w, n);
        return;
#endif
    default:
        fmaRowScalar(acc, x, w, n);
    }
}

void
simdPackB(const Matrix &b, std::vector<Real> &packed)
{
    const Index depth = b.rows();
    const Index width = b.cols();
    const Index panels = (width + kW - 1) / kW;
    packed.assign(static_cast<std::size_t>(panels) *
                      static_cast<std::size_t>(depth) *
                      static_cast<std::size_t>(kW),
                  0.0f);
    for (Index p = 0; p < panels; ++p) {
        Real *panel = packed.data() + p * depth * kW;
        const Index j0 = p * kW;
        const Index pw = std::min<Index>(kW, width - j0);
        for (Index k = 0; k < depth; ++k)
            std::memcpy(panel + k * kW, b.row(k).data() + j0,
                        static_cast<std::size_t>(pw) * sizeof(Real));
    }
}

void
simdGemmRowsPacked(const Matrix &a, const Real *packed, Index width,
                   Matrix &c, Index row_begin, Index row_end,
                   Index k_begin, Index k_end, Index bstride)
{
    if (k_end < 0)
        k_end = a.cols();
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        gemmRowsPackedAvx512(a, packed, width, c, row_begin, row_end,
                             k_begin, k_end, bstride);
        return;
    case SimdLevel::Avx2:
        gemmRowsPackedAvx2(a, packed, width, c, row_begin, row_end,
                           k_begin, k_end, bstride);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        gemmRowsPackedNeon(a, packed, width, c, row_begin, row_end,
                           k_begin, k_end, bstride);
        return;
#endif
    default:
        gemmRowsPackedScalar(a, packed, width, c, row_begin, row_end,
                             k_begin, k_end, bstride);
    }
}

void
simdVecMatRows(const Matrix &a, const Matrix &b, Matrix &c,
               Index row_begin, Index row_end)
{
    switch (activeSimdLevel()) {
#if CTA_SIMD_X86
    case SimdLevel::Avx512:
        vecMatRowsAvx512(a, b, c, row_begin, row_end);
        return;
    case SimdLevel::Avx2:
        vecMatRowsAvx2(a, b, c, row_begin, row_end);
        return;
#endif
#if CTA_SIMD_NEON
    case SimdLevel::Neon:
        vecMatRowsNeon(a, b, c, row_begin, row_end);
        return;
#endif
    default:
        vecMatRowsScalar(a, b, c, row_begin, row_end);
    }
}

} // namespace cta::core

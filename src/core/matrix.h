/**
 * @file
 * Row-major dense matrix of Real plus the small set of linear-algebra
 * kernels the CTA library needs (GEMM, transpose-B GEMM, row slicing).
 *
 * This is deliberately a compact owned-storage matrix, not an
 * expression-template library: every experiment in the paper operates
 * on dense m x d / n x d matrices, and the op-counting instrumentation
 * (see core/op_counter.h) is easier to keep exact with explicit
 * kernels.
 *
 * The free-function kernels below dispatch through the process-active
 * compute backend (core/backend.h) — naive reference loops or blocked
 * multithreaded kernels — while op accounting stays analytic, so
 * OpCounts are bit-identical for every backend and thread count.
 */

#pragma once

#include <span>
#include <vector>

#include "core/types.h"

namespace cta::core {

class Rng;
struct OpCounts;

/** Dense row-major matrix of Real values. */
class Matrix
{
  public:
    /** Creates an empty 0x0 matrix. */
    Matrix() = default;

    /** Creates a rows x cols matrix filled with @p fill. */
    Matrix(Index rows, Index cols, Real fill = 0);

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Total number of elements. */
    Index size() const { return rows_ * cols_; }

    /** True when the matrix has no elements. */
    bool empty() const { return size() == 0; }

    /** Heap bytes held by the storage (capacity, not just size — what
     *  the allocator actually reserved; the serving layer's memory
     *  accounting sums these). */
    std::size_t memoryBytes() const
    {
        return data_.capacity() * sizeof(Real);
    }

    /** Element access (bounds-checked in debug builds). */
    Real &operator()(Index r, Index c);

    /** Element access (bounds-checked in debug builds). */
    Real operator()(Index r, Index c) const;

    /** Mutable view of one row. */
    std::span<Real> row(Index r);

    /** Read-only view of one row. */
    std::span<const Real> row(Index r) const;

    /** Raw storage pointer (row-major). */
    Real *data() { return data_.data(); }

    /** Raw storage pointer (row-major). */
    const Real *data() const { return data_.data(); }

    /** Sets every element to @p value. */
    void fill(Real value);

    /** Returns a new matrix holding rows [begin, end). */
    Matrix rowSlice(Index begin, Index end) const;

    /** Appends all rows of @p other (same column count). */
    void appendRows(const Matrix &other);

    /** Matrix with entries drawn i.i.d. from N(mean, stddev^2). */
    static Matrix randomNormal(Index rows, Index cols, Rng &rng,
                               Real mean = 0, Real stddev = 1);

    /** Matrix with entries drawn i.i.d. from U[lo, hi). */
    static Matrix randomUniform(Index rows, Index cols, Rng &rng,
                                Real lo = 0, Real hi = 1);

    /** Identity matrix of the given order. */
    static Matrix identity(Index order);

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Real> data_;
};

/**
 * C = A * B.
 *
 * @param counts when non-null, charged rows(A)*cols(B)*cols(A) MACs.
 */
Matrix matmul(const Matrix &a, const Matrix &b,
              OpCounts *counts = nullptr);

/** C = A * B^T (the natural shape for Q . K^T). */
Matrix matmulTransB(const Matrix &a, const Matrix &b,
                    OpCounts *counts = nullptr);

/** Returns A^T. */
Matrix transpose(const Matrix &a);

/** Element-wise A + B. */
Matrix add(const Matrix &a, const Matrix &b, OpCounts *counts = nullptr);

/** Element-wise A - B. */
Matrix sub(const Matrix &a, const Matrix &b, OpCounts *counts = nullptr);

/** Element-wise s * A. */
Matrix scale(const Matrix &a, Real s, OpCounts *counts = nullptr);

/** Max absolute element difference; matrices must be the same shape. */
Real maxAbsDiff(const Matrix &a, const Matrix &b);

/** Frobenius norm of A. */
Real frobeniusNorm(const Matrix &a);

/** ||A - B||_F / ||B||_F, the relative error of A against reference B. */
Real relativeError(const Matrix &a, const Matrix &ref);

} // namespace cta::core

#include "core/stats.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace cta::core {

Wide
mean(std::span<const Wide> values)
{
    if (values.empty())
        return 0;
    Wide acc = 0;
    for (Wide v : values)
        acc += v;
    return acc / static_cast<Wide>(values.size());
}

Wide
stddev(std::span<const Wide> values)
{
    if (values.size() < 2)
        return 0;
    const Wide m = mean(values);
    Wide acc = 0;
    for (Wide v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<Wide>(values.size() - 1));
}

Wide
geomean(std::span<const Wide> values)
{
    CTA_REQUIRE(!values.empty(), "geomean of empty span");
    Wide log_acc = 0;
    for (Wide v : values) {
        CTA_REQUIRE(v > 0, "geomean requires positive values, got ", v);
        log_acc += std::log(v);
    }
    return std::exp(log_acc / static_cast<Wide>(values.size()));
}

Wide
geomeanPositive(std::span<const Wide> values)
{
    Wide log_acc = 0;
    std::size_t kept = 0;
    for (Wide v : values) {
        // "v > 0" is false for NaN as well, so this one branch drops
        // negatives, zeros, NaNs and -inf; +inf would poison the log
        // sum, so it is dropped too.
        if (!(v > 0) || std::isinf(v)) {
            CTA_WARN("geomeanPositive: dropping non-positive or "
                     "non-finite value ", v);
            continue;
        }
        log_acc += std::log(v);
        ++kept;
    }
    if (kept == 0) {
        CTA_WARN("geomeanPositive: no positive values, returning 0");
        return 0;
    }
    return std::exp(log_acc / static_cast<Wide>(kept));
}

Wide
minOf(std::span<const Wide> values)
{
    CTA_REQUIRE(!values.empty(), "minOf of empty span");
    return *std::min_element(values.begin(), values.end());
}

Wide
maxOf(std::span<const Wide> values)
{
    CTA_REQUIRE(!values.empty(), "maxOf of empty span");
    return *std::max_element(values.begin(), values.end());
}

Real
cosineSimilarity(std::span<const Real> a, std::span<const Real> b)
{
    CTA_REQUIRE(a.size() == b.size(), "cosine length mismatch");
    Wide dot = 0, na = 0, nb = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += static_cast<Wide>(a[i]) * b[i];
        na += static_cast<Wide>(a[i]) * a[i];
        nb += static_cast<Wide>(b[i]) * b[i];
    }
    if (na == 0 || nb == 0)
        return 0;
    return static_cast<Real>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

Real
l2Distance(std::span<const Real> a, std::span<const Real> b)
{
    CTA_REQUIRE(a.size() == b.size(), "l2Distance length mismatch");
    Wide acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Wide diff = static_cast<Wide>(a[i]) - b[i];
        acc += diff * diff;
    }
    return static_cast<Real>(std::sqrt(acc));
}

Real
squaredNorm(std::span<const Real> a)
{
    Wide acc = 0;
    for (Real v : a)
        acc += static_cast<Wide>(v) * v;
    return static_cast<Real>(acc);
}

void
RunningStat::add(Wide value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

} // namespace cta::core

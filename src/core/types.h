/**
 * @file
 * Fundamental scalar type aliases shared across the CTA library.
 */

#pragma once

#include <cstdint>

namespace cta::core {

/** Floating-point type used by all algorithm-level math. */
using Real = float;

/** Double-precision type used by accumulators and statistics. */
using Wide = double;

/** Index type for matrix dimensions, token positions, cluster ids. */
using Index = std::int64_t;

/** Cycle count type for the accelerator timing models. */
using Cycles = std::uint64_t;

} // namespace cta::core

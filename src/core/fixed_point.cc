#include "core/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.h"
#include "core/matrix.h"

namespace cta::core {

Real
FxpFormat::step() const
{
    return std::ldexp(1.0f, -fracBits);
}

Real
FxpFormat::maxValue() const
{
    // Largest code is 2^(totalBits-1) - 1.
    return decode((std::int64_t{1} << (totalBits - 1)) - 1);
}

Real
FxpFormat::minValue() const
{
    return decode(-(std::int64_t{1} << (totalBits - 1)));
}

Real
FxpFormat::quantize(Real x) const
{
    return decode(encode(x));
}

std::int64_t
FxpFormat::encode(Real x) const
{
    CTA_ASSERT(totalBits > 0 && totalBits <= 32 && fracBits >= 0 &&
               fracBits < totalBits, "bad FxP format ", totalBits,
               ".", fracBits);
    // Saturate in the float domain before scaling: llrint on a
    // non-finite or out-of-range scaled value is UB. NaN encodes as 0
    // (the hardware's saturating converters treat it as no signal).
    if (std::isnan(x))
        return 0;
    x = std::clamp(x, minValue(), maxValue());
    const Real scaled = std::ldexp(x, fracBits);
    const std::int64_t lo = -(std::int64_t{1} << (totalBits - 1));
    const std::int64_t hi = (std::int64_t{1} << (totalBits - 1)) - 1;
    // maxValue() rounds up to 2^(totalBits-1) in float for wide
    // formats, so clamp the integer code as well.
    const auto code = static_cast<std::int64_t>(std::llrint(scaled));
    return std::clamp(code, lo, hi);
}

Real
FxpFormat::decode(std::int64_t code) const
{
    return std::ldexp(static_cast<Real>(code), -fracBits);
}

std::string
FxpFormat::toString() const
{
    std::ostringstream oss;
    oss << "Q" << intBits() << "." << fracBits << " (" << totalBits
        << "b)";
    return oss.str();
}

Matrix
quantizeMatrix(const Matrix &m, const FxpFormat &fmt)
{
    Matrix out(m.rows(), m.cols());
    for (Index i = 0; i < m.size(); ++i)
        out.data()[i] = fmt.quantize(m.data()[i]);
    return out;
}

FxpFormat
fitWeightFormat(const Matrix &m, int total_bits)
{
    Real max_abs = 0;
    for (Index i = 0; i < m.size(); ++i)
        max_abs = std::max(max_abs, std::abs(m.data()[i]));
    // Smallest integer width (incl. sign) whose range covers max_abs.
    int int_bits = 1;
    while (int_bits < total_bits &&
           std::ldexp(1.0f, int_bits - 1) < max_abs) {
        ++int_bits;
    }
    return FxpFormat{total_bits, total_bits - int_bits};
}

} // namespace cta::core

#include "core/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "core/logging.h"
#include "core/parallel.h"

namespace cta::core {

double
parseEnvReal(const char *text, const char *what)
{
    if (text == nullptr || *text == '\0' ||
        std::isspace(static_cast<unsigned char>(*text)))
        CTA_FATAL("empty ", what);
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(text, &end);
    if (end == text || *end != '\0')
        CTA_FATAL("malformed ", what, " '", text,
                  "': expected a base-10 real number");
    if (errno == ERANGE || !std::isfinite(parsed))
        CTA_FATAL(what, " '", text, "' out of range");
    return parsed;
}

const char *
envString(const char *name)
{
    return std::getenv(name);
}

std::optional<long>
envInt(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    return parseEnvInt(text, name);
}

std::optional<double>
envReal(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    return parseEnvReal(text, name);
}

} // namespace cta::core

#include "core/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "core/logging.h"
#include "core/parallel.h"

namespace cta::core {

double
parseEnvReal(const char *text, const char *what)
{
    if (text == nullptr || *text == '\0' ||
        std::isspace(static_cast<unsigned char>(*text)))
        CTA_FATAL("empty ", what);
    char *end = nullptr;
    errno = 0;
    const double parsed = std::strtod(text, &end);
    if (end == text || *end != '\0')
        CTA_FATAL("malformed ", what, " '", text,
                  "': expected a base-10 real number");
    if (errno == ERANGE || !std::isfinite(parsed))
        CTA_FATAL(what, " '", text, "' out of range");
    return parsed;
}

std::size_t
parseEnvBytes(const char *text, const char *what)
{
    if (text == nullptr || *text == '\0' ||
        std::isspace(static_cast<unsigned char>(*text)))
        CTA_FATAL("empty ", what);
    if (*text == '-' || *text == '+')
        CTA_FATAL(what, " must be a positive byte count, got '", text,
                  "'");
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text, &end, 10);
    if (end == text)
        CTA_FATAL("malformed ", what, " '", text,
                  "': expected a byte count like 1048576 or 64M");
    if (errno == ERANGE)
        CTA_FATAL(what, " '", text, "' out of range");
    std::size_t multiplier = 1;
    if (*end != '\0') {
        switch (*end) {
        case 'k': case 'K': multiplier = 1ull << 10; break;
        case 'm': case 'M': multiplier = 1ull << 20; break;
        case 'g': case 'G': multiplier = 1ull << 30; break;
        default:
            CTA_FATAL("malformed ", what, " '", text,
                      "': expected a byte count like 1048576 or 64M");
        }
        if (*(end + 1) != '\0')
            CTA_FATAL("malformed ", what, " '", text,
                      "': expected a byte count like 1048576 or 64M");
    }
    if (parsed == 0)
        CTA_FATAL(what, " must be a positive byte count, got '", text,
                  "'");
    constexpr unsigned long long kMax = ~0ull;
    if (parsed > kMax / multiplier)
        CTA_FATAL(what, " '", text, "' out of range");
    return static_cast<std::size_t>(parsed * multiplier);
}

std::optional<std::size_t>
envBytes(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    return parseEnvBytes(text, name);
}

const char *
envString(const char *name)
{
    return std::getenv(name);
}

std::optional<long>
envInt(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    return parseEnvInt(text, name);
}

std::optional<double>
envReal(const char *name)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    return parseEnvReal(text, name);
}

} // namespace cta::core

/**
 * @file
 * Seeded, deterministic fault injection for the whole stack.
 *
 * CTA is a hardware-software co-design, so faults can originate on
 * either side: a flipped SRAM word in the CIM/CAG/PAG datapath (the
 * charge-domain and SRAM-based in-memory attention accelerators this
 * model family covers are exactly the parts that bit-rot), a
 * perturbed LSH bucket, a corrupted evicted-session blob, or queue
 * pressure in the serving layer. This library gives every such site a
 * registered, *deterministic* injection hook so robustness claims can
 * be soaked (bench/fault_soak.cc) instead of asserted.
 *
 * Determinism model — stateless, content-keyed draws. An injection
 * decision is a pure function of (seed, site, key): no global draw
 * counter, no RNG stream shared across threads. Call sites derive the
 * key from the operand itself (hash of a token's hash code, blob
 * bytes, a serial eviction ordinal, ...), so the same workload under
 * the same CTA_FAULT_SEED/CTA_FAULT_RATE faults the same operations
 * regardless of thread count or scheduling — which is what lets the
 * fault soak demand bit-identical outputs for every session the
 * fault set did not touch.
 *
 * Configuration (read once at process start, overridable with
 * setConfig() from tests/benches):
 *
 *   CTA_FAULT_SEED   integer seed folded into every draw (default 0)
 *   CTA_FAULT_RATE   per-opportunity injection probability in [0, 1]
 *                    (default 0 — fully disarmed)
 *   CTA_FAULT_SITES  comma-separated subset of
 *                    sram,cim,cag,pag,lsh,snapshot,queue,shard
 *                    (default "all"; "none" disarms by site)
 *
 * All three follow the strict env contract (core/env.h): malformed
 * values are fatal, never silently defaulted.
 *
 * Zero-cost guarantees. With CTA_FAULT_RATE=0 every hook reduces to
 * one branch on a process-global double, and no operand is touched —
 * outputs are bit-identical to a build without this library. Building
 * with -DCTA_FAULT=OFF compiles the hooks away entirely (armed()
 * becomes constexpr false), and cta_fault is not linked at all.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cta::fault {

/** Registered injection sites (one bit each in FaultConfig::sites). */
enum class Site : unsigned
{
    SramWord = 0, ///< sim/memory: bit flip in a stored SRAM word
    CimOperand,   ///< cta_accel/cim: bit flip in a streamed hash code
    CagOperand,   ///< cta_accel/cag: faulty centroid operand read
    PagOperand,   ///< cta_accel/pag: faulty CS/AP buffer read
    LshBucket,    ///< cta/lsh: off-by-one bucket in a token's code
    SnapshotBlob, ///< serve: byte corruption / truncation of a blob
    QueueDelay,   ///< serve/batcher: artificial deadline pressure
    ShardFault,   ///< serve/frontend: a whole shard wedges (its flush
                  ///< fails and every dispatched step bounces) or is
                  ///< poisoned (a resident snapshot is corrupted) —
                  ///< the shard-level fault domain the front-end's
                  ///< health machine and failover path must survive
};

inline constexpr unsigned kSiteCount = 8;
inline constexpr unsigned kAllSites = (1u << kSiteCount) - 1;

/** Short stable name of @p site ("sram", "cim", ...). */
constexpr const char *
siteName(Site site)
{
    switch (site) {
    case Site::SramWord:
        return "sram";
    case Site::CimOperand:
        return "cim";
    case Site::CagOperand:
        return "cag";
    case Site::PagOperand:
        return "pag";
    case Site::LshBucket:
        return "lsh";
    case Site::SnapshotBlob:
        return "snapshot";
    case Site::QueueDelay:
        return "queue";
    case Site::ShardFault:
        return "shard";
    }
    return "?";
}

/** Injection configuration; see the env knobs above. */
struct FaultConfig
{
    std::uint64_t seed = 0;
    double rate = 0;            ///< per-opportunity probability
    unsigned sites = kAllSites; ///< bit i enables Site(i)
};

#ifndef CTA_FAULT_DISABLED

/** Parses CTA_FAULT_SEED / CTA_FAULT_RATE / CTA_FAULT_SITES
 *  strictly; unset knobs keep the FaultConfig defaults. */
FaultConfig configFromEnv();

namespace detail {
/** Process config, published as PODs so armed() stays one load. */
extern double g_rate;
extern unsigned g_sites;
extern std::uint64_t g_seed;
} // namespace detail

/** The active process configuration. */
FaultConfig config();

/**
 * Replaces the process configuration (tests and the fault soak; env
 * wins only as the initial value). Must not race in-flight work —
 * reconfigure between flushes, not during one.
 */
void setConfig(const FaultConfig &config);

/** True when @p site can inject at all (rate > 0 and site enabled).
 *  Hooks guard on this so a disarmed run costs one branch. */
inline bool
armed(Site site)
{
    return detail::g_rate > 0 &&
           ((detail::g_sites >> static_cast<unsigned>(site)) & 1u);
}

/** Deterministic 64-bit mix of (seed, site, key). */
std::uint64_t mix(Site site, std::uint64_t key);

/** FNV-1a over raw bytes — the canonical content key. */
std::uint64_t hashBytes(const void *data, std::size_t size);

/**
 * The injection decision: true with probability rate, as a pure
 * function of (seed, site, key). Records the injection (per-site and
 * per-thread counters) when it fires. Callers that get `true` MUST
 * perform the corresponding corruption — the counters are the soak's
 * ground truth.
 */
bool inject(Site site, std::uint64_t key);

/** Flips one deterministically chosen bit of @p value when the draw
 *  for (site, key) fires; returns whether it did. */
bool flipInt32Bit(Site site, std::uint64_t key, std::int32_t &value);

/** Moves @p bucket one step up or down (saturating) when the draw
 *  fires — an LSH boundary flip; returns whether it did. */
bool perturbBucket(Site site, std::uint64_t key, std::int32_t &bucket);

/**
 * Corrupts @p blob in place when the draw fires: usually one flipped
 * byte, sometimes a truncated tail (both deterministic in the key).
 * Returns whether the blob was modified.
 */
bool corruptBlob(Site site, std::uint64_t key,
                 std::vector<std::uint8_t> &blob);

/**
 * Deterministic number of faulty words among @p words accesses:
 * floor(words * rate) plus one more with the fractional probability
 * (so the expectation is exact without per-word draws). Records the
 * returned count.
 */
std::uint64_t faultyWords(Site site, std::uint64_t key,
                          std::uint64_t words);

/** Injections recorded by the *calling thread* since thread start.
 *  A serial consumer (e.g. one decode step) brackets its work with
 *  two reads to learn whether it was faulted. */
std::uint64_t threadInjections();

/** Process-wide injections recorded at @p site. */
std::uint64_t totalInjections(Site site);

/** Process-wide injections across all sites. */
std::uint64_t totalInjections();

/** Zeroes the per-site totals (bench phases; per-thread counters are
 *  monotonic and never reset). */
void resetInjectionCounters();

#else // CTA_FAULT_DISABLED: every hook folds to nothing at compile
      // time, and cta_fault is not linked.

inline FaultConfig configFromEnv() { return {}; }
inline FaultConfig config() { return {}; }
inline void setConfig(const FaultConfig &) {}
constexpr bool armed(Site) { return false; }
inline std::uint64_t mix(Site, std::uint64_t) { return 0; }
inline std::uint64_t hashBytes(const void *, std::size_t) { return 0; }
inline bool inject(Site, std::uint64_t) { return false; }
inline bool flipInt32Bit(Site, std::uint64_t, std::int32_t &)
{
    return false;
}
inline bool perturbBucket(Site, std::uint64_t, std::int32_t &)
{
    return false;
}
inline bool corruptBlob(Site, std::uint64_t,
                        std::vector<std::uint8_t> &)
{
    return false;
}
inline std::uint64_t faultyWords(Site, std::uint64_t, std::uint64_t)
{
    return 0;
}
inline std::uint64_t threadInjections() { return 0; }
inline std::uint64_t totalInjections(Site) { return 0; }
inline std::uint64_t totalInjections() { return 0; }
inline void resetInjectionCounters() {}

#endif // CTA_FAULT_DISABLED

} // namespace cta::fault

#include "fault/fault.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>

#include "core/env.h"
#include "core/logging.h"

namespace cta::fault {

namespace detail {

double g_rate = 0;
unsigned g_sites = kAllSites;
std::uint64_t g_seed = 0;

} // namespace detail

namespace {

/** Per-site process totals (relaxed atomics; addition commutes, so
 *  totals are thread-count-invariant for a deterministic fault set). */
std::atomic<std::uint64_t> g_totals[kSiteCount];

/** Per-thread injection count — lets a serial consumer bracket its
 *  work and learn whether any fault fired inside it. */
thread_local std::uint64_t tls_injections = 0;

/** Distinct salt per site so the same key draws independently. */
constexpr std::uint64_t
siteSalt(Site site)
{
    return 0x9E3779B97F4A7C15ull *
           (static_cast<std::uint64_t>(site) + 2);
}

/** splitmix64 finalizer — full-avalanche 64-bit mixing. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) double from the top 53 bits of @p bits. */
double
unitReal(std::uint64_t bits)
{
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

void
record(Site site, std::uint64_t count)
{
    g_totals[static_cast<unsigned>(site)].fetch_add(
        count, std::memory_order_relaxed);
    tls_injections += count;
}

unsigned
parseSites(const char *text)
{
    const std::string spec(text);
    if (spec == "all")
        return kAllSites;
    if (spec == "none")
        return 0;
    unsigned mask = 0;
    std::size_t at = 0;
    while (at <= spec.size()) {
        const std::size_t comma = spec.find(',', at);
        const std::string name = spec.substr(
            at, comma == std::string::npos ? std::string::npos
                                           : comma - at);
        bool known = false;
        for (unsigned s = 0; s < kSiteCount; ++s) {
            if (name == siteName(static_cast<Site>(s))) {
                mask |= 1u << s;
                known = true;
                break;
            }
        }
        CTA_REQUIRE(known, "CTA_FAULT_SITES entry '", name,
                    "' unknown (expected all | none | a comma list "
                    "of sram,cim,cag,pag,lsh,snapshot,queue,shard)");
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return mask;
}

/** Publishes @p config to the POD globals armed() reads. */
void
publish(const FaultConfig &config)
{
    detail::g_seed = config.seed;
    detail::g_sites = config.sites;
    detail::g_rate = config.rate;
}

/** Loads the env config exactly once, before main() in practice. */
struct EnvInit
{
    EnvInit() { publish(configFromEnv()); }
};

EnvInit &
envInit()
{
    static EnvInit init;
    return init;
}

// Force env parsing during static initialization so armed() is
// correct from the first instruction of main().
const EnvInit &g_envInitForced = envInit();

} // namespace

FaultConfig
configFromEnv()
{
    FaultConfig config;
    if (const auto seed = core::envInt("CTA_FAULT_SEED"))
        config.seed = static_cast<std::uint64_t>(*seed);
    if (const auto rate = core::envReal("CTA_FAULT_RATE")) {
        CTA_REQUIRE(*rate >= 0 && *rate <= 1,
                    "CTA_FAULT_RATE must lie in [0, 1], got ", *rate);
        config.rate = *rate;
    }
    if (const char *sites = core::envString("CTA_FAULT_SITES"))
        config.sites = parseSites(sites);
    return config;
}

FaultConfig
config()
{
    envInit();
    FaultConfig config;
    config.seed = detail::g_seed;
    config.rate = detail::g_rate;
    config.sites = detail::g_sites;
    return config;
}

void
setConfig(const FaultConfig &config)
{
    envInit(); // keep init order deterministic
    CTA_REQUIRE(config.rate >= 0 && config.rate <= 1,
                "fault rate must lie in [0, 1], got ", config.rate);
    publish(config);
}

std::uint64_t
mix(Site site, std::uint64_t key)
{
    return splitmix64(detail::g_seed ^ siteSalt(site) ^
                      splitmix64(key));
}

std::uint64_t
hashBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xCBF29CE484222325ull; // FNV-1a offset basis
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

bool
inject(Site site, std::uint64_t key)
{
    if (!armed(site))
        return false;
    if (unitReal(mix(site, key)) >= detail::g_rate)
        return false;
    record(site, 1);
    return true;
}

bool
flipInt32Bit(Site site, std::uint64_t key, std::int32_t &value)
{
    if (!inject(site, key))
        return false;
    const unsigned bit =
        static_cast<unsigned>(mix(site, key ^ 0x5Bu) % 32);
    value ^= static_cast<std::int32_t>(std::uint32_t{1} << bit);
    return true;
}

bool
perturbBucket(Site site, std::uint64_t key, std::int32_t &bucket)
{
    if (!inject(site, key))
        return false;
    const bool up = (mix(site, key ^ 0xB5u) & 1u) != 0;
    // Saturate at the int32 bounds like lsh.cc's toBucket().
    if (up && bucket != std::numeric_limits<std::int32_t>::max())
        ++bucket;
    else if (!up &&
             bucket != std::numeric_limits<std::int32_t>::min())
        --bucket;
    else
        bucket = up ? bucket - 1 : bucket + 1;
    return true;
}

bool
corruptBlob(Site site, std::uint64_t key,
            std::vector<std::uint8_t> &blob)
{
    if (blob.empty() || !inject(site, key))
        return false;
    const std::uint64_t draw = mix(site, key ^ 0xC0u);
    if ((draw & 3u) == 0) {
        // Truncate a short tail — models a torn write.
        const std::size_t drop = std::min(
            blob.size(),
            static_cast<std::size_t>(1 + ((draw >> 2) & 0xF)));
        blob.resize(blob.size() - drop);
        return true;
    }
    // Flip one byte with a guaranteed-nonzero mask.
    const std::size_t at =
        static_cast<std::size_t>((draw >> 2) % blob.size());
    std::uint8_t mask = static_cast<std::uint8_t>(draw >> 32);
    if (mask == 0)
        mask = 0xA5;
    blob[at] ^= mask;
    return true;
}

std::uint64_t
faultyWords(Site site, std::uint64_t key, std::uint64_t words)
{
    if (!armed(site) || words == 0)
        return 0;
    const double expected =
        static_cast<double>(words) * detail::g_rate;
    auto count = static_cast<std::uint64_t>(expected);
    const double frac = expected - static_cast<double>(count);
    if (unitReal(mix(site, key)) < frac)
        ++count;
    count = std::min(count, words);
    if (count > 0)
        record(site, count);
    return count;
}

std::uint64_t
threadInjections()
{
    return tls_injections;
}

std::uint64_t
totalInjections(Site site)
{
    return g_totals[static_cast<unsigned>(site)].load(
        std::memory_order_relaxed);
}

std::uint64_t
totalInjections()
{
    std::uint64_t total = 0;
    for (unsigned s = 0; s < kSiteCount; ++s)
        total += g_totals[s].load(std::memory_order_relaxed);
    return total;
}

void
resetInjectionCounters()
{
    for (unsigned s = 0; s < kSiteCount; ++s)
        g_totals[s].store(0, std::memory_order_relaxed);
}

} // namespace cta::fault

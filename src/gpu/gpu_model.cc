#include "gpu/gpu_model.h"

#include <algorithm>

#include "core/logging.h"

namespace cta::gpu {

GpuModel::GpuModel(const sim::GpuParams &params) : params_(params)
{
    // Every one of these ends up in a roofline denominator; zero or
    // negative would turn latencies into inf/NaN far from the bad
    // config, so reject at construction.
    CTA_REQUIRE(params_.peakFp32Tflops > 0 &&
                params_.hbmBandwidthGBs > 0 &&
                params_.bandwidthEfficiency > 0 &&
                params_.gemmEfficiency > 0 &&
                params_.attentionMatmulEfficiency > 0 &&
                params_.elementwiseEfficiency > 0 &&
                params_.launchAmortization > 0,
                "GpuParams rates/efficiencies must be positive");
    CTA_REQUIRE(params_.kernelLaunchUs >= 0 &&
                params_.serialDependencyNs >= 0,
                "GpuParams overheads must be non-negative");
}

Wide
GpuModel::kernelSeconds(Wide flops, Wide bytes, Wide flop_eff,
                        Wide kernels) const
{
    CTA_ASSERT(flops >= 0 && bytes >= 0 && kernels >= 0,
               "negative kernel work");
    // No work means no launch: zero-length sequences must price to
    // zero seconds, not to bare launch overhead.
    if (flops <= 0 && bytes <= 0)
        return 0;
    const Wide compute =
        flops / (params_.peakFp32Tflops * 1e12 * flop_eff);
    const Wide memory = bytes /
        (params_.hbmBandwidthGBs * 1e9 * params_.bandwidthEfficiency);
    const Wide launch = kernels * params_.kernelLaunchUs * 1e-6 /
        params_.launchAmortization;
    return std::max(compute, memory) + launch;
}

Wide
GpuModel::linearSeconds(Index m, Index n, Index dw, Index d) const
{
    CTA_ASSERT(m >= 0 && n >= 0 && dw >= 0 && d >= 0,
               "negative shape");
    if (m + n == 0 || dw == 0 || d == 0)
        return 0;
    const Wide flops =
        2.0 * static_cast<Wide>(m + 2 * n) * dw * d;
    const Wide bytes =
        (static_cast<Wide>(m + 2 * n) * dw      // token reads
         + 3.0 * static_cast<Wide>(dw) * d      // weights
         + static_cast<Wide>(m + 2 * n) * d) *  // Q/K/V writes
        4.0;
    return kernelSeconds(flops, bytes, params_.gemmEfficiency, 3.0);
}

Wide
GpuModel::attentionCalcSeconds(Index m, Index n, Index d) const
{
    CTA_ASSERT(m >= 0 && n >= 0 && d >= 0, "negative shape");
    if (m == 0 || n == 0)
        return 0;
    const Wide mn = static_cast<Wide>(m) * n;
    // S = Q K^T and O = P V.
    const Wide matmul_flops = 2.0 * 2.0 * mn * d;
    const Wide matmul_bytes =
        (2.0 * mn                                  // S write, P read
         + 2.0 * static_cast<Wide>(m + n) * d) * 4.0;
    const Wide matmul = kernelSeconds(
        matmul_flops, matmul_bytes,
        params_.attentionMatmulEfficiency, 2.0);
    // Softmax: ~4 flops per cell (max/sub/exp/div), 3 passes of S.
    const Wide softmax = kernelSeconds(
        4.0 * mn, 3.0 * mn * 4.0, params_.elementwiseEfficiency, 2.0);
    return matmul + softmax;
}

Wide
GpuModel::exactAttentionSeconds(Index m, Index n, Index dw,
                                Index d) const
{
    return linearSeconds(m, n, dw, d) + attentionCalcSeconds(m, n, d);
}

Wide
GpuModel::ctaOnGpuSeconds(const alg::CompressionStats &stats) const
{
    CTA_ASSERT(stats.n >= 0 && stats.k0 >= 0 && stats.k1 >= 0 &&
               stats.k2 >= 0 && stats.dw >= 0 && stats.d >= 0,
               "negative compression stats");
    // An empty sequence compresses to nothing and launches nothing.
    if (stats.n == 0)
        return 0;
    // Matrix stages on compressed shapes at GEMM efficiency.
    const Index k_total = stats.k1 + stats.k2;
    const Wide lin_flops = 2.0 *
        static_cast<Wide>(stats.k0 + 2 * k_total) * stats.dw * stats.d;
    const Wide mm_flops = 2.0 * 2.0 *
        static_cast<Wide>(stats.k0) * k_total * stats.d;
    const Wide matrix = kernelSeconds(
        lin_flops + mm_flops, lin_flops, params_.gemmEfficiency, 5.0);
    // Irregular stages: hashing is a thin GEMM, but cluster-tree
    // maintenance and scatter-style centroid/probability aggregation
    // serialize badly ("coarse CUDA kernels", paper SIV). Charge the
    // sequential dependences at element-wise efficiency with a
    // per-element serialization factor.
    const Wide hash_flops = 2.0 * 3.0 * 6.0 *
        static_cast<Wide>(stats.n) * stats.dw;
    const Wide scatter_elems =
        static_cast<Wide>(stats.n) * stats.dw * 3.0       // centroids
        + static_cast<Wide>(stats.k0) * stats.n * 3.0;    // AP merges
    const Wide irregular = kernelSeconds(
        hash_flops + 8.0 * scatter_elems, scatter_elems * 8.0,
        params_.elementwiseEfficiency, 8.0);
    // Cluster-tree maintenance is a loop-carried dependence: each of
    // the three clusterings walks n tokens through l trie levels with
    // serialized global-memory updates — the part no kernel tuning
    // fixes (paper SIV: "sequential logics which can only be
    // implemented into coarse CUDA kernels").
    const Wide serial = 3.0 * static_cast<Wide>(stats.n) * 6.0 *
        params_.serialDependencyNs * 1e-9;
    return matrix + irregular + serial;
}

Wide
GpuModel::energyJ(Wide seconds) const
{
    return params_.boardPowerW * seconds;
}

sim::PerfReport
GpuModel::runExactHead(Index m, Index n, Index dw, Index d,
                       const std::string &platform) const
{
    sim::PerfReport report;
    report.platform = platform;
    report.freqGhz = 1.0; // report cycles as nanoseconds
    const Wide lin_s = linearSeconds(m, n, dw, d);
    const Wide attn_s = attentionCalcSeconds(m, n, d);
    report.latency.linears =
        static_cast<core::Cycles>(lin_s * 1e9);
    report.latency.attention =
        static_cast<core::Cycles>(attn_s * 1e9);
    const Wide joules = energyJ(lin_s + attn_s);
    report.energy.computePj = joules * 1e12;
    return report;
}

} // namespace cta::gpu

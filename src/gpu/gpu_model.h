/**
 * @file
 * Analytical V100-SXM2 model (DESIGN.md substitution #2): the
 * normalization baseline for every throughput/energy figure.
 *
 * Each kernel class is priced by a roofline —
 * max(flops / (peak x efficiency), bytes / (bandwidth x efficiency))
 * — plus amortized launch overhead, with the efficiency derates in
 * sim::GpuParams calibrated to published V100 PyTorch attention
 * profiles. All quantities are per attention head with the full GPU
 * available (equivalently: per-head time of a perfectly batched run,
 * the GPU's best-throughput operating point the paper measures).
 *
 * Also prices the CUDA implementation of CTA itself (paper SIV
 * opening: 1.0-2.1x the latency of normal attention even after
 * Antares tuning) by charging the irregular, serialized kernels at
 * element-wise efficiency.
 */

#pragma once

#include <string>

#include "core/types.h"
#include "cta/compressed_attention.h"
#include "sim/report.h"

namespace cta::gpu {

using core::Index;
using sim::Wide;

/** The analytical GPU cost model. */
class GpuModel
{
  public:
    explicit GpuModel(const sim::GpuParams &params =
                          sim::GpuParams::v100Sxm2());

    /** Q/K/V projection time for one head (seconds). */
    Wide linearSeconds(Index m, Index n, Index dw, Index d) const;

    /** Score + softmax + output time for one head (seconds). */
    Wide attentionCalcSeconds(Index m, Index n, Index d) const;

    /** Whole attention mechanism (linears + attention calc). */
    Wide exactAttentionSeconds(Index m, Index n, Index dw,
                               Index d) const;

    /**
     * CTA's own scheme executed as CUDA kernels: the matrix stages
     * run at GEMM efficiency on the compressed shapes, but the
     * clustering / aggregation stages serialize into element-wise-
     * efficiency kernels, reproducing the paper's observation that
     * GPU-CTA is not faster than normal attention.
     */
    Wide ctaOnGpuSeconds(const alg::CompressionStats &stats) const;

    /** Board energy for a run of @p seconds. */
    Wide energyJ(Wide seconds) const;

    /** Full PerfReport for one exact-attention head evaluation. */
    sim::PerfReport runExactHead(Index m, Index n, Index dw, Index d,
                                 const std::string &platform =
                                     "V100") const;

    const sim::GpuParams &params() const { return params_; }

  private:
    /** Roofline for one kernel class. */
    Wide kernelSeconds(Wide flops, Wide bytes, Wide flop_eff,
                       Wide kernels) const;

    sim::GpuParams params_;
};

} // namespace cta::gpu

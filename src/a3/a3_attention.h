/**
 * @file
 * Reconstruction of the A^3 approximate-attention algorithm (Ham et
 * al., HPCA 2020) — the other query-specific pruning accelerator the
 * CTA paper positions against (reference [42]).
 *
 * A^3 preprocesses the key matrix by sorting each dimension's
 * components. For each query it runs a greedy candidate search (a
 * Fagin/threshold-style iteration): every round takes, over all
 * dimensions, the largest remaining |q_j * K_sorted| component
 * product and credits it to that key's partial score. After M rounds
 * the keys with the largest partial scores become candidates, and
 * exact attention runs over the candidates only.
 *
 * Like ELSA, the defining structural property is query-specific
 * selection: processing is query-serial, and the per-dimension
 * sorted arrays are walked per query — exactly the behaviour CTA's
 * token-level compression removes.
 */

#pragma once

#include <vector>

#include "core/matrix.h"
#include "core/op_counter.h"
#include "nn/attention.h"

namespace cta::a3 {

/** Per-dimension sorted view of a key matrix (A^3 preprocessing). */
class SortedKeys
{
  public:
    /** Sorts each column of K (n x d) descending by value. */
    explicit SortedKeys(const core::Matrix &k,
                        core::OpCounts *counts = nullptr);

    /** Key index with the r-th largest component in dim @p j. */
    core::Index rankToKey(core::Index j, core::Index rank) const;

    /** The r-th largest component value in dim @p j. */
    core::Real rankToValue(core::Index j, core::Index rank) const;

    core::Index numKeys() const { return n_; }
    core::Index dim() const { return d_; }

  private:
    core::Index n_ = 0;
    core::Index d_ = 0;
    /** order_[j * n + r] = key index of rank r in dimension j. */
    std::vector<core::Index> order_;
    const core::Matrix *keys_;
};

/** Tunable parameters of one A^3 evaluation. */
struct A3Config
{
    /** Greedy iterations per query (the approximation knob; A^3
     *  sweeps this from aggressive to conservative). */
    core::Index searchRounds = 64;
    /** Candidates kept per query (top partial scores). */
    core::Index candidates = 32;
};

/** Result of one A^3 attention evaluation. */
struct A3Result
{
    core::Matrix output;
    /** Mean kept-key fraction. */
    core::Real candidateRatio = 0;
    /** Preprocessing + greedy-search ops. */
    core::OpCounts approxOps;
    /** Exact attention over candidates. */
    core::OpCounts attnOps;
    /** Q/K/V projections (host side). */
    core::OpCounts linearOps;
    core::Index m = 0, n = 0, d = 0;
};

/** Runs the reconstructed A^3 scheme for one attention head. */
A3Result a3Attention(const core::Matrix &xq, const core::Matrix &xkv,
                     const nn::AttentionHeadParams &params,
                     const A3Config &config);

} // namespace cta::a3

#include "a3/a3_accel.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace cta::a3 {

using core::Cycles;
using core::Index;
using sim::Wide;

A3Accelerator::A3Accelerator(const A3HwConfig &config,
                             const sim::TechParams &tech)
    : hwConfig_(config), tech_(tech)
{
    CTA_REQUIRE(config.searchLanes > 0 && config.dim > 0,
                "invalid A3 configuration");
    CTA_REQUIRE(config.maxSeqLen > 0,
                "A3 memory sizing must be positive");
    CTA_REQUIRE(config.freqGhz > 0,
                "A3 clock frequency must be positive");
}

Wide
A3Accelerator::areaMm2() const
{
    // Sorting/merge network + candidate datapath + d-wide exact
    // attention pipeline + key/value/sorted-index SRAM.
    const Wide datapath =
        static_cast<Wide>(2 * hwConfig_.dim) * tech_.peAreaMm2 +
        0.06 /* sort/merge + heap logic */ + tech_.lutAreaMm2;
    const Wide kv_kb = 2.0 * static_cast<Wide>(hwConfig_.maxSeqLen) *
        static_cast<Wide>(hwConfig_.dim) * 2.0 / 1024.0;
    const Wide idx_kb = static_cast<Wide>(hwConfig_.maxSeqLen) *
        static_cast<Wide>(hwConfig_.dim) * 2.0 / 1024.0;
    return datapath + (kv_kb + idx_kb) * tech_.sramAreaMm2PerKb;
}

A3AccelResult
A3Accelerator::run(const core::Matrix &xq, const core::Matrix &xkv,
                   const nn::AttentionHeadParams &params,
                   const A3Config &alg_config,
                   const std::string &platform) const
{
    CTA_REQUIRE(xkv.rows() <= hwConfig_.maxSeqLen,
                "sequence too long for configured A3 memory");
    A3AccelResult out;
    out.algorithm = a3Attention(xq, xkv, params, alg_config);
    const auto &alg = out.algorithm;
    const auto n = static_cast<std::uint64_t>(alg.n);
    const auto m = static_cast<std::uint64_t>(alg.m);
    const auto d = static_cast<std::uint64_t>(alg.d);

    // --- Timing. ---
    // Preprocessing: the merge network sorts d columns of n keys in
    // ~n log2(n) / d-parallel cycles; A^3 pipelines one column per
    // n-cycle pass.
    const auto logn = static_cast<Cycles>(
        std::ceil(std::log2(std::max<Index>(2, alg.n))));
    Cycles cycles = static_cast<Cycles>(alg.n) * logn;
    // Per query: search rounds / lanes, overlapped with the previous
    // query's candidate pipeline (candidates + d drain).
    const Cycles search = static_cast<Cycles>(
        (alg_config.searchRounds + hwConfig_.searchLanes - 1) /
        hwConfig_.searchLanes);
    const auto keep = static_cast<Cycles>(
        std::min<Index>(alg_config.candidates, alg.n));
    for (Index i = 0; i < alg.m; ++i)
        cycles += std::max(search, keep);
    out.report.latency.attention = cycles;

    // --- Memory traffic. ---
    sim::SramModel kv_mem("A3 key/value",
        2.0 * static_cast<Wide>(hwConfig_.maxSeqLen) *
        static_cast<Wide>(hwConfig_.dim) * 2.0 / 1024.0, tech_);
    sim::SramModel idx_mem("A3 sorted index",
        static_cast<Wide>(hwConfig_.maxSeqLen) *
        static_cast<Wide>(hwConfig_.dim) * 2.0 / 1024.0, tech_);
    kv_mem.write(2 * n * d);
    idx_mem.write(n * d);                  // sorted orders
    kv_mem.read(n * d * logn / 2);         // sorting passes
    // Per query: search rounds touch the sorted arrays; candidates
    // re-read K and V rows.
    idx_mem.read(m * static_cast<std::uint64_t>(
        alg_config.searchRounds) * 2);
    const auto cand_rows = static_cast<std::uint64_t>(
        static_cast<Wide>(alg.candidateRatio) *
        static_cast<Wide>(n) * static_cast<Wide>(m));
    kv_mem.read(2 * cand_rows * d);
    out.report.traffic.reads = kv_mem.reads() + idx_mem.reads();
    out.report.traffic.writes = kv_mem.writes() + idx_mem.writes();

    // --- Energy. ---
    sim::EnergyBreakdown energy;
    energy.memoryPj =
        kv_mem.dynamicEnergyPj() + idx_mem.dynamicEnergyPj();
    energy.computePj =
        static_cast<Wide>(alg.attnOps.macs) *
            (tech_.macEnergyPj + 2.0 * tech_.regEnergyPj) +
        static_cast<Wide>(alg.attnOps.exps) * tech_.expLutEnergyPj +
        static_cast<Wide>(alg.attnOps.adds) * tech_.addEnergyPj +
        static_cast<Wide>(alg.attnOps.muls) * tech_.mulEnergyPj;
    energy.auxiliaryPj =
        static_cast<Wide>(alg.approxOps.cmps) * tech_.cmpEnergyPj +
        static_cast<Wide>(alg.approxOps.muls) * tech_.mulEnergyPj +
        static_cast<Wide>(alg.approxOps.adds) * tech_.addEnergyPj;
    const Wide seconds = static_cast<Wide>(cycles) /
        (static_cast<Wide>(hwConfig_.freqGhz) * 1e9);
    energy.staticPj = tech_.leakageMwPerMm2 * areaMm2() * 1e-3 *
        seconds * 1e12;
    out.report.energy = energy;

    out.report.platform = platform;
    out.report.areaMm2 = areaMm2();
    out.report.freqGhz = hwConfig_.freqGhz;
    return out;
}

} // namespace cta::a3

/**
 * @file
 * Cycle/energy model of the A^3 accelerator (reconstructed from the
 * HPCA'20 architecture description): a preprocessing unit sorts the
 * key columns once per KV set; per query, the candidate-selection
 * module retires one greedy-search round per cycle and the exact
 * attention pipeline one candidate per cycle, query-serially
 * (overlapped across consecutive queries).
 */

#pragma once

#include <string>

#include "a3/a3_attention.h"
#include "sim/memory.h"
#include "sim/report.h"

namespace cta::a3 {

/** Static configuration of one A^3 accelerator instance. */
struct A3HwConfig
{
    core::Index dim = 64;
    core::Index maxSeqLen = 512;
    /** Greedy rounds retired per cycle. */
    core::Index searchLanes = 1;
    core::Real freqGhz = 1.0f;

    static A3HwConfig paperDefault() { return {}; }
};

/** Timed/priced result of one A^3-accelerated attention head. */
struct A3AccelResult
{
    A3Result algorithm;
    sim::PerfReport report; ///< attention part only (no linears)
};

/** The A^3 accelerator model. */
class A3Accelerator
{
  public:
    A3Accelerator(const A3HwConfig &config,
                  const sim::TechParams &tech);

    /** Simulates the attention part of one head. */
    A3AccelResult run(const core::Matrix &xq, const core::Matrix &xkv,
                      const nn::AttentionHeadParams &params,
                      const A3Config &alg_config,
                      const std::string &platform) const;

    sim::Wide areaMm2() const;

  private:
    A3HwConfig hwConfig_;
    sim::TechParams tech_;
};

} // namespace cta::a3

#include "a3/a3_attention.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "core/logging.h"
#include "core/parallel.h"

namespace cta::a3 {

using core::Index;
using core::Matrix;
using core::Real;
using core::Wide;

SortedKeys::SortedKeys(const Matrix &k, core::OpCounts *counts)
    : n_(k.rows()), d_(k.cols()),
      order_(static_cast<std::size_t>(k.rows()) *
             static_cast<std::size_t>(k.cols())),
      keys_(&k)
{
    for (Index j = 0; j < d_; ++j) {
        const auto base = static_cast<std::size_t>(j * n_);
        std::iota(order_.begin() + static_cast<std::ptrdiff_t>(base),
                  order_.begin() +
                      static_cast<std::ptrdiff_t>(base + n_),
                  Index{0});
        std::sort(order_.begin() + static_cast<std::ptrdiff_t>(base),
                  order_.begin() +
                      static_cast<std::ptrdiff_t>(base + n_),
                  [&](Index a, Index b) {
                      return k(a, j) > k(b, j);
                  });
    }
    if (counts) {
        // n log2(n) comparisons per dimension (sorting network /
        // merge hardware in the A^3 preprocessing unit).
        const auto logn = static_cast<std::uint64_t>(
            std::ceil(std::log2(std::max<Index>(2, n_))));
        counts->cmps += static_cast<std::uint64_t>(d_) *
                        static_cast<std::uint64_t>(n_) * logn;
    }
}

Index
SortedKeys::rankToKey(Index j, Index rank) const
{
    CTA_ASSERT(j >= 0 && j < d_ && rank >= 0 && rank < n_,
               "sorted-key rank out of range");
    return order_[static_cast<std::size_t>(j) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(rank)];
}

Real
SortedKeys::rankToValue(Index j, Index rank) const
{
    return (*keys_)(rankToKey(j, rank), j);
}

A3Result
a3Attention(const Matrix &xq, const Matrix &xkv,
            const nn::AttentionHeadParams &params,
            const A3Config &config)
{
    CTA_REQUIRE(xq.cols() == xkv.cols(), "query/key token dims differ");
    CTA_REQUIRE(config.searchRounds > 0 && config.candidates > 0,
                "invalid A3Config");

    A3Result result;
    result.m = xq.rows();
    result.n = xkv.rows();

    const Matrix q = params.wq.forward(xq, &result.linearOps);
    const Matrix k = params.wk.forward(xkv, &result.linearOps);
    const Matrix v = params.wv.forward(xkv, &result.linearOps);
    result.d = q.cols();
    const Real inv_sqrt_d =
        1.0f / std::sqrt(static_cast<Real>(result.d));

    const SortedKeys sorted(k, &result.approxOps);
    const auto keep = std::min<Index>(config.candidates, result.n);

    result.output = Matrix(result.m, result.d);

    // Per-query fan-out over chunks of the query range (see
    // core/parallel.h): each chunk owns its scratch buffers and an
    // OpCounts/ratio partial; partials reduce in ascending chunk
    // order after the join so counts are thread-count-invariant.
    struct QueryChunkPartial
    {
        core::OpCounts approx;
        core::OpCounts attn;
        Wide ratioSum = 0;
    };
    const auto spans = core::chunkSpans(0, result.m, /*grain=*/8);
    std::vector<QueryChunkPartial> partials(spans.size());
    core::ThreadPool::global().run(
        static_cast<Index>(spans.size()), [&](Index chunk) {
    auto &acc = partials[static_cast<std::size_t>(chunk)];
    auto &approx_ops = acc.approx;
    auto &attn_ops = acc.attn;
    const auto &span = spans[static_cast<std::size_t>(chunk)];
    std::vector<Real> partial(static_cast<std::size_t>(result.n));
    std::vector<Index> touched;
    for (Index i = span.first; i < span.second; ++i) {
        std::fill(partial.begin(), partial.end(), 0.0f);
        touched.clear();

        // Greedy threshold search: per dimension, a cursor walks the
        // sorted column from the end matching sign(q_j); each round
        // consumes the globally largest remaining q_j * K component.
        struct Cursor
        {
            Real product;
            Index dim;
            Index rank;
        };
        const auto cmp = [](const Cursor &a, const Cursor &b) {
            return a.product < b.product;
        };
        std::priority_queue<Cursor, std::vector<Cursor>,
                            decltype(cmp)> frontier(cmp);
        for (Index j = 0; j < result.d; ++j) {
            const Real qj = q(i, j);
            if (qj == 0)
                continue;
            const Index rank = qj > 0 ? 0 : result.n - 1;
            frontier.push(Cursor{
                qj * sorted.rankToValue(j, rank), j, rank});
        }
        approx_ops.muls +=
            static_cast<std::uint64_t>(result.d);

        for (Index round = 0;
             round < config.searchRounds && !frontier.empty();
             ++round) {
            const Cursor top = frontier.top();
            frontier.pop();
            const Index key = sorted.rankToKey(top.dim, top.rank);
            if (partial[static_cast<std::size_t>(key)] == 0)
                touched.push_back(key);
            partial[static_cast<std::size_t>(key)] += top.product;
            approx_ops.adds += 1;
            approx_ops.cmps += 1; // heap maintenance
            const Real qj = q(i, top.dim);
            const Index next = qj > 0 ? top.rank + 1 : top.rank - 1;
            if (next >= 0 && next < result.n) {
                frontier.push(Cursor{
                    qj * sorted.rankToValue(top.dim, next), top.dim,
                    next});
                approx_ops.muls += 1;
            }
        }

        // Top `keep` touched keys by partial score become candidates.
        std::sort(touched.begin(), touched.end(),
                  [&](Index a, Index b) {
                      return partial[static_cast<std::size_t>(a)] >
                             partial[static_cast<std::size_t>(b)];
                  });
        if (static_cast<Index>(touched.size()) > keep)
            touched.resize(static_cast<std::size_t>(keep));
        CTA_ASSERT(!touched.empty(), "A3 search touched no keys");
        acc.ratioSum +=
            static_cast<Wide>(touched.size()) / result.n;

        // Exact attention over the candidates.
        Real score_max = -1e30f;
        std::vector<Real> scores(touched.size());
        for (std::size_t t = 0; t < touched.size(); ++t) {
            Wide dot = 0;
            for (Index c = 0; c < result.d; ++c)
                dot += static_cast<Wide>(q(i, c)) * k(touched[t], c);
            scores[t] = static_cast<Real>(dot) * inv_sqrt_d;
            score_max = std::max(score_max, scores[t]);
        }
        attn_ops.macs += touched.size() *
            static_cast<std::uint64_t>(result.d);
        Wide denom = 0;
        for (auto &s : scores) {
            s = std::exp(s - score_max);
            denom += s;
        }
        attn_ops.exps += touched.size();
        attn_ops.adds += 2 * touched.size();
        const Real inv_denom = static_cast<Real>(1.0 / denom);
        for (std::size_t t = 0; t < touched.size(); ++t) {
            const Real p = scores[t] * inv_denom;
            for (Index c = 0; c < result.d; ++c)
                result.output(i, c) += p * v(touched[t], c);
        }
        attn_ops.muls += touched.size();
        attn_ops.macs += touched.size() *
            static_cast<std::uint64_t>(result.d);
        attn_ops.divs += 1;
    }
        });

    // Ordered reduction of the per-chunk partials.
    Wide ratio_sum = 0;
    for (const auto &partial : partials) {
        result.approxOps += partial.approx;
        result.attnOps += partial.attn;
        ratio_sum += partial.ratioSum;
    }
    result.candidateRatio = static_cast<Real>(ratio_sum / result.m);
    return result;
}

} // namespace cta::a3

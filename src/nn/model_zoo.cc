#include "nn/model_zoo.h"

#include <algorithm>

#include "core/logging.h"

namespace cta::nn {

using core::Index;

ModelConfig
ModelConfig::bertLarge()
{
    return {"BERT-large", 24, 16, 1024, 64, 4096, 0.45f};
}

ModelConfig
ModelConfig::robertaLarge()
{
    return {"RoBERTa-large", 24, 16, 1024, 64, 4096, 0.45f};
}

ModelConfig
ModelConfig::albertLarge()
{
    // ALBERT-large shares parameters across layers but executes the
    // same per-layer compute; 16 heads on d_model 1024.
    return {"ALBERT-large", 24, 16, 1024, 64, 4096, 0.45f};
}

ModelConfig
ModelConfig::gpt2Large()
{
    return {"GPT-2-large", 36, 20, 1280, 64, 5120, 0.50f};
}

WorkloadProfile
datasetProfile(const std::string &dataset, Index seq_len,
               Index token_dim)
{
    WorkloadProfile profile;
    profile.seqLen = seq_len;
    profile.tokenDim = token_dim;
    // Fine (residual) structure is modest relative to the coarse
    // semantic clusters — the regime where two-level compression
    // preserves accuracy (paper SIII-B).
    profile.fineScale = 0.25f;
    // The coarse/fine cluster budgets scale with sequence length:
    // longer contexts repeat more (paper Fig. 2 — the proportion of
    // effective relations *drops* as n grows), so cluster counts grow
    // sub-linearly with n.
    const auto scaled = [&](double base) {
        return std::max<Index>(4, static_cast<Index>(
            base * std::max(1.0, static_cast<double>(seq_len) / 512.0)));
    };
    if (dataset == "SQuAD1.1") {
        profile.name = "squad1-like";
        profile.coarseClusters = scaled(44);
        profile.fineClusters = scaled(26);
        profile.noiseScale = 0.05f;
    } else if (dataset == "SQuAD2.0") {
        profile.name = "squad2-like";
        profile.coarseClusters = scaled(48);
        profile.fineClusters = scaled(28);
        profile.noiseScale = 0.06f;
    } else if (dataset == "IMDB") {
        // Movie reviews are more repetitive than QA passages.
        profile.name = "imdb-like";
        profile.coarseClusters = scaled(36);
        profile.fineClusters = scaled(22);
        profile.noiseScale = 0.05f;
    } else if (dataset == "WikiText-2") {
        profile.name = "wikitext2-like";
        profile.coarseClusters = scaled(52);
        profile.fineClusters = scaled(30);
        profile.noiseScale = 0.07f;
    } else {
        CTA_FATAL("unknown dataset '", dataset, "'");
    }
    return profile;
}

std::vector<Testcase>
paperTestcases(Index seq_len)
{
    const std::vector<ModelConfig> discriminative = {
        ModelConfig::bertLarge(),
        ModelConfig::robertaLarge(),
        ModelConfig::albertLarge(),
    };
    const std::vector<std::string> datasets = {"SQuAD1.1", "SQuAD2.0",
                                               "IMDB"};
    std::vector<Testcase> cases;
    for (const auto &model : discriminative) {
        for (const auto &dataset : datasets) {
            cases.push_back(Testcase{
                model.name + "/" + dataset, model,
                datasetProfile(dataset, seq_len, model.dHead)});
        }
    }
    const ModelConfig gpt2 = ModelConfig::gpt2Large();
    cases.push_back(Testcase{gpt2.name + "/WikiText-2", gpt2,
                             datasetProfile("WikiText-2", seq_len,
                                            gpt2.dHead)});
    return cases;
}

} // namespace cta::nn

/**
 * @file
 * Minimal transformer-encoder substrate: layer normalization, GELU
 * feed-forward network and a full encoder layer (attention + FFN with
 * residual connections). Used by the end-to-end examples and the
 * end-to-end speedup bench (paper SVI-C "End-to-end performance").
 */

#pragma once

#include "core/matrix.h"
#include "nn/attention.h"
#include "nn/linear.h"

namespace cta::nn {

/** Per-feature layer normalization with learned scale/shift. */
class LayerNorm
{
  public:
    /** Identity-initialized (gamma = 1, beta = 0) layer norm. */
    explicit LayerNorm(core::Index dim, core::Real epsilon = 1e-5f);

    /** Normalizes each row of @p x to zero mean / unit variance. */
    core::Matrix forward(const core::Matrix &x,
                         core::OpCounts *counts = nullptr) const;

  private:
    core::Matrix gamma_;
    core::Matrix beta_;
    core::Real epsilon_;
};

/** Two-layer position-wise feed-forward network with GELU. */
class FeedForward
{
  public:
    FeedForward(core::Index d_model, core::Index d_hidden,
                core::Rng &rng);

    core::Matrix forward(const core::Matrix &x,
                         core::OpCounts *counts = nullptr) const;

  private:
    Linear up_;
    Linear down_;
};

/** One pre-norm transformer encoder layer. */
class EncoderLayer
{
  public:
    EncoderLayer(core::Index d_model, core::Index num_heads,
                 core::Index d_hidden, core::Rng &rng);

    core::Matrix forward(const core::Matrix &x,
                         core::OpCounts *counts = nullptr) const;

    /** The attention block (exposed for CTA substitution). */
    const MultiHeadAttention &attention() const { return attention_; }

  private:
    LayerNorm norm1_;
    MultiHeadAttention attention_;
    LayerNorm norm2_;
    FeedForward ffn_;
};

/** GELU activation applied element-wise (tanh approximation). */
core::Matrix gelu(const core::Matrix &x,
                  core::OpCounts *counts = nullptr);

} // namespace cta::nn

/**
 * @file
 * Numerically-stable row-wise softmax, plus the un-normalized
 * exponential form used when the normalization is folded elsewhere
 * (as CTA folds it into the output division, paper eq. 7-8).
 */

#pragma once

#include "core/matrix.h"

namespace cta::core {
struct OpCounts;
} // namespace cta::core

namespace cta::nn {

/**
 * Row-wise softmax with max-subtraction for stability.
 *
 * A fully-masked row (every score -infinity — e.g. a causal mask
 * before the first valid position) attends to nothing and produces an
 * all-zero row, not NaN: exp(-inf - -inf) is never evaluated and the
 * 0/0 normalization is defined as 0.
 *
 * Charges per row: (cols-1) cmps for the max scan, cols adds for the
 * shift, cols exps, (cols-1) adds for the denominator sum, one div
 * for the reciprocal and cols muls for the normalization — matching
 * what attention hardware actually evaluates. Fully-masked rows
 * charge only their max scan.
 */
core::Matrix rowSoftmax(const core::Matrix &scores,
                        core::OpCounts *counts = nullptr);

/**
 * Row-wise exp(x - rowmax(x)) without the normalizing division;
 * also returns each row's denominator in @p row_sums (rows x 1).
 * A fully-masked row yields all zeros with a zero row sum (see
 * rowSoftmax).
 */
core::Matrix rowExp(const core::Matrix &scores, core::Matrix &row_sums,
                    core::OpCounts *counts = nullptr);

} // namespace cta::nn

#include "nn/transformer.h"

#include <cmath>
#include <numbers>

#include "core/backend.h"
#include "core/logging.h"
#include "core/op_counter.h"
#include "core/rng.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::OpCounts;
using core::Real;
using core::Wide;

LayerNorm::LayerNorm(Index dim, Real epsilon)
    : gamma_(1, dim, 1.0f), beta_(1, dim, 0.0f), epsilon_(epsilon)
{
}

Matrix
LayerNorm::forward(const Matrix &x, OpCounts *counts) const
{
    CTA_REQUIRE(x.cols() == gamma_.cols(), "layernorm dim mismatch");
    Matrix out(x.rows(), x.cols());
    // Rows normalize independently: row-parallel map with per-row
    // state only (disjoint writes into out).
    core::activeBackend().mapRows(
        x.rows(), [&](Index row_begin, Index row_end) {
            for (Index i = row_begin; i < row_end; ++i) {
                Wide sum = 0;
                for (Index j = 0; j < x.cols(); ++j)
                    sum += x(i, j);
                const Wide mu = sum / x.cols();
                Wide var = 0;
                for (Index j = 0; j < x.cols(); ++j) {
                    const Wide diff = x(i, j) - mu;
                    var += diff * diff;
                }
                var /= x.cols();
                const Real inv_std =
                    1.0f /
                    std::sqrt(static_cast<Real>(var) + epsilon_);
                for (Index j = 0; j < x.cols(); ++j) {
                    const Real norm =
                        (x(i, j) - static_cast<Real>(mu)) * inv_std;
                    out(i, j) = norm * gamma_(0, j) + beta_(0, j);
                }
            }
        });
    if (counts) {
        const auto cells = static_cast<std::uint64_t>(x.size());
        counts->adds += 3 * cells; // mean sum, var sum, centering
        counts->muls += 3 * cells; // var square, inv_std, gamma
        counts->divs += 2 * static_cast<std::uint64_t>(x.rows());
    }
    return out;
}

Matrix
gelu(const Matrix &x, OpCounts *counts)
{
    Matrix out(x.rows(), x.cols());
    const Real c = std::sqrt(2.0f / std::numbers::pi_v<Real>);
    core::activeBackend().mapRows(
        x.rows(), [&](Index row_begin, Index row_end) {
            const Index lo = row_begin * x.cols();
            const Index hi = row_end * x.cols();
            for (Index i = lo; i < hi; ++i) {
                const Real v = x.data()[i];
                out.data()[i] =
                    0.5f * v *
                    (1.0f +
                     std::tanh(c * (v + 0.044715f * v * v * v)));
            }
        });
    if (counts) {
        // Count a GELU as ~6 muls + 2 adds + 1 exp-class op per cell.
        const auto cells = static_cast<std::uint64_t>(x.size());
        counts->muls += 6 * cells;
        counts->adds += 2 * cells;
        counts->exps += cells;
    }
    return out;
}

FeedForward::FeedForward(Index d_model, Index d_hidden, core::Rng &rng)
    : up_(Linear::randomInit(d_model, d_hidden, rng, true)),
      down_(Linear::randomInit(d_hidden, d_model, rng, true))
{
}

Matrix
FeedForward::forward(const Matrix &x, OpCounts *counts) const
{
    return down_.forward(gelu(up_.forward(x, counts), counts), counts);
}

EncoderLayer::EncoderLayer(Index d_model, Index num_heads,
                           Index d_hidden, core::Rng &rng)
    : norm1_(d_model), attention_(d_model, num_heads, rng),
      norm2_(d_model), ffn_(d_model, d_hidden, rng)
{
}

Matrix
EncoderLayer::forward(const Matrix &x, OpCounts *counts) const
{
    // Pre-norm residual blocks: x + Attn(LN(x)), then x + FFN(LN(x)).
    Matrix attn_out =
        attention_.forward(norm1_.forward(x, counts), counts);
    Matrix mid = add(x, attn_out, counts);
    Matrix ffn_out = ffn_.forward(norm2_.forward(mid, counts), counts);
    return add(mid, ffn_out, counts);
}

} // namespace cta::nn

/**
 * @file
 * Model and testcase catalog mirroring the paper's evaluation setup
 * (SVI-A): BERT-large, RoBERTa-large, ALBERT-large on SQuAD 1.1/2.0
 * and IMDB, and GPT-2-large on WikiText-2 — ten model-dataset
 * combinations in total (Fig. 11's x-axis).
 *
 * Architectural hyperparameters are the published ones; each dataset
 * maps to a synthetic WorkloadProfile (see nn/workload.h and the
 * substitution note in DESIGN.md).
 */

#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "nn/workload.h"

namespace cta::nn {

/** Published architecture hyperparameters of an evaluated model. */
struct ModelConfig
{
    std::string name;
    core::Index numLayers;
    core::Index numHeads;
    core::Index dModel;
    core::Index dHead;
    core::Index ffnDim;
    /** Fraction of total inference work that is attention (incl.
     *  QKV linears); the paper's intro cites "up to 50%". Used by
     *  the end-to-end speedup model (Amdahl split). */
    core::Real attentionFraction;

    static ModelConfig bertLarge();
    static ModelConfig robertaLarge();
    static ModelConfig albertLarge();
    static ModelConfig gpt2Large();
};

/** One model-dataset evaluation point. */
struct Testcase
{
    std::string name;       ///< e.g. "BERT/SQuAD1.1"
    ModelConfig model;
    WorkloadProfile workload;
};

/** The ten model-dataset combinations of the paper's Fig. 11. */
std::vector<Testcase> paperTestcases(core::Index seq_len = 512);

/** Workload profile emulating a given dataset's token geometry. */
WorkloadProfile datasetProfile(const std::string &dataset,
                               core::Index seq_len,
                               core::Index token_dim);

} // namespace cta::nn

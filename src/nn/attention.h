/**
 * @file
 * Reference (exact) scaled-dot-product attention — the baseline CTA
 * approximates. Follows paper SII-A:
 *
 *   Q = X^Q . W^Q,  K = X^KV . W^K,  V = X^KV . W^V
 *   S = Q . K^T / sqrt(d)
 *   P = softmax(S)        (row-wise)
 *   O = P . V
 *
 * Both single-head primitives (what the accelerators process) and a
 * multi-head wrapper (what end-to-end models use) are provided.
 */

#pragma once

#include <vector>

#include "core/matrix.h"
#include "nn/linear.h"

namespace cta::nn {

/** The three projection weights of one attention head. */
struct AttentionHeadParams
{
    Linear wq;
    Linear wk;
    Linear wv;

    /** Random head with token dim @p d_w and head dim @p d. */
    static AttentionHeadParams randomInit(core::Index d_w, core::Index d,
                                          core::Rng &rng);
};

/** All intermediates of one exact attention evaluation. */
struct AttentionTrace
{
    core::Matrix q;      ///< m x d queries
    core::Matrix k;      ///< n x d keys
    core::Matrix v;      ///< n x d values
    core::Matrix scores; ///< m x n scaled dot products
    core::Matrix probs;  ///< m x n attention probabilities
    core::Matrix output; ///< m x d outputs
};

/**
 * Attention masking mode. Causal masking (GPT-2-style decoding,
 * paper workload SVI-A) forbids query i from attending to keys j > i.
 *
 * Note on CTA: the published CTA scheme is mask-agnostic — its
 * clustering merges tokens regardless of position, so the paper's
 * GPT-2 evaluation treats the attention window as given (per-step
 * full attention over the visible prefix). The reference
 * implementation here provides causal exact attention for the
 * substrate; CTA runs are performed over the visible prefix.
 */
enum class AttentionMask
{
    None,
    Causal,
};

/**
 * Exact single-head attention.
 *
 * @param xq token matrix for queries (m x d_w)
 * @param xkv token matrix for keys/values (n x d_w); pass the same
 *        matrix as @p xq for self-attention
 * @param counts optional op accounting (covers linears + attention)
 */
core::Matrix exactAttention(const core::Matrix &xq,
                            const core::Matrix &xkv,
                            const AttentionHeadParams &params,
                            core::OpCounts *counts = nullptr,
                            AttentionMask mask = AttentionMask::None);

/** Exact attention that also returns every intermediate. */
AttentionTrace exactAttentionTraced(const core::Matrix &xq,
                                    const core::Matrix &xkv,
                                    const AttentionHeadParams &params,
                                    core::OpCounts *counts = nullptr,
                                    AttentionMask mask =
                                        AttentionMask::None);

/**
 * Operation counts of the *attention calculation* part only
 * (scores + softmax + output), i.e. the paper's "RA" denominator.
 * m,n are sequence lengths and d the head dimension.
 */
core::OpCounts exactAttentionCalcOps(core::Index m, core::Index n,
                                     core::Index d);

/** Operation counts of the Q/K/V linears, the paper's "RL"
 *  denominator. */
core::OpCounts exactLinearOps(core::Index m, core::Index n,
                              core::Index d_w, core::Index d);

/** Multi-head attention with a final output projection. */
class MultiHeadAttention
{
  public:
    /**
     * @param d_model model (token) dimension
     * @param num_heads number of heads; d_model must divide evenly
     */
    MultiHeadAttention(core::Index d_model, core::Index num_heads,
                       core::Rng &rng);

    /** Self-attention forward over x (n x d_model). */
    core::Matrix forward(const core::Matrix &x,
                         core::OpCounts *counts = nullptr) const;

    /** Per-head parameters (exposed for CTA integration). */
    const std::vector<AttentionHeadParams> &heads() const
    {
        return heads_;
    }

    /** Head dimension d = d_model / num_heads. */
    core::Index headDim() const { return headDim_; }

  private:
    core::Index headDim_;
    std::vector<AttentionHeadParams> heads_;
    Linear outputProj_;
};

} // namespace cta::nn

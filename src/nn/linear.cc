#include "nn/linear.h"

#include <cmath>

#include "core/backend.h"
#include "core/logging.h"
#include "core/op_counter.h"
#include "core/rng.h"
#include "core/simd.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::OpCounts;
using core::Real;

Linear::Linear(Index in_dim, Index out_dim, bool with_bias)
    : weight_(in_dim, out_dim)
{
    if (with_bias)
        bias_ = Matrix(1, out_dim);
}

Linear::Linear(Matrix weight) : weight_(std::move(weight)) {}

Linear
Linear::randomInit(Index in_dim, Index out_dim, core::Rng &rng,
                   bool with_bias)
{
    Linear layer(in_dim, out_dim, with_bias);
    const Real stddev = 1.0f / std::sqrt(static_cast<Real>(in_dim));
    layer.weight_ = Matrix::randomNormal(in_dim, out_dim, rng, 0, stddev);
    if (with_bias)
        layer.bias_ = Matrix::randomNormal(1, out_dim, rng, 0, 0.01f);
    return layer;
}

Matrix
Linear::forward(const Matrix &x, OpCounts *counts) const
{
    CTA_REQUIRE(x.cols() == weight_.rows(),
                "linear input dim ", x.cols(), " != ", weight_.rows());
    Matrix y = matmul(x, weight_, counts);
    if (bias_) {
        // Vectorized per-row bias add: one add per element at every
        // vector width, so results stay bit-identical to the scalar
        // loop (and to every ISA level).
        const Real *brow = bias_->row(0).data();
        core::activeBackend().mapRows(
            y.rows(), [&](Index row_begin, Index row_end) {
                for (Index i = row_begin; i < row_end; ++i)
                    core::simdAddRow(y.row(i).data(), brow,
                                     y.cols());
            });
        if (counts)
            counts->adds += static_cast<std::uint64_t>(y.size());
    }
    return y;
}

} // namespace cta::nn

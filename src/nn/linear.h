/**
 * @file
 * Dense linear (fully-connected) layer: Y = X . W (+ bias).
 *
 * Attention's Q/K/V projections are bias-free in the paper's
 * formulation (SII-A), so bias is optional and off by default.
 */

#pragma once

#include <optional>

#include "core/matrix.h"
#include "core/types.h"

namespace cta::core {
class Rng;
struct OpCounts;
} // namespace cta::core

namespace cta::nn {

/** A dense linear transformation with optional bias. */
class Linear
{
  public:
    /** Creates an uninitialized (zero-weight) layer. */
    Linear(core::Index in_dim, core::Index out_dim, bool with_bias = false);

    /** Creates a layer with the given weights (and no bias). */
    explicit Linear(core::Matrix weight);

    /**
     * Xavier/Glorot-style random initialization: weights i.i.d. from
     * N(0, 1/in_dim) so activations keep unit scale through stacking.
     */
    static Linear randomInit(core::Index in_dim, core::Index out_dim,
                             core::Rng &rng, bool with_bias = false);

    /** Y = X . W (+ bias), charging in*out*rows(X) MACs. */
    core::Matrix forward(const core::Matrix &x,
                         core::OpCounts *counts = nullptr) const;

    /** Input dimension. */
    core::Index inDim() const { return weight_.rows(); }

    /** Output dimension. */
    core::Index outDim() const { return weight_.cols(); }

    /** The in_dim x out_dim weight matrix. */
    const core::Matrix &weight() const { return weight_; }

    /** Mutable weight access (for quantization passes). */
    core::Matrix &weight() { return weight_; }

    /** Bias vector if present. */
    const std::optional<core::Matrix> &bias() const { return bias_; }

  private:
    core::Matrix weight_;
    std::optional<core::Matrix> bias_;
};

} // namespace cta::nn

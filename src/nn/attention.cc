#include "nn/attention.h"

#include <cmath>
#include <limits>

#include "core/logging.h"
#include "core/op_counter.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "nn/softmax.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::OpCounts;
using core::Real;

AttentionHeadParams
AttentionHeadParams::randomInit(Index d_w, Index d, core::Rng &rng)
{
    return AttentionHeadParams{
        Linear::randomInit(d_w, d, rng),
        Linear::randomInit(d_w, d, rng),
        Linear::randomInit(d_w, d, rng),
    };
}

AttentionTrace
exactAttentionTraced(const Matrix &xq, const Matrix &xkv,
                     const AttentionHeadParams &params,
                     OpCounts *counts, AttentionMask mask)
{
    CTA_REQUIRE(xq.cols() == xkv.cols(),
                "query/key token dims differ: ", xq.cols(), " vs ",
                xkv.cols());
    AttentionTrace trace;
    trace.q = params.wq.forward(xq, counts);
    trace.k = params.wk.forward(xkv, counts);
    trace.v = params.wv.forward(xkv, counts);

    const Real inv_sqrt_d =
        1.0f / std::sqrt(static_cast<Real>(trace.q.cols()));
    trace.scores = matmulTransB(trace.q, trace.k, counts);
    trace.scores = scale(trace.scores, inv_sqrt_d, counts);
    if (mask == AttentionMask::Causal) {
        CTA_REQUIRE(xq.rows() == xkv.rows(),
                    "causal mask requires self-attention shapes");
        // Query i must not see keys j > i: -inf scores vanish in the
        // softmax.
        for (Index i = 0; i < trace.scores.rows(); ++i)
            for (Index j = i + 1; j < trace.scores.cols(); ++j)
                trace.scores(i, j) =
                    -std::numeric_limits<Real>::infinity();
    }
    trace.probs = rowSoftmax(trace.scores, counts);
    trace.output = matmul(trace.probs, trace.v, counts);
    return trace;
}

Matrix
exactAttention(const Matrix &xq, const Matrix &xkv,
               const AttentionHeadParams &params, OpCounts *counts,
               AttentionMask mask)
{
    return exactAttentionTraced(xq, xkv, params, counts, mask).output;
}

OpCounts
exactAttentionCalcOps(Index m, Index n, Index d)
{
    OpCounts ops;
    const auto mu = static_cast<std::uint64_t>(m);
    const auto nu = static_cast<std::uint64_t>(n);
    const auto du = static_cast<std::uint64_t>(d);
    ops.macs = mu * nu * du        // S = Q K^T
             + mu * nu * du;       // O = P V
    ops.muls = mu * nu             // 1/sqrt(d) scaling
             + mu * nu;            // probability normalization
    ops.cmps = mu * (nu - 1);      // softmax row max
    ops.adds = mu * nu             // max shift
             + mu * (nu - 1);      // denominator sum
    ops.exps = mu * nu;
    ops.divs = mu;                 // reciprocal per row
    return ops;
}

OpCounts
exactLinearOps(Index m, Index n, Index d_w, Index d)
{
    OpCounts ops;
    ops.macs = static_cast<std::uint64_t>(m) * d_w * d    // Q
             + 2ull * static_cast<std::uint64_t>(n) * d_w * d; // K, V
    return ops;
}

MultiHeadAttention::MultiHeadAttention(Index d_model, Index num_heads,
                                       core::Rng &rng)
    : headDim_(d_model / num_heads),
      outputProj_(Linear::randomInit(d_model, d_model, rng))
{
    CTA_REQUIRE(num_heads > 0 && d_model % num_heads == 0,
                "d_model ", d_model, " not divisible by heads ",
                num_heads);
    heads_.reserve(static_cast<std::size_t>(num_heads));
    for (Index h = 0; h < num_heads; ++h)
        heads_.push_back(AttentionHeadParams::randomInit(
            d_model, headDim_, rng));
}

Matrix
MultiHeadAttention::forward(const Matrix &x, OpCounts *counts) const
{
    const auto num_heads = static_cast<Index>(heads_.size());
    // Concatenate per-head outputs along the feature dimension.
    Matrix all(x.rows(), headDim_ * num_heads);
    // Per-head fan-out into slots; OpCounts reduce in ascending head
    // order so the totals are identical for any thread count.
    std::vector<Matrix> outputs(heads_.size());
    std::vector<OpCounts> head_counts(heads_.size());
    core::parallelFor(0, num_heads, [&](Index begin, Index end) {
        for (Index h = begin; h < end; ++h) {
            const auto slot = static_cast<std::size_t>(h);
            outputs[slot] = exactAttention(
                x, x, heads_[slot],
                counts ? &head_counts[slot] : nullptr);
        }
    });
    for (Index h = 0; h < num_heads; ++h) {
        const auto slot = static_cast<std::size_t>(h);
        const Index offset = h * headDim_;
        if (counts)
            *counts += head_counts[slot];
        const Matrix &out = outputs[slot];
        for (Index i = 0; i < out.rows(); ++i)
            for (Index j = 0; j < out.cols(); ++j)
                all(i, offset + j) = out(i, j);
    }
    return outputProj_.forward(all, counts);
}

} // namespace cta::nn

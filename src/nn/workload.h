/**
 * @file
 * Synthetic workload generation.
 *
 * Substitution (see DESIGN.md #2.1): the paper evaluates on
 * SQuAD/IMDB/WikiText-2 token sequences produced by real language
 * models. Those are unavailable offline, but CTA's behaviour depends
 * only on the *geometry* of the token matrices: paper SII-B argues
 * tokens cluster because language repeats semantic features, and the
 * two-level compression (SIII-B) works because residuals after
 * coarse clustering cluster again.
 *
 * The generator therefore produces token matrices with an explicit
 * two-level hierarchical cluster structure plus isotropic noise:
 *
 *   token = coarse_center[c] + fine_offset[f] + noise
 *
 * where the number of coarse/fine centers and noise magnitude are the
 * dials that control compressibility — exactly the dials the paper's
 * fine-tuned models turn. The downstream accuracy proxy is a
 * classification task whose ground-truth labels are defined by exact
 * attention (see ProxyTask).
 */

#pragma once

#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "nn/attention.h"

namespace cta::nn {

/** Dials describing one synthetic token-sequence distribution. */
struct WorkloadProfile
{
    /** Human-readable name, e.g. "squad1-like". */
    std::string name = "default";
    /** Sequence length n (number of tokens). */
    core::Index seqLen = 512;
    /** Embedded token dimension d_w. */
    core::Index tokenDim = 64;
    /** Number of coarse semantic clusters. */
    core::Index coarseClusters = 40;
    /** Number of fine (residual) offsets shared across the sequence. */
    core::Index fineClusters = 24;
    /** Scale of coarse cluster centers. */
    core::Real coarseScale = 1.0f;
    /** Scale of fine offsets relative to coarse centers. */
    core::Real fineScale = 0.35f;
    /** Isotropic per-token noise stddev (uncompressible residue). */
    core::Real noiseScale = 0.05f;
    /**
     * Zipf exponent for cluster usage. Natural language reuses a few
     * expressions heavily (the paper's SII-B premise); cluster
     * indices are drawn with probability proportional to
     * 1/(rank+1)^zipfExponent. 0 = uniform.
     */
    core::Real zipfExponent = 0.8f;

    /** Returns a copy with a different sequence length. */
    WorkloadProfile withSeqLen(core::Index n) const;
};

/** One generated sample: the token matrix plus its latent structure. */
struct TokenSample
{
    core::Matrix tokens;                 ///< seqLen x tokenDim
    std::vector<core::Index> coarseId;   ///< latent coarse assignment
    std::vector<core::Index> fineId;     ///< latent fine assignment
};

/** Generates token sequences from a WorkloadProfile. */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(WorkloadProfile profile, std::uint64_t seed);

    /** Draws one token sequence. */
    TokenSample sample();

    /** Draws one token matrix (dropping latent structure). */
    core::Matrix sampleTokens();

    /** The profile this generator draws from. */
    const WorkloadProfile &profile() const { return profile_; }

  private:
    /** Draws a cluster index from the Zipf distribution with the
     *  given cumulative mass table. */
    core::Index drawZipf(const std::vector<core::Real> &cdf);

    WorkloadProfile profile_;
    core::Rng rng_;
    core::Matrix coarseCenters_;
    core::Matrix fineOffsets_;
    std::vector<core::Real> coarseCdf_;
    std::vector<core::Real> fineCdf_;
};

/**
 * Accuracy proxy: a readout head on attention-pooled features.
 *
 * Ground truth for a token matrix X is
 *   label(X) = argmax_c ( mean_i O_i . R )_c
 * where O is the *exact* attention output and R a fixed random
 * readout. An approximation scheme's accuracy is the fraction of
 * samples whose label survives the approximation, mirroring how a
 * downstream classifier feels attention error.
 */
class ProxyTask
{
  public:
    ProxyTask(core::Index token_dim, core::Index head_dim,
              core::Index num_classes, std::uint64_t seed);

    /** The attention head the task is defined over. */
    const AttentionHeadParams &head() const { return head_; }

    /** Label for a *precomputed* attention output (m x d). */
    core::Index labelFromOutput(const core::Matrix &output) const;

    /** Ground-truth label (runs exact attention internally). */
    core::Index groundTruth(const core::Matrix &tokens) const;

    /**
     * Per-position labels: argmax of each output row through the
     * readout. This is the fine-grained accuracy metric (analogous
     * to SQuAD span scoring, which is also per-position): a
     * downstream head reads each position, so position-level label
     * flips are what accuracy loss means.
     */
    std::vector<core::Index>
    positionLabels(const core::Matrix &output) const;

    /** Mean per-position label agreement between two outputs. */
    core::Real positionAgreement(const core::Matrix &reference,
                                 const core::Matrix &approx) const;

    /**
     * Margin-aware agreement: scores only positions whose reference
     * top1-top2 logit margin is at least the sequence-mean margin.
     * Rationale: the paper fine-tunes each model (~1 h per testcase)
     * after inserting the approximation, which re-fits the decision
     * boundary to the approximate features and recovers borderline
     * positions; without fine-tuning, confident positions are the
     * indicative ones. See EXPERIMENTS.md (Fig. 11 substitution).
     */
    core::Real confidentAgreement(const core::Matrix &reference,
                                  const core::Matrix &approx) const;

    /** Number of classes. */
    core::Index numClasses() const { return readout_.cols(); }

  private:
    AttentionHeadParams head_;
    core::Matrix readout_; ///< head_dim x num_classes
};

/** Fraction of samples whose proxy label matches ground truth. */
core::Real
labelAgreement(const std::vector<core::Index> &reference,
               const std::vector<core::Index> &approximate);

} // namespace cta::nn

#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "core/backend.h"
#include "core/logging.h"
#include "core/op_counter.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::OpCounts;
using core::Real;
using core::Wide;

Matrix
rowExp(const Matrix &scores, Matrix &row_sums, OpCounts *counts)
{
    // Guard here, not just in rowSoftmax: max_element on an empty row
    // is UB, and rowExp is callable on its own.
    CTA_REQUIRE(scores.cols() > 0, "softmax over empty rows");
    Matrix out(scores.rows(), scores.cols());
    row_sums = Matrix(scores.rows(), 1);
    // Row-parallel: each row's max/exp/denominator is independent.
    core::activeBackend().mapRows(
        scores.rows(), [&](Index row_begin, Index row_end) {
            for (Index i = row_begin; i < row_end; ++i) {
                const auto row = scores.row(i);
                const Real row_max =
                    *std::max_element(row.begin(), row.end());
                Wide denom = 0;
                for (Index j = 0; j < scores.cols(); ++j) {
                    const Real e = std::exp(scores(i, j) - row_max);
                    out(i, j) = e;
                    denom += e;
                }
                row_sums(i, 0) = static_cast<Real>(denom);
            }
        });
    if (counts) {
        const auto cells = static_cast<std::uint64_t>(scores.size());
        const auto rows = static_cast<std::uint64_t>(scores.rows());
        counts->cmps += cells - rows;  // max scan
        counts->adds += cells;         // shift by max
        counts->exps += cells;
        counts->adds += cells - rows;  // denominator sum
    }
    return out;
}

Matrix
rowSoftmax(const Matrix &scores, OpCounts *counts)
{
    Matrix row_sums;
    Matrix out = rowExp(scores, row_sums, counts);
    core::activeBackend().mapRows(
        out.rows(), [&](Index row_begin, Index row_end) {
            for (Index i = row_begin; i < row_end; ++i) {
                const Real inv = 1.0f / row_sums(i, 0);
                for (Index j = 0; j < out.cols(); ++j)
                    out(i, j) *= inv;
            }
        });
    if (counts) {
        counts->divs += static_cast<std::uint64_t>(out.rows());
        counts->muls += static_cast<std::uint64_t>(out.size());
    }
    return out;
}

} // namespace cta::nn

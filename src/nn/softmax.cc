#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

#include "core/backend.h"
#include "core/logging.h"
#include "core/op_counter.h"
#include "core/simd.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::OpCounts;
using core::Real;
using core::Wide;

Matrix
rowExp(const Matrix &scores, Matrix &row_sums, OpCounts *counts)
{
    // Guard here, not just in rowSoftmax: max_element on an empty row
    // is UB, and rowExp is callable on its own.
    CTA_REQUIRE(scores.cols() > 0, "softmax over empty rows");
    Matrix out(scores.rows(), scores.cols());
    row_sums = Matrix(scores.rows(), 1);
    // Row-parallel: each row's max/exp/denominator is independent.
    // The max scan is vectorized (exact — no rounding); the exp loop
    // stays scalar with a single ascending Wide denominator chain so
    // results are bit-identical at every ISA level and thread count.
    core::activeBackend().mapRows(
        scores.rows(), [&](Index row_begin, Index row_end) {
            for (Index i = row_begin; i < row_end; ++i) {
                const Real row_max = core::simdRowMax(
                    scores.row(i).data(), scores.cols());
                if (std::isinf(row_max) && row_max < Real{0}) {
                    // Fully-masked row: exp(-inf - -inf) would be
                    // NaN. Defined as "attends to nothing" instead.
                    Real *orow = out.row(i).data();
                    std::fill(orow, orow + out.cols(), Real{0});
                    row_sums(i, 0) = 0;
                    continue;
                }
                Wide denom = 0;
                for (Index j = 0; j < scores.cols(); ++j) {
                    const Real e = std::exp(scores(i, j) - row_max);
                    out(i, j) = e;
                    denom += e;
                }
                row_sums(i, 0) = static_cast<Real>(denom);
            }
        });
    if (counts) {
        const auto cells = static_cast<std::uint64_t>(scores.size());
        const auto rows = static_cast<std::uint64_t>(scores.rows());
        const auto cols = static_cast<std::uint64_t>(scores.cols());
        std::uint64_t masked = 0;
        for (Index i = 0; i < scores.rows(); ++i)
            if (row_sums(i, 0) == Real{0})
                ++masked;
        const std::uint64_t live_cells = cells - masked * cols;
        const std::uint64_t live_rows = rows - masked;
        counts->cmps += cells - rows;  // max scan (every row)
        counts->adds += live_cells;    // shift by max
        counts->exps += live_cells;
        counts->adds += live_cells - live_rows; // denominator sum
    }
    return out;
}

Matrix
rowSoftmax(const Matrix &scores, OpCounts *counts)
{
    Matrix row_sums;
    Matrix out = rowExp(scores, row_sums, counts);
    core::activeBackend().mapRows(
        out.rows(), [&](Index row_begin, Index row_end) {
            for (Index i = row_begin; i < row_end; ++i) {
                const Real sum = row_sums(i, 0);
                if (sum == Real{0})
                    continue; // fully-masked row, already all zero
                core::simdScaleRow(out.row(i).data(), out.cols(),
                                   1.0f / sum);
            }
        });
    if (counts) {
        std::uint64_t live_rows = 0;
        for (Index i = 0; i < out.rows(); ++i)
            if (row_sums(i, 0) != Real{0})
                ++live_rows;
        counts->divs += live_rows;
        counts->muls +=
            live_rows * static_cast<std::uint64_t>(out.cols());
    }
    return out;
}

} // namespace cta::nn

#include "nn/workload.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "core/op_counter.h"

namespace cta::nn {

using core::Index;
using core::Matrix;
using core::Real;

WorkloadProfile
WorkloadProfile::withSeqLen(Index n) const
{
    WorkloadProfile copy = *this;
    copy.seqLen = n;
    return copy;
}

WorkloadGenerator::WorkloadGenerator(WorkloadProfile profile,
                                     std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed)
{
    CTA_REQUIRE(profile_.seqLen > 0 && profile_.tokenDim > 0,
                "workload needs positive dims");
    CTA_REQUIRE(profile_.coarseClusters > 0 && profile_.fineClusters > 0,
                "workload needs positive cluster counts");
    coarseCenters_ = Matrix::randomNormal(
        profile_.coarseClusters, profile_.tokenDim, rng_, 0,
        profile_.coarseScale);
    fineOffsets_ = Matrix::randomNormal(
        profile_.fineClusters, profile_.tokenDim, rng_, 0,
        profile_.fineScale);
    const auto build_cdf = [&](Index count) {
        std::vector<Real> cdf;
        cdf.reserve(static_cast<std::size_t>(count));
        Real total = 0;
        for (Index i = 0; i < count; ++i) {
            total += std::pow(static_cast<Real>(i + 1),
                              -profile_.zipfExponent);
            cdf.push_back(total);
        }
        for (auto &v : cdf)
            v /= total;
        return cdf;
    };
    coarseCdf_ = build_cdf(profile_.coarseClusters);
    fineCdf_ = build_cdf(profile_.fineClusters);
}

Index
WorkloadGenerator::drawZipf(const std::vector<Real> &cdf)
{
    const Real u = rng_.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<Index>(it - cdf.begin());
}

TokenSample
WorkloadGenerator::sample()
{
    TokenSample out;
    out.tokens = Matrix(profile_.seqLen, profile_.tokenDim);
    out.coarseId.resize(static_cast<std::size_t>(profile_.seqLen));
    out.fineId.resize(static_cast<std::size_t>(profile_.seqLen));
    for (Index i = 0; i < profile_.seqLen; ++i) {
        const Index c = drawZipf(coarseCdf_);
        const Index f = drawZipf(fineCdf_);
        out.coarseId[static_cast<std::size_t>(i)] = c;
        out.fineId[static_cast<std::size_t>(i)] = f;
        for (Index j = 0; j < profile_.tokenDim; ++j) {
            out.tokens(i, j) = coarseCenters_(c, j) + fineOffsets_(f, j)
                + rng_.normal(0, profile_.noiseScale);
        }
    }
    return out;
}

Matrix
WorkloadGenerator::sampleTokens()
{
    return sample().tokens;
}

ProxyTask::ProxyTask(Index token_dim, Index head_dim, Index num_classes,
                     std::uint64_t seed)
    : head_([&] {
          core::Rng rng(seed);
          return AttentionHeadParams::randomInit(token_dim, head_dim,
                                                 rng);
      }()),
      readout_([&] {
          core::Rng rng(seed ^ 0x9E3779B97F4A7C15ull);
          return Matrix::randomNormal(head_dim, num_classes, rng);
      }())
{
    CTA_REQUIRE(num_classes >= 2, "need at least 2 classes");
}

Index
ProxyTask::labelFromOutput(const Matrix &output) const
{
    CTA_REQUIRE(output.cols() == readout_.rows(),
                "output dim ", output.cols(), " != readout in-dim ",
                readout_.rows());
    // Mean-pool over positions, then project through the readout.
    Matrix pooled(1, output.cols());
    for (Index i = 0; i < output.rows(); ++i)
        for (Index j = 0; j < output.cols(); ++j)
            pooled(0, j) += output(i, j);
    for (Index j = 0; j < output.cols(); ++j)
        pooled(0, j) /= static_cast<Real>(output.rows());
    const Matrix logits = matmul(pooled, readout_);
    Index best = 0;
    for (Index c = 1; c < logits.cols(); ++c)
        if (logits(0, c) > logits(0, best))
            best = c;
    return best;
}

Index
ProxyTask::groundTruth(const Matrix &tokens) const
{
    return labelFromOutput(exactAttention(tokens, tokens, head_));
}

std::vector<Index>
ProxyTask::positionLabels(const Matrix &output) const
{
    CTA_REQUIRE(output.cols() == readout_.rows(),
                "output dim mismatch");
    const Matrix logits = matmul(output, readout_);
    std::vector<Index> labels;
    labels.reserve(static_cast<std::size_t>(logits.rows()));
    for (Index i = 0; i < logits.rows(); ++i) {
        Index best = 0;
        for (Index c = 1; c < logits.cols(); ++c)
            if (logits(i, c) > logits(i, best))
                best = c;
        labels.push_back(best);
    }
    return labels;
}

Real
ProxyTask::positionAgreement(const Matrix &reference,
                             const Matrix &approx) const
{
    return labelAgreement(positionLabels(reference),
                          positionLabels(approx));
}

Real
ProxyTask::confidentAgreement(const Matrix &reference,
                              const Matrix &approx) const
{
    const Matrix ref_logits = matmul(reference, readout_);
    const std::vector<Index> ref_labels = positionLabels(reference);
    const std::vector<Index> approx_labels = positionLabels(approx);

    // Per-position top1 - top2 margin of the reference.
    std::vector<Real> margins;
    margins.reserve(static_cast<std::size_t>(ref_logits.rows()));
    core::Wide margin_sum = 0;
    for (Index i = 0; i < ref_logits.rows(); ++i) {
        Real top1 = -1e30f, top2 = -1e30f;
        for (Index c = 0; c < ref_logits.cols(); ++c) {
            const Real v = ref_logits(i, c);
            if (v > top1) {
                top2 = top1;
                top1 = v;
            } else if (v > top2) {
                top2 = v;
            }
        }
        margins.push_back(top1 - top2);
        margin_sum += top1 - top2;
    }
    const Real threshold =
        static_cast<Real>(margin_sum / ref_logits.rows());

    std::size_t counted = 0, hits = 0;
    for (std::size_t i = 0; i < margins.size(); ++i) {
        if (margins[i] < threshold)
            continue;
        ++counted;
        hits += ref_labels[i] == approx_labels[i] ? 1 : 0;
    }
    if (counted == 0)
        return 1;
    return static_cast<Real>(hits) / static_cast<Real>(counted);
}

Real
labelAgreement(const std::vector<Index> &reference,
               const std::vector<Index> &approximate)
{
    CTA_REQUIRE(reference.size() == approximate.size() &&
                !reference.empty(), "labelAgreement size mismatch");
    std::size_t hits = 0;
    for (std::size_t i = 0; i < reference.size(); ++i)
        hits += reference[i] == approximate[i] ? 1 : 0;
    return static_cast<Real>(hits) /
           static_cast<Real>(reference.size());
}

} // namespace cta::nn

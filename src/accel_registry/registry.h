/**
 * @file
 * Static accelerator registry keyed by name (the manager half of the
 * gem-forge pattern): factories register under a unique key, and
 * makeAccelerator() resolves a key to a fresh instance sized by
 * AccelOptions.
 *
 * Registration validates the model's describe() invariants ONCE by
 * constructing a probe instance — a malformed descriptor (empty
 * name, zero clock, negative or non-finite area) is a registration-
 * time fatal instead of a NaN deep inside a bench table.
 *
 * The six built-in models self-register through ensureBuiltins()
 * (explicit, std::once) rather than static initializers: the
 * registry lives in a static library, and an unreferenced TU's
 * initializers are dropped by the linker.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel_registry/accelerator.h"
#include "sim/energy_model.h"

namespace cta::reg {

/** Instance sizing shared by every model. */
struct AccelOptions
{
    /** On-chip memory sizing (maximum sequence length). */
    core::Index maxSeqLen = 512;
    /** Technology constants for area/energy models. */
    sim::TechParams tech = sim::TechParams::smic40nmClass();
};

using AccelFactory =
    std::function<std::unique_ptr<Accelerator>(const AccelOptions &)>;

/**
 * Registers @p factory under @p name. Fatal on a duplicate name or
 * when the probe instance's describe() violates the descriptor
 * invariants (name mismatch, empty display, freqGhz <= 0, area
 * negative or non-finite).
 */
void registerAccelerator(const std::string &name,
                         AccelFactory factory);

/** True when @p name resolves (after ensureBuiltins()). */
bool isRegistered(const std::string &name);

/** Sorted keys of every registered model. */
std::vector<std::string> registeredNames();

/**
 * Builds a fresh instance of the named model. Fatal on an unknown
 * name, listing the registered keys. Calls ensureBuiltins() first,
 * so callers never need the explicit init.
 */
std::unique_ptr<Accelerator>
makeAccelerator(const std::string &name,
                const AccelOptions &options = {});

/** Registers the built-in models ("cta", "elsa", "a3", "leopard",
 *  "gpu", "ideal") exactly once per process. */
void ensureBuiltins();

} // namespace cta::reg

/**
 * @file
 * Adapters wrapping the six hardware models behind the Accelerator
 * seam. Each adapter forwards to the unchanged model class — same
 * inputs, same calibration, same report — and only ADDS the
 * per-module cycle breakdown, recomputed with the model's own
 * formulas so it sums exactly to the reported latency.
 *
 * Quality mapping (one knob across very different pruning schemes):
 *
 *   quality       CTA      ELSA          A^3 keep   LeOPArd mass
 *   conservative  CTA-0    Conservative  n/2        0.999
 *   moderate      CTA-0.5  Moderate      n/4        0.99
 *   aggressive    CTA-1    Aggressive    n/8        0.95
 *
 * GPU and ideal run exact attention at every quality.
 */

#include <algorithm>
#include <cmath>
#include <mutex>

#include "a3/a3_accel.h"
#include "accel_registry/registry.h"
#include "baseline/ideal_accel.h"
#include "core/logging.h"
#include "cta/config.h"
#include "cta_accel/accelerator.h"
#include "elsa/elsa_accel.h"
#include "gpu/gpu_model.h"
#include "leopard/leopard_accel.h"
#include "nn/attention.h"

namespace cta::reg {

namespace {

using core::Cycles;
using core::Index;
using sim::Wide;

/** The label each adapter stamps into its model's PerfReport. */
std::string
platformLabel(const AccelDescriptor &desc, const RunRequest &request)
{
    return request.platform.empty() ? desc.name : request.platform;
}

const core::Matrix &
calibrationTokens(const core::Matrix &xkv, const RunRequest &request)
{
    return request.calibTokens != nullptr ? *request.calibTokens
                                          : xkv;
}

// ---------------------------------------------------------------
// CTA
// ---------------------------------------------------------------

class CtaAdapter final : public Accelerator
{
  public:
    explicit CtaAdapter(const AccelOptions &options)
        : hw_([&] {
              accel::HwConfig hw = accel::HwConfig::paperDefault();
              hw.maxSeqLen = options.maxSeqLen;
              return hw;
          }()),
          model_(hw_, options.tech)
    {
        desc_.name = "cta";
        desc_.display = "CTA accelerator (Table-I schedule)";
        desc_.freqGhz = hw_.freqGhz;
        desc_.areaMm2 = model_.area().total();
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        alg::Preset preset = alg::Preset::Cta05;
        switch (request.quality) {
          case Quality::Conservative:
            preset = alg::Preset::Cta0;
            break;
          case Quality::Moderate:
            preset = alg::Preset::Cta05;
            break;
          case Quality::Aggressive:
            preset = alg::Preset::Cta1;
            break;
        }
        const core::Matrix &calib = calibrationTokens(xkv, request);
        const alg::CtaConfig config =
            alg::calibrate(calib, calib, preset, 6, /*seed=*/7);
        const accel::CtaAccelResult r = model_.run(
            xq, xkv, head, config, platformLabel(desc_, request));

        RunResult out;
        out.output = r.algorithm.output;
        out.report = r.report;
        // SA cycles bind every step; exposed aux cycles carry the
        // mapper's module tag; the CIM is fully hidden (0 exposed).
        ModuleCycles sa{"SA", 0}, cim{"CIM", 0}, cag{"CAG", 0},
            pag{"PAG", 0};
        for (const accel::ScheduledStep &step : r.mapping.steps) {
            sa.cycles += step.saCycles;
            switch (step.auxModule) {
              case accel::AuxModule::None:
                break;
              case accel::AuxModule::Cim:
                cim.cycles += step.exposedAux;
                break;
              case accel::AuxModule::Cag:
                cag.cycles += step.exposedAux;
                break;
              case accel::AuxModule::Pag:
                pag.cycles += step.exposedAux;
                break;
            }
        }
        out.moduleCycles = {sa, cim, cag, pag};
        return out;
    }

  private:
    accel::HwConfig hw_;
    accel::CtaAccelerator model_;
    AccelDescriptor desc_;
};

// ---------------------------------------------------------------
// ELSA
// ---------------------------------------------------------------

class ElsaAdapter final : public Accelerator
{
  public:
    explicit ElsaAdapter(const AccelOptions &options)
        : hw_([&] {
              elsa::ElsaHwConfig hw =
                  elsa::ElsaHwConfig::paperDefault();
              hw.maxSeqLen = options.maxSeqLen;
              return hw;
          }()),
          model_(hw_, options.tech)
    {
        desc_.name = "elsa";
        desc_.display = "ELSA accelerator (ISCA'21, query-serial)";
        desc_.freqGhz = hw_.freqGhz;
        desc_.areaMm2 = model_.areaMm2();
        desc_.attentionOnly = true;
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        elsa::ElsaPreset preset = elsa::ElsaPreset::Moderate;
        switch (request.quality) {
          case Quality::Conservative:
            preset = elsa::ElsaPreset::Conservative;
            break;
          case Quality::Moderate:
            preset = elsa::ElsaPreset::Moderate;
            break;
          case Quality::Aggressive:
            preset = elsa::ElsaPreset::Aggressive;
            break;
        }
        const elsa::ElsaAccelResult r = model_.run(
            xq, xkv, head, elsa::ElsaConfig::fromPreset(preset),
            platformLabel(desc_, request));

        RunResult out;
        out.output = r.algorithm.output;
        out.report = r.report;
        // The model's own composition: n preprocess + m query hashes
        // on the hash unit, then per query max(scan, survivors) in
        // the filter/attention pipeline.
        const auto &alg = r.algorithm;
        ModuleCycles hash{"hash-unit",
                          static_cast<Cycles>(alg.n + alg.m)};
        ModuleCycles pipe{"attention-pipeline", 0};
        const Cycles scan = static_cast<Cycles>(
            (alg.n + hw_.filterLanes - 1) / hw_.filterLanes);
        for (Index i = 0; i < alg.m; ++i) {
            const auto survivors = static_cast<Cycles>(
                alg.candidates[static_cast<std::size_t>(i)]);
            pipe.cycles += std::max(scan, survivors);
        }
        out.moduleCycles = {hash, pipe};
        return out;
    }

  private:
    elsa::ElsaHwConfig hw_;
    elsa::ElsaAccelerator model_;
    AccelDescriptor desc_;
};

// ---------------------------------------------------------------
// A^3
// ---------------------------------------------------------------

class A3Adapter final : public Accelerator
{
  public:
    explicit A3Adapter(const AccelOptions &options)
        : hw_([&] {
              a3::A3HwConfig hw = a3::A3HwConfig::paperDefault();
              hw.maxSeqLen = options.maxSeqLen;
              return hw;
          }()),
          model_(hw_, options.tech)
    {
        desc_.name = "a3";
        desc_.display = "A^3 accelerator (HPCA'20, greedy search)";
        desc_.freqGhz = hw_.freqGhz;
        desc_.areaMm2 = model_.areaMm2();
        desc_.attentionOnly = true;
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        const Index n = xkv.rows();
        a3::A3Config config;
        config.searchRounds = n;
        switch (request.quality) {
          case Quality::Conservative:
            config.candidates = std::max<Index>(1, n / 2);
            break;
          case Quality::Moderate:
            config.candidates = std::max<Index>(1, n / 4);
            break;
          case Quality::Aggressive:
            config.candidates = std::max<Index>(1, n / 8);
            break;
        }
        const a3::A3AccelResult r = model_.run(
            xq, xkv, head, config, platformLabel(desc_, request));

        RunResult out;
        out.output = r.algorithm.output;
        out.report = r.report;
        // n log2(n) sorting-pass cycles, then per query
        // max(search rounds / lanes, kept candidates).
        const auto &alg = r.algorithm;
        const auto logn = static_cast<Cycles>(std::ceil(
            std::log2(std::max<Index>(2, alg.n))));
        ModuleCycles sort{"sort-unit",
                          static_cast<Cycles>(alg.n) * logn};
        const Cycles search = static_cast<Cycles>(
            (config.searchRounds + hw_.searchLanes - 1) /
            hw_.searchLanes);
        const auto keep = static_cast<Cycles>(
            std::min<Index>(config.candidates, alg.n));
        ModuleCycles pipe{"attention-pipeline", 0};
        for (Index i = 0; i < alg.m; ++i)
            pipe.cycles += std::max(search, keep);
        out.moduleCycles = {sort, pipe};
        return out;
    }

  private:
    a3::A3HwConfig hw_;
    a3::A3Accelerator model_;
    AccelDescriptor desc_;
};

// ---------------------------------------------------------------
// LeOPArd
// ---------------------------------------------------------------

class LeopardAdapter final : public Accelerator
{
  public:
    explicit LeopardAdapter(const AccelOptions &options)
        : hw_([&] {
              leopard::LeopardHwConfig hw =
                  leopard::LeopardHwConfig::paperDefault();
              hw.maxSeqLen = options.maxSeqLen;
              return hw;
          }()),
          model_(hw_, options.tech)
    {
        desc_.name = "leopard";
        desc_.display =
            "LeOPArd accelerator (ISCA'22, bit-serial)";
        desc_.freqGhz = hw_.freqGhz;
        desc_.areaMm2 = model_.areaMm2();
        desc_.attentionOnly = true;
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        core::Real mass = 0.99f;
        switch (request.quality) {
          case Quality::Conservative:
            mass = 0.999f;
            break;
          case Quality::Moderate:
            mass = 0.99f;
            break;
          case Quality::Aggressive:
            mass = 0.95f;
            break;
        }
        const leopard::LeopardConfig config =
            leopard::calibrateLeopard(
                calibrationTokens(xkv, request), head, mass);
        const leopard::LeopardAccelResult r = model_.run(
            xq, xkv, head, config, platformLabel(desc_, request));

        RunResult out;
        out.output = r.algorithm.output;
        out.report = r.report;
        // The model overlaps the two stages per query: the total is
        // m * max(score, value) + score (trailing fill). Attribute
        // each query's slot to the stage that bound it; the
        // subtraction keeps the split exact under the model's single
        // double->Cycles cast.
        const auto &alg = r.algorithm;
        const Wide mean_bits = static_cast<Wide>(alg.bitWorkRatio) *
            static_cast<Wide>(config.scoreBits);
        const Wide score_stage = static_cast<Wide>(alg.n) *
            mean_bits / static_cast<Wide>(hw_.keyLanes);
        const Wide value_stage = static_cast<Wide>(alg.keepRatio) *
            static_cast<Wide>(alg.n);
        const Cycles total = out.report.latency.total();
        ModuleCycles score{"score-lanes", 0};
        ModuleCycles value{"value-pipeline", 0};
        if (score_stage >= value_stage) {
            score.cycles = total;
        } else {
            value.cycles = std::min(
                total, static_cast<Cycles>(
                           static_cast<Wide>(alg.m) * value_stage));
            score.cycles = total - value.cycles;
        }
        out.moduleCycles = {score, value};
        return out;
    }

  private:
    leopard::LeopardHwConfig hw_;
    leopard::LeopardAccelerator model_;
    AccelDescriptor desc_;
};

// ---------------------------------------------------------------
// GPU (analytical V100)
// ---------------------------------------------------------------

class GpuAdapter final : public Accelerator
{
  public:
    explicit GpuAdapter(const AccelOptions &)
    {
        desc_.name = "gpu";
        desc_.display = "analytical V100-SXM2 roofline model";
        desc_.freqGhz = 1.0f; // reports nanoseconds as cycles
        desc_.areaMm2 = 0;    // board, not modeled silicon
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        RunResult out;
        out.report = model_.runExactHead(
            xq.rows(), xkv.rows(), xq.cols(), head.wq.outDim(),
            platformLabel(desc_, request));
        out.output = nn::exactAttention(xq, xkv, head);
        out.moduleCycles = {
            ModuleCycles{"linears", out.report.latency.linears},
            ModuleCycles{"attention", out.report.latency.attention}};
        return out;
    }

  private:
    gpu::GpuModel model_;
    AccelDescriptor desc_;
};

// ---------------------------------------------------------------
// Ideal (iso-multiplier peak-throughput bound)
// ---------------------------------------------------------------

class IdealAdapter final : public Accelerator
{
  public:
    explicit IdealAdapter(const AccelOptions &)
        : model_(accel::HwConfig::paperDefault().multiplierCount())
    {
        desc_.name = "ideal";
        desc_.display =
            "iso-multiplier ideal exact-attention bound";
        desc_.freqGhz = 1.0f;
        desc_.areaMm2 = 0; // hypothetical design, no area model
    }

    const AccelDescriptor &describe() const override { return desc_; }

  protected:
    RunResult doRun(const core::Matrix &xq, const core::Matrix &xkv,
                    const nn::AttentionHeadParams &head,
                    const RunRequest &request) const override
    {
        RunResult out;
        out.report = model_.run(
            xq.rows(), xkv.rows(), xq.cols(), head.wq.outDim(),
            platformLabel(desc_, request));
        out.output = nn::exactAttention(xq, xkv, head);
        out.moduleCycles = {
            ModuleCycles{"linears", out.report.latency.linears},
            ModuleCycles{"attention", out.report.latency.attention}};
        return out;
    }

  private:
    baseline::IdealAccelerator model_;
    AccelDescriptor desc_;
};

template <typename Adapter>
AccelFactory
factoryFor()
{
    return [](const AccelOptions &options) {
        return std::unique_ptr<Accelerator>(new Adapter(options));
    };
}

} // namespace

void
ensureBuiltins()
{
    // Explicit once-registration instead of static initializers:
    // this TU lives in a static library and would be dropped (with
    // its initializers) when nothing references it.
    static std::once_flag once;
    std::call_once(once, [] {
        registerAccelerator("cta", factoryFor<CtaAdapter>());
        registerAccelerator("elsa", factoryFor<ElsaAdapter>());
        registerAccelerator("a3", factoryFor<A3Adapter>());
        registerAccelerator("leopard", factoryFor<LeopardAdapter>());
        registerAccelerator("gpu", factoryFor<GpuAdapter>());
        registerAccelerator("ideal", factoryFor<IdealAdapter>());
    });
}

} // namespace cta::reg

/**
 * @file
 * The unified accelerator seam (ROADMAP item 4, after gem-forge's
 * TDGAccelerator pattern): every hardware model in the repo — CTA,
 * ELSA, A^3, LeOPArd, the analytical GPU and the iso-multiplier
 * ideal bound — sits behind one abstract interface so benches and
 * the serve layer resolve platforms by string instead of hard-coded
 * types.
 *
 * An Accelerator exposes three things:
 *   - describe(): static identity + invariants (validated once at
 *     registration, see registry.h);
 *   - run(): one attention-head evaluation returning the existing
 *     sim::PerfReport plus a per-module cycle breakdown that sums
 *     exactly to the reported total latency;
 *   - regStats(): accumulated run statistics (run count, total
 *     cycles, per-module cycle totals), thread-safe because benches
 *     share const accelerators across thread-pool tasks.
 *
 * Adapters wrap the existing model classes without changing them:
 * run() through the seam is bit-identical (functional output and
 * PerfReport) to invoking the wrapped model directly with the same
 * inputs (asserted by tests/accel_registry_test.cc).
 */

#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "nn/attention.h"
#include "sim/report.h"

namespace cta::reg {

/** Static identity of a registered accelerator model. */
struct AccelDescriptor
{
    /** Registry key, e.g. "cta", "elsa", "gpu". */
    std::string name;
    /** Human-readable label, e.g. "CTA accelerator (Table I)". */
    std::string display;
    /** Model clock in GHz (1.0 for the ns-as-cycles GPU model). */
    core::Real freqGhz = 1.0f;
    /** Modeled silicon area; 0 when the model has none (GPU/ideal). */
    sim::Wide areaMm2 = 0;
    /** True when the model prices only the quadratic attention part
     *  (ELSA / A^3 / LeOPArd leave the Q/K/V linears to the GPU). */
    bool attentionOnly = false;
};

/** Accuracy/pruning operating point, mapped per model:
 *  CTA-0/0.5/1, ELSA Conservative/Moderate/Aggressive, A^3 keep
 *  n/2 / n/4 / n/8, LeOPArd mass 0.999/0.99/0.95. GPU and ideal run
 *  exact attention at every quality. */
enum class Quality
{
    Conservative,
    Moderate,
    Aggressive,
};

/** Display suffix, e.g. "moderate". */
std::string qualityName(Quality quality);

/** Per-run options beyond the input matrices. */
struct RunRequest
{
    Quality quality = Quality::Moderate;
    /** Platform label stamped into the PerfReport; empty uses the
     *  descriptor name. */
    std::string platform;
    /** Calibration sequence for models that calibrate (CTA presets,
     *  LeOPArd thresholds); nullptr calibrates on xkv. Must outlive
     *  the call. */
    const core::Matrix *calibTokens = nullptr;
};

/** One module's share of the run's total latency. */
struct ModuleCycles
{
    std::string module;
    core::Cycles cycles = 0;
};

/** Everything one run() produces. */
struct RunResult
{
    /** Functional m x d attention output (approximate for the
     *  pruning models, exact for GPU/ideal). */
    core::Matrix output;
    sim::PerfReport report;
    /** Exhaustive split of report.latency.total() by module; the
     *  cycles sum exactly to the total (asserted after every run). */
    std::vector<ModuleCycles> moduleCycles;
};

/** Accumulated statistics over all run() calls on one instance. */
struct AccelStats
{
    std::uint64_t runs = 0;
    core::Cycles totalCycles = 0;
    /** Per-module cycle totals, in first-seen order. */
    std::vector<ModuleCycles> moduleCycles;
};

/** The abstract seam every hardware model adapts to. */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Static identity; invariants are registry-validated once. */
    virtual const AccelDescriptor &describe() const = 0;

    /**
     * Simulates one attention-head evaluation and accumulates the
     * run into regStats(). Fatal if the adapter's module breakdown
     * does not sum to the reported latency — the drift guard for
     * future models.
     */
    RunResult run(const core::Matrix &xq, const core::Matrix &xkv,
                  const nn::AttentionHeadParams &head,
                  const RunRequest &request = {}) const;

    /** Snapshot of the accumulated per-module statistics. */
    AccelStats regStats() const;

    /** Zeroes the accumulated statistics. */
    void resetStats() const;

  protected:
    /** Model-specific simulation; implemented by each adapter. */
    virtual RunResult doRun(const core::Matrix &xq,
                            const core::Matrix &xkv,
                            const nn::AttentionHeadParams &head,
                            const RunRequest &request) const = 0;

  private:
    mutable std::mutex statsMutex_;
    mutable AccelStats stats_;
};

} // namespace cta::reg

#include "accel_registry/registry.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "core/logging.h"

namespace cta::reg {

std::string
qualityName(Quality quality)
{
    switch (quality) {
      case Quality::Conservative:
        return "conservative";
      case Quality::Moderate:
        return "moderate";
      case Quality::Aggressive:
        return "aggressive";
    }
    CTA_FATAL("unknown quality value");
}

RunResult
Accelerator::run(const core::Matrix &xq, const core::Matrix &xkv,
                 const nn::AttentionHeadParams &head,
                 const RunRequest &request) const
{
    RunResult result = doRun(xq, xkv, head, request);
    if (result.report.platform.empty())
        result.report.platform = request.platform.empty()
            ? describe().name
            : request.platform;
    // The drift guard: an adapter whose breakdown stops covering the
    // total latency is reporting cycles nobody can attribute.
    core::Cycles module_sum = 0;
    for (const ModuleCycles &m : result.moduleCycles)
        module_sum += m.cycles;
    CTA_ASSERT(module_sum == result.report.latency.total(),
               "module cycle breakdown (", module_sum,
               ") != total latency (",
               result.report.latency.total(), ") for ",
               describe().name);

    std::lock_guard<std::mutex> lock(statsMutex_);
    ++stats_.runs;
    stats_.totalCycles += result.report.latency.total();
    for (const ModuleCycles &m : result.moduleCycles) {
        auto it = std::find_if(
            stats_.moduleCycles.begin(), stats_.moduleCycles.end(),
            [&](const ModuleCycles &s) {
                return s.module == m.module;
            });
        if (it == stats_.moduleCycles.end())
            stats_.moduleCycles.push_back(m);
        else
            it->cycles += m.cycles;
    }
    return result;
}

AccelStats
Accelerator::regStats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
Accelerator::resetStats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_ = AccelStats{};
}

namespace {

std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, AccelFactory> &
registryMap()
{
    static std::map<std::string, AccelFactory> map;
    return map;
}

/** The satellite-3 seam guard: every descriptor invariant checked
 *  once, at registration, against a probe instance. */
void
validateDescriptor(const std::string &name,
                   const AccelDescriptor &desc)
{
    CTA_REQUIRE(!desc.name.empty(), "descriptor name is empty for "
                "registration key '", name, "'");
    CTA_REQUIRE(desc.name == name, "descriptor name '", desc.name,
                "' does not match registration key '", name, "'");
    CTA_REQUIRE(!desc.display.empty(),
                "descriptor display is empty for '", name, "'");
    CTA_REQUIRE(desc.freqGhz > 0, "descriptor freqGhz must be "
                "positive for '", name, "'");
    CTA_REQUIRE(std::isfinite(desc.areaMm2) && desc.areaMm2 >= 0,
                "descriptor area must be finite and non-negative "
                "for '", name, "'");
}

} // namespace

void
registerAccelerator(const std::string &name, AccelFactory factory)
{
    CTA_REQUIRE(factory != nullptr, "null factory for '", name, "'");
    // Probe outside the lock: factories may be arbitrarily heavy and
    // must not recurse into the registry anyway.
    const std::unique_ptr<Accelerator> probe =
        factory(AccelOptions{});
    CTA_REQUIRE(probe != nullptr,
                "factory for '", name, "' built no instance");
    validateDescriptor(name, probe->describe());

    std::lock_guard<std::mutex> lock(registryMutex());
    const bool inserted =
        registryMap().emplace(name, std::move(factory)).second;
    CTA_REQUIRE(inserted, "duplicate accelerator registration: '",
                name, "'");
}

bool
isRegistered(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    return registryMap().count(name) > 0;
}

std::vector<std::string>
registeredNames()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    names.reserve(registryMap().size());
    for (const auto &entry : registryMap())
        names.push_back(entry.first);
    return names; // std::map iterates sorted
}

std::unique_ptr<Accelerator>
makeAccelerator(const std::string &name, const AccelOptions &options)
{
    ensureBuiltins();
    AccelFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        const auto it = registryMap().find(name);
        if (it != registryMap().end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const std::string &key : registeredNames())
            known += (known.empty() ? "" : ", ") + key;
        CTA_FATAL("unknown accelerator '", name,
                  "' (registered: ", known, ")");
    }
    CTA_REQUIRE(options.maxSeqLen > 0,
                "AccelOptions.maxSeqLen must be positive");
    return factory(options);
}

} // namespace cta::reg

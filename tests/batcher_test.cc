/**
 * @file
 * Tests for the serving-layer Batcher: submission-order outputs,
 * per-session sequencing, determinism across thread counts, and step
 * accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "nn/workload.h"
#include "serve/batcher.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::core::ThreadPool;
using cta::serve::Batcher;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;
using cta::serve::StepResult;

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

std::unique_ptr<DecodeSession>
makeSession(const cta::nn::AttentionHeadParams &params,
            const Matrix &prefill)
{
    auto session = std::make_unique<DecodeSession>(
        params, ServeConfig{}, kDim);
    session->prefill(prefill);
    return session;
}

/** Runs the same interleaved workload through a Batcher on @p pool;
 *  returns the flush outputs. */
std::vector<StepResult>
runWorkload(ThreadPool *pool)
{
    Rng rng(9);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix ctx_a = sampleTokens(40, kDim, 21);
    const Matrix ctx_b = sampleTokens(48, kDim, 22);
    const Matrix steps = sampleTokens(12, kDim, 23);

    Batcher batcher(pool);
    const Index a = batcher.addSession(makeSession(params, ctx_a));
    const Index b = batcher.addSession(makeSession(params, ctx_b));
    // Interleave sessions: a b a b ... so the flush must demultiplex.
    for (Index i = 0; i < steps.rows(); ++i)
        batcher.submit(i % 2 == 0 ? a : b, steps.row(i));
    EXPECT_EQ(batcher.pendingCount(), steps.rows());
    auto results = batcher.flush();
    EXPECT_EQ(batcher.pendingCount(), 0);
    EXPECT_EQ(batcher.stats().steps(), steps.rows());
    return results;
}

TEST(BatcherTest, FlushMatchesStandaloneSessions)
{
    const auto results = runWorkload(nullptr);
    ASSERT_EQ(static_cast<Index>(results.size()), 12);

    // Reference: the same two streams stepped directly, serially.
    Rng rng(9);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    DecodeSession ref_a(params, ServeConfig{}, kDim);
    DecodeSession ref_b(params, ServeConfig{}, kDim);
    ref_a.prefill(sampleTokens(40, kDim, 21));
    ref_b.prefill(sampleTokens(48, kDim, 22));
    const Matrix steps = sampleTokens(12, kDim, 23);

    for (Index i = 0; i < steps.rows(); ++i) {
        const auto &result = results[static_cast<std::size_t>(i)];
        EXPECT_EQ(result.session, i % 2);
        DecodeSession &ref = i % 2 == 0 ? ref_a : ref_b;
        const Matrix want = ref.step(steps.row(i));
        EXPECT_TRUE(bitIdentical(result.output, want))
            << "submission " << i;
    }
}

TEST(BatcherTest, DeterministicAcrossThreadCounts)
{
    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto one = runWorkload(&serial);
    const auto eight = runWorkload(&wide);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].session, eight[i].session);
        EXPECT_TRUE(bitIdentical(one[i].output, eight[i].output))
            << "submission " << i;
    }
}

TEST(BatcherTest, MultipleStepsPerSessionStaySequential)
{
    Rng rng(10);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix ctx = sampleTokens(32, kDim, 31);
    const Matrix steps = sampleTokens(5, kDim, 32);

    Batcher batcher;
    const Index id = batcher.addSession(makeSession(params, ctx));
    for (Index i = 0; i < steps.rows(); ++i)
        batcher.submit(id, steps.row(i));
    const auto results = batcher.flush();
    ASSERT_EQ(static_cast<Index>(results.size()), steps.rows());

    DecodeSession ref(params, ServeConfig{}, kDim);
    ref.prefill(ctx);
    for (Index i = 0; i < steps.rows(); ++i) {
        const Matrix want = ref.step(steps.row(i));
        EXPECT_TRUE(bitIdentical(
            results[static_cast<std::size_t>(i)].output, want))
            << "queued step " << i;
    }
    // The batched session advanced exactly like the reference.
    EXPECT_EQ(batcher.session(id).contextLength(),
              ref.contextLength());
}

TEST(BatcherTest, FlushWithNothingPendingIsANoop)
{
    Batcher batcher;
    EXPECT_TRUE(batcher.flush().empty());
    EXPECT_EQ(batcher.stats().steps(), 0);
}

TEST(BatcherDeathTest, RejectsUnknownSessionIds)
{
    Batcher batcher;
    const std::vector<Real> token(static_cast<std::size_t>(kDim), 0.0f);
    EXPECT_EXIT(batcher.submit(0, token),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(batcher.session(3), ::testing::ExitedWithCode(1),
                "out of range");
}

} // namespace

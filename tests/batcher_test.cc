/**
 * @file
 * Tests for the serving-layer Batcher: submission-order outputs,
 * per-session sequencing, determinism across thread counts, and step
 * accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "nn/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/session_manager.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::core::ThreadPool;
using cta::serve::Batcher;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;
using cta::serve::StepResult;

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

std::unique_ptr<DecodeSession>
makeSession(const cta::nn::AttentionHeadParams &params,
            const Matrix &prefill)
{
    auto session = std::make_unique<DecodeSession>(
        params, ServeConfig{}, kDim);
    session->prefill(prefill);
    return session;
}

/** Runs the same interleaved workload through a Batcher on @p pool;
 *  returns the flush outputs. */
std::vector<StepResult>
runWorkload(ThreadPool *pool)
{
    Rng rng(9);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix ctx_a = sampleTokens(40, kDim, 21);
    const Matrix ctx_b = sampleTokens(48, kDim, 22);
    const Matrix steps = sampleTokens(12, kDim, 23);

    Batcher batcher(pool);
    const Index a = batcher.addSession(makeSession(params, ctx_a));
    const Index b = batcher.addSession(makeSession(params, ctx_b));
    // Interleave sessions: a b a b ... so the flush must demultiplex.
    for (Index i = 0; i < steps.rows(); ++i)
        batcher.submit(i % 2 == 0 ? a : b, steps.row(i));
    EXPECT_EQ(batcher.pendingCount(), steps.rows());
    auto results = batcher.flush();
    EXPECT_EQ(batcher.pendingCount(), 0);
    EXPECT_EQ(batcher.stats().steps(), steps.rows());
    return results;
}

TEST(BatcherTest, FlushMatchesStandaloneSessions)
{
    const auto results = runWorkload(nullptr);
    ASSERT_EQ(static_cast<Index>(results.size()), 12);

    // Reference: the same two streams stepped directly, serially.
    Rng rng(9);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    DecodeSession ref_a(params, ServeConfig{}, kDim);
    DecodeSession ref_b(params, ServeConfig{}, kDim);
    ref_a.prefill(sampleTokens(40, kDim, 21));
    ref_b.prefill(sampleTokens(48, kDim, 22));
    const Matrix steps = sampleTokens(12, kDim, 23);

    for (Index i = 0; i < steps.rows(); ++i) {
        const auto &result = results[static_cast<std::size_t>(i)];
        EXPECT_EQ(result.session, i % 2);
        DecodeSession &ref = i % 2 == 0 ? ref_a : ref_b;
        const Matrix want = ref.step(steps.row(i));
        EXPECT_TRUE(bitIdentical(result.output, want))
            << "submission " << i;
    }
}

TEST(BatcherTest, DeterministicAcrossThreadCounts)
{
    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto one = runWorkload(&serial);
    const auto eight = runWorkload(&wide);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].session, eight[i].session);
        EXPECT_TRUE(bitIdentical(one[i].output, eight[i].output))
            << "submission " << i;
    }
}

TEST(BatcherTest, MultipleStepsPerSessionStaySequential)
{
    Rng rng(10);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix ctx = sampleTokens(32, kDim, 31);
    const Matrix steps = sampleTokens(5, kDim, 32);

    Batcher batcher;
    const Index id = batcher.addSession(makeSession(params, ctx));
    for (Index i = 0; i < steps.rows(); ++i)
        batcher.submit(id, steps.row(i));
    const auto results = batcher.flush();
    ASSERT_EQ(static_cast<Index>(results.size()), steps.rows());

    DecodeSession ref(params, ServeConfig{}, kDim);
    ref.prefill(ctx);
    for (Index i = 0; i < steps.rows(); ++i) {
        const Matrix want = ref.step(steps.row(i));
        EXPECT_TRUE(bitIdentical(
            results[static_cast<std::size_t>(i)].output, want))
            << "queued step " << i;
    }
    // The batched session advanced exactly like the reference.
    EXPECT_EQ(batcher.session(id).contextLength(),
              ref.contextLength());
}

TEST(BatcherTest, FlushWithNothingPendingIsANoop)
{
    Batcher batcher;
    EXPECT_TRUE(batcher.flush().empty());
    EXPECT_EQ(batcher.stats().steps(), 0);
}

TEST(BatcherDeathTest, RejectsUnknownSessionIds)
{
    Batcher batcher;
    const std::vector<Real> token(static_cast<std::size_t>(kDim), 0.0f);
    EXPECT_EXIT(batcher.submit(0, token),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(batcher.session(3), ::testing::ExitedWithCode(1),
                "out of range");
    // trySubmit treats bad ids as caller bugs too — only full queues
    // and removed sessions are recoverable rejections.
    EXPECT_EXIT(batcher.trySubmit(7, token),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(BatcherTest, BoundedQueueShedsLoad)
{
    Rng rng(11);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(6, kDim, 41);

    Batcher batcher(nullptr, /*queue_cap=*/4);
    EXPECT_EQ(batcher.queueCapacity(), 4);
    const Index id = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 40)));

    for (Index i = 0; i < 4; ++i)
        EXPECT_EQ(batcher.trySubmit(id, steps.row(i)),
                  cta::serve::SubmitResult::Accepted);
    // Queue at capacity: trySubmit rejects (submit would abort —
    // covered in BatcherDeathTest, which runs before any pool work).
    EXPECT_EQ(batcher.trySubmit(id, steps.row(4)),
              cta::serve::SubmitResult::QueueFull);
    EXPECT_EQ(batcher.rejectedSubmits(), 1u);
    EXPECT_EQ(batcher.pendingCount(), 4);

    // Flushing drains the queue and re-opens admission.
    EXPECT_EQ(static_cast<Index>(batcher.flush().size()), 4);
    EXPECT_EQ(batcher.trySubmit(id, steps.row(4)),
              cta::serve::SubmitResult::Accepted);
}

TEST(BatcherTest, QueueCapacityEnvKnob)
{
    setenv("CTA_QUEUE_CAP", "2", 1);
    Batcher batcher;
    unsetenv("CTA_QUEUE_CAP");
    EXPECT_EQ(batcher.queueCapacity(), 2);

    // Unset env falls back to the compiled-in default.
    Batcher fallback;
    EXPECT_EQ(fallback.queueCapacity(),
              Batcher::kDefaultQueueCapacity);
}

TEST(BatcherDeathTest, MalformedQueueCapacityEnvIsFatal)
{
    // Each EXPECT_EXIT clause forks, so setting the env in the parent
    // is visible to the child that constructs the Batcher.
    setenv("CTA_QUEUE_CAP", "not-a-number", 1);
    EXPECT_EXIT({ Batcher batcher; }, ::testing::ExitedWithCode(1),
                "CTA_QUEUE_CAP");
    setenv("CTA_QUEUE_CAP", "0", 1);
    EXPECT_EXIT({ Batcher batcher; }, ::testing::ExitedWithCode(1),
                "positive");
    setenv("CTA_QUEUE_CAP", "-3", 1);
    EXPECT_EXIT({ Batcher batcher; }, ::testing::ExitedWithCode(1),
                "positive");
    unsetenv("CTA_QUEUE_CAP");
}

TEST(BatcherTest, RemoveSessionDropsPendingAndRejectsResubmit)
{
    Rng rng(12);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(6, kDim, 51);

    Batcher batcher;
    const Index a = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 50)));
    const Index b = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 50)));

    // Interleave, then remove a: its queued steps vanish, b's stay.
    for (Index i = 0; i < 6; ++i)
        batcher.submit(i % 2 == 0 ? a : b, steps.row(i));
    batcher.removeSession(a);
    EXPECT_EQ(batcher.pendingCount(), 3);
    EXPECT_EQ(batcher.trySubmit(a, steps.row(0)),
              cta::serve::SubmitResult::SessionRemoved);

    const auto results = batcher.flush();
    ASSERT_EQ(static_cast<Index>(results.size()), 3);
    for (const auto &r : results)
        EXPECT_EQ(r.session, b);
    // Ids are not reused; the removed id stays fatal to access.
    EXPECT_EQ(batcher.sessionCount(), 2);
}

TEST(BatcherDeathTest, SubmitAbortsWhenQueueFull)
{
    Rng rng(15);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(3, kDim, 81);
    Batcher batcher(nullptr, /*queue_cap=*/2);
    const Index id = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 80)));
    batcher.submit(id, steps.row(0));
    batcher.submit(id, steps.row(1));
    EXPECT_EXIT(batcher.submit(id, steps.row(2)),
                ::testing::ExitedWithCode(1), "QueueFull");
}

TEST(BatcherDeathTest, AccessAfterRemoveIsFatal)
{
    Rng rng(13);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    Batcher batcher;
    const Index id = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 60)));
    batcher.removeSession(id);
    EXPECT_EXIT(batcher.session(id), ::testing::ExitedWithCode(1),
                "removed");
    EXPECT_EXIT(batcher.removeSession(id),
                ::testing::ExitedWithCode(1), "removed");
    const std::vector<Real> token(static_cast<std::size_t>(kDim),
                                  0.0f);
    EXPECT_EXIT(batcher.submit(id, token),
                ::testing::ExitedWithCode(1), "SessionRemoved");
}

TEST(BatcherTest, ExpiredDeadlinesCascadePerSession)
{
    Rng rng(14);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(4, kDim, 71);

    Batcher batcher;
    const Index a = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 70)));
    const Index b = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 70)));

    // a's first step carries a deadline that is still live at
    // admission (already-lapsed ones are rejected there — see
    // DeadOnArrivalSubmitsRejectedAtAdmission) but lapses while
    // queued; its second has none — yet must still expire via the
    // per-session cascade so the token stream keeps no holes. b is
    // unconstrained.
    const auto soon = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(5);
    ASSERT_EQ(batcher.trySubmit(a, steps.row(0), soon),
              cta::serve::SubmitResult::Accepted);
    ASSERT_EQ(batcher.trySubmit(b, steps.row(1)),
              cta::serve::SubmitResult::Accepted);
    ASSERT_EQ(batcher.trySubmit(a, steps.row(2)),
              cta::serve::SubmitResult::Accepted);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const auto results = batcher.flush();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, cta::serve::StepStatus::Expired);
    EXPECT_EQ(results[0].output.size(), 0);
    EXPECT_EQ(results[1].status, cta::serve::StepStatus::Ok);
    EXPECT_GT(results[1].output.size(), 0);
    EXPECT_EQ(results[2].status, cta::serve::StepStatus::Expired);
    EXPECT_EQ(batcher.expiredSteps(), 2u);
    // a ingested nothing beyond its prefill; b advanced by one.
    EXPECT_EQ(batcher.session(a).contextLength(), 16);
    EXPECT_EQ(batcher.session(b).contextLength(), 17);

    // A generous future deadline does not expire.
    const auto future = std::chrono::steady_clock::now() +
                        std::chrono::hours(1);
    ASSERT_EQ(batcher.trySubmit(a, steps.row(0), future),
              cta::serve::SubmitResult::Accepted);
    const auto ok = batcher.flush();
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(ok[0].status, cta::serve::StepStatus::Ok);
}

TEST(BatcherTest, DeadOnArrivalSubmitsRejectedAtAdmission)
{
    Rng rng(16);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(2, kDim, 91);

    Batcher batcher;
    const Index id = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 90)));

    // A deadline already in the past must be rejected at admission —
    // it can only ever come back Expired, so queueing it would waste
    // a bounded-queue slot — with its own distinct result.
    const auto past = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1);
    EXPECT_EQ(batcher.trySubmit(id, steps.row(0), past),
              cta::serve::SubmitResult::DeadlineExpired);
    EXPECT_EQ(batcher.pendingCount(), 0);
    EXPECT_EQ(batcher.rejectedSubmits(), 1u);
    EXPECT_EQ(batcher.rejectedSubmitsByReason().deadlineExpired, 1u);
    EXPECT_EQ(batcher.expiredSteps(), 0u); // never queued, not expired

    // Future and absent deadlines still admit normally.
    const auto future = std::chrono::steady_clock::now() +
                        std::chrono::hours(1);
    EXPECT_EQ(batcher.trySubmit(id, steps.row(0), future),
              cta::serve::SubmitResult::Accepted);
    EXPECT_EQ(batcher.trySubmit(id, steps.row(1)),
              cta::serve::SubmitResult::Accepted);
    EXPECT_EQ(batcher.pendingCount(), 2);
}

double
gaugeValue(const char *name)
{
    for (const auto &[n, v] : cta::obs::gaugeSnapshot())
        if (n == name)
            return v;
    return 0;
}

TEST(BatcherTest, PerReasonRejectionGaugesSumToCounter)
{
    Rng rng(17);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(4, kDim, 93);

    cta::obs::setTraceEnabled(true);
    cta::obs::resetMetrics();

    Batcher batcher(nullptr, /*queue_cap=*/1);
    const Index a = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 92)));
    const Index b = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 92)));
    batcher.removeSession(b);

    // One rejection of each flavor: full queue, removed target, and
    // a dead-on-arrival deadline.
    ASSERT_EQ(batcher.trySubmit(a, steps.row(0)),
              cta::serve::SubmitResult::Accepted);
    EXPECT_EQ(batcher.trySubmit(a, steps.row(1)),
              cta::serve::SubmitResult::QueueFull);
    EXPECT_EQ(batcher.trySubmit(b, steps.row(2)),
              cta::serve::SubmitResult::SessionRemoved);
    const auto past = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1);
    EXPECT_EQ(batcher.trySubmit(a, steps.row(3), past),
              cta::serve::SubmitResult::DeadlineExpired);

    const auto reasons = batcher.rejectedSubmitsByReason();
    EXPECT_EQ(reasons.queueFull, 1u);
    EXPECT_EQ(reasons.sessionRemoved, 1u);
    EXPECT_EQ(reasons.corrupted, 0u);
    EXPECT_EQ(reasons.deadlineExpired, 1u);
    // The invariant the old accounting broke: the headline counter is
    // exactly the sum of the per-reason breakdown...
    EXPECT_EQ(batcher.rejectedSubmits(), reasons.total());
    // ...and the exported per-reason gauges agree with it too.
    const double gaugeSum =
        gaugeValue("serve.rejected.queue_full") +
        gaugeValue("serve.rejected.session_removed") +
        gaugeValue("serve.rejected.corrupted") +
        gaugeValue("serve.rejected.deadline_expired");
    EXPECT_DOUBLE_EQ(gaugeSum,
                     static_cast<double>(batcher.rejectedSubmits()));
    // The legacy gauge keeps its historical meaning: QueueFull only.
    EXPECT_DOUBLE_EQ(gaugeValue("serve.queue_rejected"), 1.0);

    cta::obs::setTraceEnabled(false);
}

TEST(BatcherTest, QueueWaitRecordedForExpiredSteps)
{
    Rng rng(18);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    const Matrix steps = sampleTokens(1, kDim, 95);

    cta::obs::setTraceEnabled(true);
    cta::obs::resetMetrics();

    Batcher batcher;
    const Index id = batcher.addSession(
        makeSession(params, sampleTokens(16, kDim, 94)));
    // Admit with a deadline that will lapse while queued, then wait
    // it out so the flush sees an expired step.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(5);
    ASSERT_EQ(batcher.trySubmit(id, steps.row(0), deadline),
              cta::serve::SubmitResult::Accepted);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const auto results = batcher.flush();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, cta::serve::StepStatus::Expired);
    // The regression: expired steps used to skip the queue-wait
    // gauges entirely, hiding exactly the waits that caused the
    // expiry. The step waited ~30ms, so both gauges must show it.
    EXPECT_GT(gaugeValue("serve.queue_wait_total_s"), 0.0);
    EXPECT_GE(gaugeValue("serve.queue_wait_max_s"), 0.005);

    cta::obs::setTraceEnabled(false);
}

/** Hammers trySubmit from several threads while sessions are being
 *  removed underneath them — the race the old Batcher had (lifecycle
 *  state read without its mutex). Run under TSan in CI. */
void
tortureSubmitVsRemove(bool managed)
{
    Rng rng(19);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    constexpr Index kSessions = 8;
    constexpr int kThreads = 3;
    constexpr int kSubmitsPerThread = 160;

    std::unique_ptr<cta::serve::SessionManager> manager;
    std::unique_ptr<Batcher> batcher;
    if (managed) {
        manager = std::make_unique<cta::serve::SessionManager>(
            params, ServeConfig{}, kDim, /*mem_budget_bytes=*/0);
        batcher = std::make_unique<Batcher>(*manager);
        for (Index s = 0; s < kSessions; ++s)
            manager->createSession(sampleTokens(8, kDim, 100 + s));
    } else {
        batcher = std::make_unique<Batcher>();
        for (Index s = 0; s < kSessions; ++s)
            batcher->addSession(
                makeSession(params, sampleTokens(8, kDim, 100 + s)));
    }
    const Matrix tokens = sampleTokens(kSessions, kDim, 120);

    std::atomic<bool> go{false};
    std::atomic<std::uint64_t> accepted{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w)
        submitters.emplace_back([&, w] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kSubmitsPerThread; ++i) {
                const Index sid = (w * 31 + i) % kSessions;
                const auto result = batcher->trySubmit(
                    sid, tokens.row(sid));
                if (result == cta::serve::SubmitResult::Accepted)
                    accepted.fetch_add(1,
                                       std::memory_order_relaxed);
                else
                    // The only shed reason this workload can hit.
                    EXPECT_EQ(
                        result,
                        cta::serve::SubmitResult::SessionRemoved);
            }
        });

    // Remove every odd session while the submitters run. No flush
    // during the torture — flush may not race removeSession (that is
    // the documented front-end contract), but submits may.
    go.store(true, std::memory_order_release);
    for (Index s = 1; s < kSessions; s += 2)
        batcher->removeSession(s);
    for (std::thread &t : submitters)
        t.join();

    // Everything accepted and not purged by a removal must flush to
    // an Ok result on a surviving even session.
    const auto results = batcher->flush();
    for (const auto &r : results) {
        EXPECT_EQ(r.session % 2, 0) << "step for removed session "
                                    << r.session << " survived";
        EXPECT_EQ(r.status, cta::serve::StepStatus::Ok);
    }
    EXPECT_LE(static_cast<std::uint64_t>(results.size()),
              accepted.load());
    // Rejection accounting stayed coherent under the contention.
    EXPECT_EQ(batcher->rejectedSubmits(),
              batcher->rejectedSubmitsByReason().total());
}

TEST(BatcherTortureTest, ConcurrentTrySubmitVsRemoveDirect)
{
    tortureSubmitVsRemove(/*managed=*/false);
}

TEST(BatcherTortureTest, ConcurrentTrySubmitVsRemoveManaged)
{
    tortureSubmitVsRemove(/*managed=*/true);
}

} // namespace

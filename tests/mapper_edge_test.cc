/**
 * @file
 * Edge-case tests for the Table-I scheduler and accelerator: shapes
 * smaller than one batch, cross-attention (m != n), non-divisible
 * batch counts, and consistency of the latency arithmetic.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta_accel/accelerator.h"
#include "cta_accel/mapper.h"
#include "nn/workload.h"

namespace {

using cta::accel::CtaAccelerator;
using cta::accel::HwConfig;
using cta::accel::MappingResult;
using cta::accel::TableIMapper;
using cta::alg::CompressionStats;
using cta::core::Cycles;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;

CompressionStats
stats(Index m, Index n, Index k0, Index k1, Index k2)
{
    CompressionStats s;
    s.m = m;
    s.n = n;
    s.dw = s.d = 64;
    s.k0 = k0;
    s.k1 = k1;
    s.k2 = k2;
    return s;
}

TEST(MapperEdgeTest, SubBatchShapes)
{
    // k0 and k1+k2 smaller than one SA batch still schedule.
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto r = mapper.schedule(stats(8, 8, 3, 2, 1));
    EXPECT_GT(r.latency.total(), 0u);
    EXPECT_GT(r.steps.size(), 5u);
}

TEST(MapperEdgeTest, SingleTokenSequence)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto r = mapper.schedule(stats(1, 1, 1, 1, 1));
    EXPECT_GT(r.latency.total(), 0u);
}

TEST(MapperEdgeTest, CrossAttentionShapes)
{
    // m != n: query-side steps scale with m/k0, KV steps with n.
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto small_q = mapper.schedule(stats(32, 512, 16, 130, 120));
    const auto large_q = mapper.schedule(stats(512, 512, 200, 130, 120));
    EXPECT_LT(small_q.latency.total(), large_q.latency.total());
}

TEST(MapperEdgeTest, NonDivisibleBatchesRoundUp)
{
    const HwConfig hw = HwConfig::paperDefault(); // b = 8
    const TableIMapper mapper{hw};
    // k0 = 9 -> 2 query batches; k0 = 8 -> 1.
    const auto one = mapper.schedule(stats(512, 512, 8, 100, 100));
    const auto two = mapper.schedule(stats(512, 512, 9, 100, 100));
    EXPECT_GT(two.latency.total(), one.latency.total());
    // The increment is roughly one loop iteration (LIN Q + SCORE +
    // OUT): bounded by ~2d + 2(k1+k2) + constants.
    const Cycles delta = two.latency.total() - one.latency.total();
    EXPECT_LT(delta, 2u * 64u + 2u * 200u + 300u);
}

TEST(MapperEdgeTest, LatencyEqualsStepSum)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto r = mapper.schedule(stats(512, 512, 200, 130, 120));
    Cycles sum = 0;
    for (const auto &step : r.steps)
        sum += step.saCycles + step.exposedAux;
    EXPECT_EQ(sum, r.latency.total());
}

TEST(MapperEdgeTest, CompressionLatencyIndependentOfK)
{
    // Rows 1-3 stream all tokens regardless of how well they
    // cluster; only the CAVG tail varies with k2.
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto tight = mapper.schedule(stats(512, 512, 50, 40, 30));
    const auto loose = mapper.schedule(stats(512, 512, 400, 300, 250));
    const Cycles diff =
        loose.latency.tokenCompression -
        tight.latency.tokenCompression;
    EXPECT_EQ(diff, 250u - 30u) << "only the exposed CAVG differs";
}

TEST(AcceleratorEdgeTest, CrossAttentionRuns)
{
    Rng rng(1);
    const auto head =
        cta::nn::AttentionHeadParams::randomInit(64, 64, rng);
    cta::nn::WorkloadProfile profile;
    profile.tokenDim = 64;
    cta::nn::WorkloadGenerator qgen(profile.withSeqLen(32), 2);
    cta::nn::WorkloadGenerator kgen(profile.withSeqLen(256), 3);
    const Matrix xq = qgen.sampleTokens();
    const Matrix xkv = kgen.sampleTokens();
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               cta::sim::TechParams::smic40nmClass());
    cta::alg::CtaConfig config;
    config.w0 = 0.8f;
    config.w1 = 0.8f;
    config.w2 = 0.4f;
    const auto r = accel.run(xq, xkv, head, config);
    EXPECT_EQ(r.algorithm.output.rows(), 32);
    EXPECT_GT(r.report.latency.total(), 0u);
}

TEST(AcceleratorEdgeTest, MinimalSequence)
{
    Rng rng(4);
    const auto head =
        cta::nn::AttentionHeadParams::randomInit(64, 64, rng);
    const Matrix x = Matrix::randomNormal(2, 64, rng);
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               cta::sim::TechParams::smic40nmClass());
    cta::alg::CtaConfig config;
    const auto r = accel.run(x, x, head, config);
    EXPECT_EQ(r.algorithm.output.rows(), 2);
    EXPECT_GT(r.report.energy.total(), 0.0);
}

} // namespace

/**
 * @file
 * Tests for strict environment parsing (core/env.h), focused on the
 * byte-count grammar behind CTA_MEM_BUDGET / CTA_PAGE_BYTES: plain
 * integers, single K/M/G suffixes (powers of 1024, case-insensitive),
 * and fatal rejection of everything else — a set-but-malformed knob
 * must never silently coerce to a default.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/env.h"

namespace {

using cta::core::envBytes;
using cta::core::parseEnvBytes;

TEST(ParseEnvBytesTest, PlainAndSuffixedValues)
{
    EXPECT_EQ(parseEnvBytes("1", "T"), 1u);
    EXPECT_EQ(parseEnvBytes("4096", "T"), 4096u);
    EXPECT_EQ(parseEnvBytes("2K", "T"), 2048u);
    EXPECT_EQ(parseEnvBytes("2k", "T"), 2048u);
    EXPECT_EQ(parseEnvBytes("64M", "T"), std::size_t{64} << 20);
    EXPECT_EQ(parseEnvBytes("64m", "T"), std::size_t{64} << 20);
    EXPECT_EQ(parseEnvBytes("3G", "T"), std::size_t{3} << 30);
    EXPECT_EQ(parseEnvBytes("3g", "T"), std::size_t{3} << 30);
}

TEST(ParseEnvBytesDeathTest, MalformedValuesAreFatal)
{
    // The error names the offending knob so the fatal log is
    // actionable.
    EXPECT_EXIT(parseEnvBytes("", "CTA_MEM_BUDGET"),
                ::testing::ExitedWithCode(1), "CTA_MEM_BUDGET");
    EXPECT_EXIT(parseEnvBytes("garbage", "CTA_MEM_BUDGET"),
                ::testing::ExitedWithCode(1), "CTA_MEM_BUDGET");
    EXPECT_EXIT(parseEnvBytes("64MB", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("1.5G", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("64 M", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("M", "T"),
                ::testing::ExitedWithCode(1), "");
    // Signs, zero and overflow are configuration errors, not bytes.
    EXPECT_EXIT(parseEnvBytes("-5", "T"),
                ::testing::ExitedWithCode(1), "positive");
    EXPECT_EXIT(parseEnvBytes("+5", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("0", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("0K", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("99999999999999999999", "T"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(parseEnvBytes("18014398509481984G", "T"),
                ::testing::ExitedWithCode(1), "");
}

TEST(EnvBytesTest, UnsetMeansNullopt)
{
    unsetenv("CTA_TEST_BYTES_KNOB");
    EXPECT_FALSE(envBytes("CTA_TEST_BYTES_KNOB").has_value());
    setenv("CTA_TEST_BYTES_KNOB", "8K", 1);
    const auto parsed = envBytes("CTA_TEST_BYTES_KNOB");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, 8192u);
    unsetenv("CTA_TEST_BYTES_KNOB");
}

} // namespace

/**
 * @file
 * Unit tests for fixed-point formats and the paper's quantization
 * scheme (SIV-C).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/fixed_point.h"
#include "core/matrix.h"
#include "core/rng.h"

namespace {

using cta::core::FxpFormat;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::QuantScheme;
using cta::core::Real;
using cta::core::Rng;

TEST(FxpFormatTest, StepIsPowerOfTwo)
{
    const FxpFormat fmt{13, 7};
    EXPECT_FLOAT_EQ(fmt.step(), 1.0f / 128.0f);
    EXPECT_EQ(fmt.intBits(), 6);
}

TEST(FxpFormatTest, PaperTokenFormatRange)
{
    // 13-bit Q6.7: range [-32, 32 - 2^-7].
    const FxpFormat fmt{13, 7};
    EXPECT_FLOAT_EQ(fmt.minValue(), -32.0f);
    EXPECT_FLOAT_EQ(fmt.maxValue(), 32.0f - 1.0f / 128.0f);
}

TEST(FxpFormatTest, QuantizeRoundsToGrid)
{
    const FxpFormat fmt{13, 7};
    const Real q = fmt.quantize(0.005f);
    // 0.005 * 128 = 0.64 -> rounds to 1 -> 1/128.
    EXPECT_FLOAT_EQ(q, 1.0f / 128.0f);
}

TEST(FxpFormatTest, QuantizeSaturates)
{
    const FxpFormat fmt{13, 7};
    EXPECT_FLOAT_EQ(fmt.quantize(1000.0f), fmt.maxValue());
    EXPECT_FLOAT_EQ(fmt.quantize(-1000.0f), fmt.minValue());
}

TEST(FxpFormatTest, EncodeSaturatesNonFiniteAndHugeInputs)
{
    // Regression: encode() used to call llrint() before clamping, so
    // non-finite or huge inputs hit UB and +inf could come back as
    // minValue() (LLONG_MIN clamped to the lower bound).
    const FxpFormat fmt{13, 7};
    const Real inf = std::numeric_limits<Real>::infinity();
    EXPECT_FLOAT_EQ(fmt.quantize(inf), fmt.maxValue());
    EXPECT_FLOAT_EQ(fmt.quantize(-inf), fmt.minValue());
    EXPECT_FLOAT_EQ(fmt.quantize(1e30f), fmt.maxValue());
    EXPECT_FLOAT_EQ(fmt.quantize(-1e30f), fmt.minValue());
    EXPECT_FLOAT_EQ(
        fmt.quantize(std::numeric_limits<Real>::quiet_NaN()), 0.0f);
}

TEST(FxpFormatTest, EncodeSaturatesEveryFormatWidth)
{
    const Real inf = std::numeric_limits<Real>::infinity();
    for (int total = 4; total <= 32; total += 7) {
        for (int frac = 0; frac < total; frac += 3) {
            const FxpFormat fmt{total, frac};
            EXPECT_EQ(fmt.encode(inf),
                      (std::int64_t{1} << (total - 1)) - 1);
            EXPECT_EQ(fmt.encode(-inf),
                      -(std::int64_t{1} << (total - 1)));
        }
    }
}

TEST(FxpFormatTest, EncodeDecodeRoundTripOnGrid)
{
    const FxpFormat fmt{12, 6};
    for (std::int64_t code = -2048; code < 2048; code += 97) {
        const Real value = fmt.decode(code);
        EXPECT_EQ(fmt.encode(value), code);
    }
}

TEST(FxpFormatTest, QuantizationErrorBoundedByHalfStep)
{
    const FxpFormat fmt{13, 7};
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const Real x = rng.uniform(-30.0f, 30.0f);
        EXPECT_LE(std::abs(fmt.quantize(x) - x), fmt.step() * 0.5f + 1e-6f);
    }
}

TEST(FxpFormatTest, ToStringNamesFormat)
{
    const FxpFormat fmt{13, 7};
    EXPECT_EQ(fmt.toString(), "Q6.7 (13b)");
}

TEST(QuantizeMatrixTest, AllElementsOnGrid)
{
    Rng rng(6);
    const FxpFormat fmt{12, 6};
    const Matrix m = Matrix::randomNormal(20, 20, rng, 0, 5);
    const Matrix q = quantizeMatrix(m, fmt);
    for (Index i = 0; i < q.size(); ++i) {
        const Real scaled = q.data()[i] * 64.0f;
        EXPECT_NEAR(scaled, std::round(scaled), 1e-4f);
    }
}

TEST(FitWeightFormatTest, ThreeSigmaNormalGetsQ3)
{
    // N(0,1) samples rarely exceed |3.x|; expect 3 integer bits
    // (range [-4, 4)) exactly as the paper's three-sigma guideline.
    Rng rng(7);
    const Matrix a = Matrix::randomNormal(64, 64, rng);
    const FxpFormat fmt = fitWeightFormat(a, 12);
    EXPECT_EQ(fmt.totalBits, 12);
    EXPECT_GE(fmt.intBits(), 2);
    EXPECT_LE(fmt.intBits(), 4);
}

TEST(FitWeightFormatTest, CoversObservedRange)
{
    Rng rng(8);
    const Matrix m = Matrix::randomUniform(10, 10, rng, -14.0f, 14.0f);
    const FxpFormat fmt = fitWeightFormat(m, 12);
    Real max_abs = 0;
    for (Index i = 0; i < m.size(); ++i)
        max_abs = std::max(max_abs, std::abs(m.data()[i]));
    EXPECT_GE(fmt.maxValue() + fmt.step(), max_abs);
}

TEST(QuantSchemeTest, PaperDefaultsMatchSectionIVC)
{
    const QuantScheme scheme = QuantScheme::paperDefault();
    EXPECT_EQ(scheme.tokens.totalBits, 13);
    EXPECT_EQ(scheme.tokens.fracBits, 7);
    EXPECT_EQ(scheme.weights.totalBits, 12);
    EXPECT_EQ(scheme.lshParams.totalBits, 12);
    EXPECT_EQ(scheme.lshParams.intBits(), 3);
    EXPECT_EQ(scheme.centroids.totalBits, 12);
    EXPECT_EQ(scheme.centroids.fracBits, 6);
}

} // namespace

/**
 * @file
 * Tests for the page arena (core/page_arena.h): refcounted pages,
 * copy-on-write privatisation, zero-fill on reuse, and the exact
 * byte-accounting contract (solely-owned pages are private, shared
 * pages priced once by the arena) for PagedVector and PagedRows.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/page_arena.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::PageArena;
using cta::core::PagedRows;
using cta::core::PagedVector;
using cta::core::PageRef;
using cta::core::Real;

TEST(PageArenaTest, AllocateReleaseAndAccounting)
{
    PageArena arena(256);
    EXPECT_EQ(arena.pageBytes(), 256u);
    EXPECT_EQ(arena.livePages(), 0u);

    PageRef a = arena.allocate();
    PageRef b = arena.allocate();
    EXPECT_EQ(arena.livePages(), 2u);
    EXPECT_EQ(arena.liveBytes(), 512u);
    EXPECT_EQ(arena.sharedPages(), 0u);
    EXPECT_TRUE(a.solelyOwned());

    arena.addRef(a);
    EXPECT_FALSE(a.solelyOwned());
    EXPECT_EQ(arena.sharedPages(), 1u);
    EXPECT_EQ(arena.sharedBytes(), 256u);

    arena.release(a); // back to one owner
    EXPECT_TRUE(a.solelyOwned());
    EXPECT_EQ(arena.sharedPages(), 0u);
    EXPECT_EQ(arena.livePages(), 2u);

    arena.release(a);
    arena.release(b);
    EXPECT_EQ(arena.livePages(), 0u);
    EXPECT_EQ(arena.liveBytes(), 0u);
}

TEST(PageArenaTest, PagesAreZeroFilledEvenAfterReuse)
{
    PageArena arena(128);
    PageRef dirty = arena.allocate();
    std::memset(dirty.data, 0xAB, 128);
    arena.release(dirty); // page goes to the free list dirty

    // Reuse must come back all-zero: restored state depends on it
    // being bit-identical to a fresh allocation.
    PageRef fresh = arena.allocate();
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_EQ(std::to_integer<int>(fresh.data[i]), 0) << i;
    arena.release(fresh);
}

TEST(PageArenaTest, MakeWritableCopiesOnlyWhenShared)
{
    PageArena arena(64);
    PageRef page = arena.allocate();
    std::memset(page.data, 0x5A, 64);

    // Sole owner: no copy, same page back.
    const PageRef same = arena.makeWritable(page);
    EXPECT_EQ(same.id, page.id);
    EXPECT_EQ(arena.cowCopies(), 0u);

    // Shared: the writer gets a private copy with identical bytes;
    // the other owner keeps the original.
    arena.addRef(page);
    PageRef copy = arena.makeWritable(page);
    EXPECT_NE(copy.id, page.id);
    EXPECT_EQ(arena.cowCopies(), 1u);
    EXPECT_TRUE(copy.solelyOwned());
    EXPECT_TRUE(page.solelyOwned());
    EXPECT_EQ(std::memcmp(copy.data, page.data, 64), 0);

    // Diverge the copy; the original is untouched.
    copy.data[0] = std::byte{0x00};
    EXPECT_EQ(std::to_integer<int>(page.data[0]), 0x5A);

    arena.release(copy);
    arena.release(page);
    EXPECT_EQ(arena.livePages(), 0u);
}

TEST(PagedVectorTest, CopySharesPagesAndWritesPrivatise)
{
    auto arena = std::make_shared<PageArena>(64); // 8 int64 per page
    PagedVector<std::int64_t> v(arena);
    for (std::int64_t i = 0; i < 20; ++i)
        v.push_back(i);
    ASSERT_EQ(v.pageCount(), 3u);
    EXPECT_EQ(v.sharedPageCount(), 0u);

    PagedVector<std::int64_t> copy(v);
    EXPECT_EQ(copy.size(), 20u);
    EXPECT_EQ(v.sharedPageCount(), 3u);
    EXPECT_EQ(arena->sharedPages(), 3u);
    // Shared pages are not private bytes; the index still is.
    EXPECT_LT(copy.privateBytes(), 3 * 64u);

    // A single write privatises exactly one page.
    copy.set(0, -7);
    EXPECT_EQ(copy[0], -7);
    EXPECT_EQ(v[0], 0); // CoW: original untouched
    EXPECT_EQ(v.sharedPageCount(), 2u);
    EXPECT_EQ(arena->cowCopies(), 1u);

    // Appending into a shared tail page privatises it too.
    PagedVector<std::int64_t> tail(v);
    tail.push_back(99);
    EXPECT_EQ(tail[20], 99);
    EXPECT_EQ(v.size(), 20u);
    for (std::int64_t i = 1; i < 20; ++i)
        EXPECT_EQ(v[i], i) << i;
}

TEST(PagedRowsTest, RowsRoundTripAndCopyOnWrite)
{
    auto arena = std::make_shared<PageArena>(64); // 2 rows of 8 floats
    PagedRows rows(arena, 8);
    for (Index r = 0; r < 5; ++r) {
        std::vector<Real> row(8, static_cast<Real>(r));
        rows.appendRow(row);
    }
    ASSERT_EQ(rows.rows(), 5);
    ASSERT_EQ(rows.pageCount(), 3u);
    EXPECT_EQ(rows.row(3)[0], 3.0f);

    const Matrix dense = rows.toMatrix();
    ASSERT_EQ(dense.rows(), 5);
    for (Index r = 0; r < 5; ++r)
        EXPECT_EQ(dense(r, 7), static_cast<Real>(r));

    PagedRows fork(rows);
    EXPECT_EQ(arena->sharedPages(), 3u);
    fork.writableRow(0)[0] = -1.0f;
    EXPECT_EQ(fork.row(0)[0], -1.0f);
    EXPECT_EQ(rows.row(0)[0], 0.0f); // original intact
    EXPECT_EQ(rows.sharedPageCount(), 2u);

    // appendZeroRow really appends zeros.
    fork.appendZeroRow();
    EXPECT_EQ(fork.rows(), 6);
    for (Index c = 0; c < 8; ++c)
        EXPECT_EQ(fork.row(5)[c], 0.0f) << c;
}

TEST(PagedRowsTest, PrivateBytesTrackSoleOwnership)
{
    auto arena = std::make_shared<PageArena>(64);
    PagedRows rows(arena, 8);
    for (Index r = 0; r < 4; ++r)
        rows.appendZeroRow();
    const std::size_t alone = rows.privateBytes();
    EXPECT_GE(alone, 2 * 64u); // both pages solely owned

    {
        const PagedRows copy(rows);
        // Fully shared: neither side owns a page privately (only the
        // PageRef indexes remain private), and the arena prices every
        // live byte exactly once as shared.
        EXPECT_EQ(rows.sharedPageCount(), 2u);
        EXPECT_EQ(arena->sharedBytes(), arena->liveBytes());
        EXPECT_LT(rows.privateBytes(), 64u);
        EXPECT_LT(copy.privateBytes(), 64u);
    }
    // Copy destroyed: pages return to sole ownership at full price.
    EXPECT_EQ(rows.privateBytes(), alone);
    EXPECT_EQ(arena->sharedPages(), 0u);
}

} // namespace

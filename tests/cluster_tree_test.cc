/**
 * @file
 * Unit tests for both cluster-tree implementations, including the
 * cross-check that the hardware-faithful linear tree reproduces the
 * software tree exactly.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/rng.h"
#include "cta/cluster_tree.h"
#include "cta/lsh.h"

namespace {

using cta::alg::HashMatrix;
using cta::alg::LinearClusterTree;
using cta::alg::MapClusterTree;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;

TEST(MapClusterTreeTest, FirstCodeGetsClusterZero)
{
    MapClusterTree tree(3);
    const std::array<std::int32_t, 3> code{1, 2, 3};
    EXPECT_EQ(tree.assign(code), 0);
    EXPECT_EQ(tree.numClusters(), 1);
}

TEST(MapClusterTreeTest, SameCodeSameCluster)
{
    MapClusterTree tree(3);
    const std::array<std::int32_t, 3> code{5, -2, 7};
    const Index first = tree.assign(code);
    EXPECT_EQ(tree.assign(code), first);
    EXPECT_EQ(tree.numClusters(), 1);
}

TEST(MapClusterTreeTest, DifferentCodesDifferentClusters)
{
    MapClusterTree tree(2);
    EXPECT_EQ(tree.assign(std::array<std::int32_t, 2>{0, 0}), 0);
    EXPECT_EQ(tree.assign(std::array<std::int32_t, 2>{0, 1}), 1);
    EXPECT_EQ(tree.assign(std::array<std::int32_t, 2>{1, 0}), 2);
    EXPECT_EQ(tree.numClusters(), 3);
}

TEST(MapClusterTreeTest, PrefixSharingDoesNotCollide)
{
    // Codes sharing all but the last value are distinct clusters.
    MapClusterTree tree(4);
    const Index a =
        tree.assign(std::array<std::int32_t, 4>{9, 9, 9, 1});
    const Index b =
        tree.assign(std::array<std::int32_t, 4>{9, 9, 9, 2});
    EXPECT_NE(a, b);
}

TEST(MapClusterTreeTest, NegativeHashValuesSupported)
{
    MapClusterTree tree(2);
    const Index a =
        tree.assign(std::array<std::int32_t, 2>{-5, -7});
    const Index b =
        tree.assign(std::array<std::int32_t, 2>{-5, 7});
    EXPECT_NE(a, b);
    EXPECT_EQ(tree.assign(std::array<std::int32_t, 2>{-5, -7}), a);
}

TEST(MapClusterTreeTest, IndicesAreDenseFirstSeenOrder)
{
    MapClusterTree tree(1);
    for (std::int32_t v = 0; v < 10; ++v) {
        EXPECT_EQ(tree.assign(std::array<std::int32_t, 1>{100 - v}),
                  v);
    }
}

TEST(LinearClusterTreeTest, MatchesMapTreeOnRandomCodes)
{
    Rng rng(1);
    const Index l = 6;
    MapClusterTree map_tree(l);
    LinearClusterTree lin_tree(l);
    for (int i = 0; i < 500; ++i) {
        std::vector<std::int32_t> code;
        for (Index j = 0; j < l; ++j)
            code.push_back(
                static_cast<std::int32_t>(rng.uniformInt(4)) - 2);
        EXPECT_EQ(lin_tree.assign(code), map_tree.assign(code));
    }
    EXPECT_EQ(lin_tree.numClusters(), map_tree.numClusters());
}

TEST(LinearClusterTreeTest, CountsMemoryTraffic)
{
    LinearClusterTree tree(3);
    const std::array<std::int32_t, 3> code{1, 2, 3};
    tree.assign(code);
    // A fresh path allocates 3 nodes (one per layer).
    EXPECT_EQ(tree.nodesAllocated(), 3);
    EXPECT_GT(tree.memWrites(), 0u);
    const auto writes_after_first = tree.memWrites();
    tree.assign(code); // replay: pure reads, no allocation
    EXPECT_EQ(tree.memWrites(), writes_after_first);
    EXPECT_GT(tree.memReads(), 0u);
}

TEST(LinearClusterTreeTest, ProbesGrowWithNodeFanout)
{
    LinearClusterTree tree(1);
    for (std::int32_t v = 0; v < 8; ++v)
        tree.assign(std::array<std::int32_t, 1>{v});
    const auto probes_before = tree.probes();
    // Assigning the last-inserted value scans all 8 entries.
    tree.assign(std::array<std::int32_t, 1>{7});
    EXPECT_EQ(tree.probes() - probes_before, 8u);
}

TEST(BuildClusterTableTest, TableCoversAllTokens)
{
    Rng rng(2);
    const Matrix x = Matrix::randomNormal(50, 8, rng);
    const auto params = cta::alg::LshParams::sample(4, 8, 2.0f, rng);
    const HashMatrix codes = hashTokens(x, params);
    const auto ct = buildClusterTable(codes);
    EXPECT_EQ(ct.table.size(), 50u);
    for (Index c : ct.table) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, ct.numClusters);
    }
    // Every cluster index must be used at least once (density).
    std::vector<int> used(static_cast<std::size_t>(ct.numClusters), 0);
    for (Index c : ct.table)
        used[static_cast<std::size_t>(c)] = 1;
    for (int flag : used)
        EXPECT_EQ(flag, 1);
}

TEST(BuildClusterTableTest, TokensWithEqualCodesShareCluster)
{
    HashMatrix codes(3, 2);
    codes(0, 0) = 1; codes(0, 1) = 2;
    codes(1, 0) = 3; codes(1, 1) = 4;
    codes(2, 0) = 1; codes(2, 1) = 2; // same as token 0
    const auto ct = buildClusterTable(codes);
    EXPECT_EQ(ct.numClusters, 2);
    EXPECT_EQ(ct.table[0], ct.table[2]);
    EXPECT_NE(ct.table[0], ct.table[1]);
}

} // namespace

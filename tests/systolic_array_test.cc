/**
 * @file
 * Unit tests for the systolic-array timing model and the Table-I
 * mapping scheduler.
 */

#include <gtest/gtest.h>

#include "cta_accel/mapper.h"
#include "cta_accel/systolic_array.h"

namespace {

using cta::accel::HwConfig;
using cta::accel::MappingResult;
using cta::accel::PhaseClass;
using cta::accel::SaStep;
using cta::accel::SystolicArrayModel;
using cta::accel::TableIMapper;
using cta::accel::ValueRegSource;
using cta::alg::CompressionStats;
using cta::core::Cycles;

CompressionStats
typicalStats()
{
    CompressionStats stats;
    stats.m = 512;
    stats.n = 512;
    stats.dw = 64;
    stats.d = 64;
    stats.k0 = 200;
    stats.k1 = 130;
    stats.k2 = 120;
    return stats;
}

TEST(SystolicArrayTest, LshStreamsOneTokenPerCycle)
{
    const SystolicArrayModel sa(HwConfig::paperDefault());
    const SaStep step = sa.lshStep(512, "lsh");
    EXPECT_EQ(step.streamCycles, 512u);
    EXPECT_GT(step.skewCycles, 0u);
}

TEST(SystolicArrayTest, ValueRegSourcesOrdered)
{
    const SystolicArrayModel sa(HwConfig::paperDefault());
    const Cycles keep =
        sa.linearStep(64, ValueRegSource::Keep, "k").updateCycles;
    const Cycles shortcut =
        sa.linearStep(64, ValueRegSource::Shortcut, "s").updateCycles;
    const Cycles memory =
        sa.linearStep(64, ValueRegSource::Memory, "m").updateCycles;
    EXPECT_EQ(keep, 0u);
    EXPECT_EQ(shortcut, 1u);
    EXPECT_EQ(memory, 64u);
}

TEST(SystolicArrayTest, HashLenMustFitWidth)
{
    HwConfig config;
    config.saWidth = 4;
    config.hashLen = 6;
    EXPECT_DEATH(SystolicArrayModel{config}, "exceeds SA width");
}

TEST(MapperTest, LatencyBucketsAllPopulated)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const MappingResult result = mapper.schedule(typicalStats());
    EXPECT_GT(result.latency.tokenCompression, 0u);
    EXPECT_GT(result.latency.linears, 0u);
    EXPECT_GT(result.latency.attention, 0u);
}

TEST(MapperTest, AttentionDominatesTypicalWorkload)
{
    // Paper Fig. 12-right: ~59% attention, ~34% linears, ~7%
    // compression. Check the ordering and rough proportions.
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto lat = mapper.schedule(typicalStats()).latency;
    EXPECT_GT(lat.attention, lat.linears);
    EXPECT_GT(lat.linears, lat.tokenCompression);
    const double comp_share =
        static_cast<double>(lat.tokenCompression) / lat.total();
    EXPECT_LT(comp_share, 0.20)
        << "token compression must be a small latency share";
}

TEST(MapperTest, BubbleRemovalSaves)
{
    HwConfig packed = HwConfig::paperDefault();
    packed.bubbleRemoval = true;
    HwConfig bubbly = HwConfig::paperDefault();
    bubbly.bubbleRemoval = false;
    const auto stats = typicalStats();
    const Cycles t_packed =
        TableIMapper{packed}.schedule(stats).latency.total();
    const Cycles t_bubbly =
        TableIMapper{bubbly}.schedule(stats).latency.total();
    EXPECT_LT(t_packed, t_bubbly);
}

TEST(MapperTest, MoreCompressionLessLatency)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    CompressionStats mild = typicalStats();
    CompressionStats strong = typicalStats();
    strong.k0 = 100;
    strong.k1 = 80;
    strong.k2 = 60;
    EXPECT_LT(mapper.schedule(strong).latency.total(),
              mapper.schedule(mild).latency.total());
}

TEST(MapperTest, PagHiddenAtBalancedParallelism)
{
    // With PAG parallelism = 2 x SA width (the paper's best design
    // practice), the PAG never stalls the typical workload.
    const TableIMapper mapper{HwConfig::paperDefault()};
    const MappingResult result = mapper.schedule(typicalStats());
    EXPECT_EQ(result.pagStallCycles, 0u);
}

TEST(MapperTest, StarvedPagStalls)
{
    HwConfig config = HwConfig::paperDefault();
    config.pagTiles = 1;
    config.pagPerTile = 1; // 16x less PAG throughput
    const TableIMapper mapper{config};
    const MappingResult result = mapper.schedule(typicalStats());
    EXPECT_GT(result.pagStallCycles, 0u);
}

TEST(MapperTest, WiderSaIsFasterButSublinear)
{
    // Paper Fig. 13: throughput does not scale linearly with SA
    // width because the LSH phase uses only l columns.
    HwConfig w8 = HwConfig::paperDefault();
    HwConfig w32 = HwConfig::paperDefault();
    w32.saWidth = 32;
    w32.pagTiles = 32;
    const auto stats = typicalStats();
    const auto t8 = TableIMapper{w8}.schedule(stats).latency.total();
    const auto t32 = TableIMapper{w32}.schedule(stats).latency.total();
    EXPECT_LT(t32, t8);
    EXPECT_GT(static_cast<double>(t32),
              static_cast<double>(t8) / 4.0)
        << "4x width must yield < 4x speedup";
}

TEST(MapperTest, StepsCoverTableIStructure)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const MappingResult result = mapper.schedule(typicalStats());
    // Expect the canonical step names to appear.
    auto has_step = [&](const std::string &prefix) {
        for (const auto &step : result.steps)
            if (step.name.rfind(prefix, 0) == 0)
                return true;
        return false;
    };
    EXPECT_TRUE(has_step("LSH1"));
    EXPECT_TRUE(has_step("LSH0"));
    EXPECT_TRUE(has_step("LSH2"));
    EXPECT_TRUE(has_step("CAVG"));
    EXPECT_TRUE(has_step("LIN K"));
    EXPECT_TRUE(has_step("LIN V"));
    EXPECT_TRUE(has_step("LIN Q"));
    EXPECT_TRUE(has_step("SCORE"));
    EXPECT_TRUE(has_step("OUT"));
    EXPECT_TRUE(has_step("PAG last"));
}

TEST(MapperTest, RejectsMismatchedHeadDim)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    CompressionStats stats = typicalStats();
    stats.d = 32;
    EXPECT_DEATH(mapper.schedule(stats), "SA height");
}

} // namespace

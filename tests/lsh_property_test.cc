/**
 * @file
 * Statistical property tests for p-stable LSH: the single-dimension
 * collision probability of two vectors at distance c under bucket
 * width w follows the closed form (Datar et al., SoCG 2004):
 *
 *   p(c) = integral_0^w (1/c) * phi(t/c) * (1 - t/w) * 2 dt
 *        = 2*Phi(w/c) - 1 - (2c / (sqrt(2 pi) w)) * (1 - e^{-w^2/(2c^2)})
 *
 * where phi/Phi are the standard normal pdf/cdf. The implementation
 * must match this law empirically — the quantitative basis for why
 * bucket-width calibration controls the compression ratio.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include "core/rng.h"
#include "cta/lsh.h"

namespace {

using cta::alg::LshParams;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;

/** Standard normal CDF. */
double
phiCdf(double x)
{
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

/** Closed-form single-hash collision probability at distance c. */
double
collisionProbability(double c, double w)
{
    const double r = w / c;
    return 2.0 * phiCdf(r) - 1.0 -
           (2.0 / (std::sqrt(2.0 * std::numbers::pi) * r)) *
               (1.0 - std::exp(-r * r / 2.0));
}

/** Empirical single-dimension collision rate at distance c. */
double
empiricalCollisionRate(double c, double w, Index dim, int trials,
                       std::uint64_t seed)
{
    Rng rng(seed);
    int collisions = 0;
    for (int t = 0; t < trials; ++t) {
        // Two points at exact distance c along a random direction.
        Matrix x(2, dim);
        Real norm_sq = 0;
        std::vector<Real> dir(static_cast<std::size_t>(dim));
        for (Index j = 0; j < dim; ++j) {
            dir[static_cast<std::size_t>(j)] = rng.normal();
            norm_sq += dir[static_cast<std::size_t>(j)] *
                       dir[static_cast<std::size_t>(j)];
        }
        const Real inv_norm = 1.0f / std::sqrt(norm_sq);
        for (Index j = 0; j < dim; ++j) {
            const Real base = rng.normal();
            x(0, j) = base;
            x(1, j) = base + static_cast<Real>(c) *
                dir[static_cast<std::size_t>(j)] * inv_norm;
        }
        const LshParams params = LshParams::sample(
            1, dim, static_cast<Real>(w), rng);
        const auto codes = hashTokens(x, params);
        collisions += codes(0, 0) == codes(1, 0) ? 1 : 0;
    }
    return static_cast<double>(collisions) / trials;
}

/** Sweep (distance, width) pairs against the closed form. */
class CollisionLawTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(CollisionLawTest, EmpiricalMatchesClosedForm)
{
    const auto [c, w] = GetParam();
    const double predicted = collisionProbability(c, w);
    const double measured =
        empiricalCollisionRate(c, w, 16, 4000,
                               static_cast<std::uint64_t>(c * 100 +
                                                          w * 10));
    EXPECT_NEAR(measured, predicted, 0.03)
        << "c=" << c << " w=" << w;
}

INSTANTIATE_TEST_SUITE_P(
    DistanceWidthGrid, CollisionLawTest,
    ::testing::Values(std::make_pair(0.5, 1.0),
                      std::make_pair(1.0, 1.0),
                      std::make_pair(2.0, 1.0),
                      std::make_pair(1.0, 4.0),
                      std::make_pair(1.0, 0.5),
                      std::make_pair(4.0, 4.0)));

TEST(CollisionLawTest, MonotoneInDistance)
{
    // Farther points collide less (the locality property).
    const double w = 2.0;
    double prev = 1.0;
    for (const double c : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const double p = collisionProbability(c, w);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(CollisionLawTest, MonotoneInWidth)
{
    // Wider buckets collide more.
    const double c = 1.0;
    double prev = 0.0;
    for (const double w : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        const double p = collisionProbability(c, w);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(BucketSaturationTest, ExtremeProjectionsClampToInt32Range)
{
    // Regression: the bucket index used to be formed with a plain
    // static_cast<int32_t>(floor(shifted)), UB for extreme dot
    // products — on x86 a huge *positive* projection came back as
    // INT32_MIN. Buckets must saturate instead.
    Rng rng(123);
    const Index dim = 8;
    const LshParams params =
        LshParams::sample(3, dim, /*w=*/0.001f, rng);
    Matrix x(3, dim);
    for (Index j = 0; j < dim; ++j) {
        x(0, j) = 1e30f;   // overflow positive
        x(1, j) = -1e30f;  // overflow negative
        x(2, j) = 0.5f;    // in range
    }
    const auto codes = hashTokens(x, params);
    for (Index j = 0; j < 3; ++j) {
        const std::int32_t hi = codes(0, j);
        const std::int32_t lo = codes(1, j);
        EXPECT_TRUE(hi == std::numeric_limits<std::int32_t>::max() ||
                    hi == std::numeric_limits<std::int32_t>::min());
        EXPECT_TRUE(lo == std::numeric_limits<std::int32_t>::max() ||
                    lo == std::numeric_limits<std::int32_t>::min());
        // Opposite-sign projections saturate at opposite ends.
        EXPECT_NE(hi, lo);
    }
}

TEST(BucketSaturationTest, NanProjectionsHashToZeroBucket)
{
    Rng rng(321);
    const Index dim = 4;
    const LshParams params = LshParams::sample(2, dim, 1.0f, rng);
    Matrix x(1, dim);
    for (Index j = 0; j < dim; ++j)
        x(0, j) = std::numeric_limits<Real>::quiet_NaN();
    const auto codes = hashTokens(x, params);
    for (Index j = 0; j < 2; ++j)
        EXPECT_EQ(codes(0, j), 0);
}

TEST(BucketSaturationTest, HashTokenMatchesHashTokens)
{
    // The single-token path must agree bit-for-bit with the batch
    // path — it is the decode-time building block.
    Rng rng(77);
    const Index dim = 16, l = 6;
    const LshParams params = LshParams::sample(l, dim, 1.0f, rng);
    const Matrix x = Matrix::randomNormal(10, dim, rng);
    const auto batch = hashTokens(x, params);
    std::vector<std::int32_t> code(static_cast<std::size_t>(l));
    for (Index i = 0; i < x.rows(); ++i) {
        cta::alg::hashToken(x.row(i), params, code);
        for (Index j = 0; j < l; ++j)
            EXPECT_EQ(code[static_cast<std::size_t>(j)], batch(i, j));
    }
}

TEST(CollisionLawTest, FullCodeCollisionIsPowerOfSingle)
{
    // With l independent hashes, P[full-code collision] = p^l; check
    // empirically for l = 4.
    const double c = 1.0, w = 2.0;
    const double p1 = collisionProbability(c, w);
    Rng rng(99);
    const Index dim = 16, l = 4;
    int collisions = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        Matrix x(2, dim);
        Real norm_sq = 0;
        std::vector<Real> dir(static_cast<std::size_t>(dim));
        for (Index j = 0; j < dim; ++j) {
            dir[static_cast<std::size_t>(j)] = rng.normal();
            norm_sq += dir[static_cast<std::size_t>(j)] *
                       dir[static_cast<std::size_t>(j)];
        }
        const Real inv_norm = 1.0f / std::sqrt(norm_sq);
        for (Index j = 0; j < dim; ++j) {
            const Real base = rng.normal();
            x(0, j) = base;
            x(1, j) = base + static_cast<Real>(c) *
                dir[static_cast<std::size_t>(j)] * inv_norm;
        }
        const LshParams params =
            LshParams::sample(l, dim, static_cast<Real>(w), rng);
        const auto codes = hashTokens(x, params);
        bool same = true;
        for (Index j = 0; j < l; ++j)
            same &= codes(0, j) == codes(1, j);
        collisions += same ? 1 : 0;
    }
    const double measured = static_cast<double>(collisions) / trials;
    EXPECT_NEAR(measured, std::pow(p1, l), 0.04);
}

} // namespace

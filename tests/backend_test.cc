/**
 * @file
 * Parity tests for the compute-backend layer (core/backend.h): the
 * ParallelBackend must be bit-identical to NaiveBackend at every
 * thread count, OpCounts must not depend on the installed backend,
 * and the end-to-end CTA pipeline must produce identical results and
 * identical op accounting whichever backend runs it.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/matrix.h"
#include "core/op_counter.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "nn/attention.h"
#include "nn/workload.h"

namespace {

using cta::core::Backend;
using cta::core::Index;
using cta::core::makeBackend;
using cta::core::Matrix;
using cta::core::NaiveBackend;
using cta::core::OpCounts;
using cta::core::ParallelBackend;
using cta::core::Real;
using cta::core::Rng;
using cta::core::setActiveBackend;
using cta::core::Wide;

/** RAII guard restoring the previously active backend. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(Backend *backend)
        : previous_(setActiveBackend(backend))
    {
    }
    ~ScopedBackend() { setActiveBackend(previous_); }

  private:
    Backend *previous_;
};

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

/** Shapes straddling the serial-inline GEMM threshold, with tails
 *  that exercise the 4-row / 4-column block remainders. */
struct GemmShape
{
    Index m, k, n;
};

const std::vector<GemmShape> kShapes = {
    {1, 1, 1},   {3, 5, 7},    {17, 33, 9}, {64, 64, 64},
    {65, 63, 66}, {70, 128, 96}, {128, 96, 130},
};

TEST(BackendParityTest, GemmBitIdenticalAcrossThreadCounts)
{
    NaiveBackend naive;
    Rng rng(7);
    for (const auto &[m, k, n] : kShapes) {
        const Matrix a = Matrix::randomNormal(m, k, rng);
        const Matrix b = Matrix::randomNormal(k, n, rng);
        Matrix ref(m, n);
        naive.gemm(a, b, ref);
        for (const int threads : {1, 2, 8}) {
            ParallelBackend parallel(threads);
            Matrix out(m, n);
            parallel.gemm(a, b, out);
            EXPECT_TRUE(bitIdentical(out, ref))
                << "gemm " << m << "x" << k << "x" << n << " with "
                << threads << " threads";
        }
    }
}

TEST(BackendParityTest, GemmTransposedBBitIdenticalAcrossThreadCounts)
{
    NaiveBackend naive;
    Rng rng(11);
    for (const auto &[m, k, n] : kShapes) {
        const Matrix a = Matrix::randomNormal(m, k, rng);
        const Matrix b = Matrix::randomNormal(n, k, rng);
        Matrix ref(m, n);
        naive.gemmTransposedB(a, b, ref);
        for (const int threads : {1, 2, 8}) {
            ParallelBackend parallel(threads);
            Matrix out(m, n);
            parallel.gemmTransposedB(a, b, out);
            EXPECT_TRUE(bitIdentical(out, ref))
                << "gemmTransB " << m << "x" << k << "x" << n
                << " with " << threads << " threads";
        }
    }
}

TEST(BackendParityTest, ReduceRowsBitIdenticalAcrossThreadCounts)
{
    // Float reductions are order-sensitive; the shared chunking policy
    // makes the partial-sum tree identical in both backends.
    Rng rng(3);
    const Matrix x = Matrix::randomNormal(257, 33, rng);
    NaiveBackend naive;
    const auto body = [&](Index begin, Index end) {
        Wide sum = 0;
        for (Index i = begin; i < end; ++i)
            for (Index j = 0; j < x.cols(); ++j)
                sum += static_cast<Wide>(x(i, j)) * x(i, j);
        return sum;
    };
    const Wide ref = naive.reduceRows(x.rows(), body);
    for (const int threads : {1, 2, 8}) {
        ParallelBackend parallel(threads);
        EXPECT_EQ(parallel.reduceRows(x.rows(), body), ref)
            << threads << " threads";
    }
}

TEST(BackendParityTest, FreeFunctionKernelsMatchUnderEitherBackend)
{
    Rng rng(19);
    const Matrix a = Matrix::randomNormal(70, 40, rng);
    const Matrix b = Matrix::randomNormal(40, 50, rng);

    NaiveBackend naive;
    ParallelBackend parallel(4);

    Matrix prod_naive, prod_parallel;
    Real norm_naive = 0, norm_parallel = 0;
    {
        ScopedBackend guard(&naive);
        prod_naive = matmul(a, b);
        norm_naive = frobeniusNorm(a);
    }
    {
        ScopedBackend guard(&parallel);
        prod_parallel = matmul(a, b);
        norm_parallel = frobeniusNorm(a);
    }
    EXPECT_TRUE(bitIdentical(prod_naive, prod_parallel));
    EXPECT_EQ(norm_naive, norm_parallel);
}

TEST(BackendParityTest, OpCountsIndependentOfBackend)
{
    Rng rng(23);
    const Matrix a = Matrix::randomNormal(48, 32, rng);
    const Matrix b = Matrix::randomNormal(32, 24, rng);

    NaiveBackend naive;
    ParallelBackend parallel(8);

    OpCounts counts_naive, counts_parallel;
    {
        ScopedBackend guard(&naive);
        (void)matmul(a, b, &counts_naive);
        (void)matmulTransB(a, transpose(b), &counts_naive);
        (void)add(a, a, &counts_naive);
        (void)scale(a, 2.0f, &counts_naive);
    }
    {
        ScopedBackend guard(&parallel);
        (void)matmul(a, b, &counts_parallel);
        (void)matmulTransB(a, transpose(b), &counts_parallel);
        (void)add(a, a, &counts_parallel);
        (void)scale(a, 2.0f, &counts_parallel);
    }
    EXPECT_EQ(counts_naive, counts_parallel);
}

TEST(BackendFactoryTest, ParsesSpecStrings)
{
    EXPECT_EQ(makeBackend("naive")->name(), "naive");
    EXPECT_EQ(makeBackend("parallel:3")->threadCount(), 3);
    EXPECT_GE(makeBackend("parallel")->threadCount(), 1);
}

TEST(BackendFactoryDeathTest, RejectsMalformedThreadCounts)
{
    // Regression: atoi accepted trailing garbage, so
    // CTA_BACKEND=parallel:8x silently ran with 8 threads.
    EXPECT_EXIT(makeBackend("parallel:8x"),
                ::testing::ExitedWithCode(1),
                "malformed CTA_BACKEND thread count");
    EXPECT_EXIT(makeBackend("parallel:abc"),
                ::testing::ExitedWithCode(1),
                "malformed CTA_BACKEND thread count");
    EXPECT_EXIT(makeBackend("parallel:"),
                ::testing::ExitedWithCode(1),
                "empty CTA_BACKEND thread count");
    EXPECT_EXIT(makeBackend("parallel:0"),
                ::testing::ExitedWithCode(1), "outside");
    EXPECT_EXIT(makeBackend("parallel:65"),
                ::testing::ExitedWithCode(1), "outside");
}

/** End-to-end CTA run under a specific backend. */
cta::alg::CtaResult
runCta(Backend *backend)
{
    ScopedBackend guard(backend);
    Rng rng(41);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(32, 16, rng);
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 192;
    profile.tokenDim = 32;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.02f;
    cta::nn::WorkloadGenerator gen(profile, 99);
    const Matrix tokens = gen.sampleTokens();
    cta::alg::CtaConfig config;
    return ctaAttention(tokens, tokens, params, config);
}

TEST(BackendEndToEndTest, CtaPipelineBitIdenticalAndCountsMatch)
{
    NaiveBackend naive;
    ParallelBackend one(1);
    ParallelBackend eight(8);

    const auto ref = runCta(&naive);
    for (Backend *backend :
         std::vector<Backend *>{&one, &eight}) {
        const auto result = runCta(backend);
        EXPECT_TRUE(bitIdentical(result.output, ref.output));
        EXPECT_EQ(result.totalOps(), ref.totalOps());
        EXPECT_EQ(result.stats.k0, ref.stats.k0);
        EXPECT_EQ(result.stats.k1, ref.stats.k1);
    }
}

TEST(BackendEndToEndTest, SimdBackendThreadCountInvariantAndClose)
{
    // The simd backend's GEMM is a different rounding chain than
    // naive (FMA vs mul+add), so the end-to-end outputs are compared
    // across ITS OWN thread counts bitwise, and against naive only by
    // tolerance.
    cta::core::SimdBackend one(1);
    cta::core::SimdBackend eight(8);
    NaiveBackend naive;

    const auto ref = runCta(&one);
    const auto multi = runCta(&eight);
    EXPECT_TRUE(bitIdentical(multi.output, ref.output));
    EXPECT_EQ(multi.totalOps(), ref.totalOps());

    const auto exact = runCta(&naive);
    EXPECT_EQ(exact.totalOps(), ref.totalOps());
    EXPECT_EQ(exact.stats.k0, ref.stats.k0);
    EXPECT_EQ(exact.stats.k1, ref.stats.k1);
    EXPECT_LT(maxAbsDiff(ref.output, exact.output), 1e-3f);
}

/** Best-of wall time of @p backend's 256^3 GEMM over @p reps runs. */
double
bestGemmSeconds(Backend &backend, const Matrix &a, const Matrix &b,
                Matrix &c, int reps)
{
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        c.fill(0);
        const auto t0 = std::chrono::steady_clock::now();
        backend.gemm(a, b, c);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

TEST(BackendScalingTest, MoreThreadsNeverSlowerAt256)
{
    // Regression for the negative-scaling bug: parallel:8 used to run
    // a 256^3 GEMM ~30% SLOWER than parallel:1 (fork-join overhead on
    // oversubscribed hosts, re-dispatched per row block). With the
    // size-aware serial cutover and the oversubscription inline
    // shortcut, 8 threads must never lose to 1 beyond noise — and the
    // outputs must stay bit-exact, which is what makes the cutover
    // legal in the first place.
    Rng rng(51);
    const Index n = 256;
    const Matrix a = Matrix::randomNormal(n, n, rng);
    const Matrix b = Matrix::randomNormal(n, n, rng);
    ParallelBackend one(1);
    ParallelBackend eight(8);
    Matrix c1(n, n), c8(n, n);

    // Warm up (page faults, pool spin-up), then best-of to shed
    // scheduler noise. 1.5x tolerance absorbs shared-host jitter
    // while still catching the ~permanent regressions this guards.
    (void)bestGemmSeconds(one, a, b, c1, 1);
    (void)bestGemmSeconds(eight, a, b, c8, 1);
    const double t1 = bestGemmSeconds(one, a, b, c1, 5);
    const double t8 = bestGemmSeconds(eight, a, b, c8, 5);
    EXPECT_TRUE(bitIdentical(c8, c1));
    EXPECT_LE(t8, 1.5 * t1)
        << "parallel:8 " << t8 << "s vs parallel:1 " << t1 << "s";
}

} // namespace

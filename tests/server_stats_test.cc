/**
 * @file
 * Tests for the bounded ServerStats reservoir: exact percentiles
 * below capacity, bounded memory and sane estimates far above it,
 * non-finite rejection, token saturation, and a concurrent
 * record/snapshot/reset torture run (exercised under TSan in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "serve/server_stats.h"

namespace {

using cta::core::Index;
using cta::serve::ServerStats;
using cta::serve::ServerStatsSnapshot;

TEST(ServerStatsReservoirTest, ExactPercentilesBelowCapacity)
{
    ServerStats stats(/*capacity=*/128);
    // 100 distinct values in scrambled order; nearest-rank
    // percentiles over the full set are exact below capacity.
    std::vector<double> values;
    for (int i = 1; i <= 100; ++i)
        values.push_back(static_cast<double>((i * 37) % 101) * 1e-3);
    for (double v : values)
        stats.recordStep(v);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(stats.steps(), 100);
    EXPECT_EQ(stats.samplesStored(), 100);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(50), sorted[49]);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(95), sorted[94]);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(99), sorted[98]);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(100), sorted[99]);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_DOUBLE_EQ(snap.maxSeconds, sorted[99]);
}

TEST(ServerStatsReservoirTest, MemoryBoundedOverMillionSteps)
{
    ServerStats stats; // default ~64k capacity
    constexpr Index kSteps = 1'000'000;
    for (Index i = 0; i < kSteps; ++i)
        stats.recordStep(1e-4);
    // The reservoir never grows past its capacity no matter how many
    // steps are recorded; the exact counters keep counting.
    EXPECT_EQ(stats.samplesStored(), ServerStats::kDefaultCapacity);
    EXPECT_EQ(stats.steps(), kSteps);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.steps, kSteps);
    EXPECT_EQ(snap.tokens, kSteps);
    EXPECT_NEAR(snap.totalSeconds, 1e-4 * kSteps, 1e-6);
    EXPECT_NEAR(snap.meanSeconds, 1e-4, 1e-12);
    EXPECT_DOUBLE_EQ(snap.maxSeconds, 1e-4);
}

TEST(ServerStatsReservoirTest, EstimatesStayCloseAboveCapacity)
{
    // A small reservoir over a uniform ramp: the sampled percentiles
    // should land near the true ones (fixed internal seed, so this is
    // reproducible, not flaky).
    ServerStats stats(/*capacity=*/4096);
    constexpr Index kSteps = 200'000;
    for (Index i = 0; i < kSteps; ++i)
        stats.recordStep(static_cast<double>(i) /
                         static_cast<double>(kSteps));
    EXPECT_EQ(stats.samplesStored(), 4096);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_NEAR(snap.p50Seconds, 0.50, 0.05);
    EXPECT_NEAR(snap.p95Seconds, 0.95, 0.05);
    // Exact regardless of sampling:
    EXPECT_EQ(snap.steps, kSteps);
    EXPECT_NEAR(snap.maxSeconds,
                static_cast<double>(kSteps - 1) /
                    static_cast<double>(kSteps),
                1e-12);
}

TEST(ServerStatsHardeningTest, NonFiniteDurationsDroppedWithCount)
{
    ServerStats stats;
    stats.recordStep(1e-3);
    stats.recordStep(std::numeric_limits<double>::quiet_NaN());
    stats.recordStep(std::numeric_limits<double>::infinity());
    stats.recordStep(2e-3);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.steps, 2);
    EXPECT_EQ(snap.droppedNonFinite, 2);
    EXPECT_NEAR(snap.totalSeconds, 3e-3, 1e-12);
    EXPECT_TRUE(std::isfinite(snap.meanSeconds));
    EXPECT_TRUE(std::isfinite(snap.p99Seconds));
    EXPECT_DOUBLE_EQ(snap.maxSeconds, 2e-3);
}

TEST(ServerStatsHardeningTest, ZeroDenominatorWindowsYieldZeroRates)
{
    // Denominator audit: every window with a zero duration (or no
    // samples at all) must report 0 tokens/s and finite statistics —
    // never inf/NaN from a 0/0.
    struct Case
    {
        const char *name;
        Index steps;          ///< recordStep calls
        double secondsEach;   ///< duration per step
        Index tokensEach;     ///< tokens per step
    };
    const Case cases[] = {
        {"empty window", 0, 0.0, 0},
        {"zero-duration steps", 10, 0.0, 1},
        {"zero-duration zero-token", 5, 0.0, 0},
    };
    for (const Case &c : cases) {
        ServerStats stats;
        for (Index i = 0; i < c.steps; ++i)
            stats.recordStep(c.secondsEach, c.tokensEach);
        const ServerStatsSnapshot snap = stats.snapshot();
        EXPECT_EQ(snap.steps, c.steps) << c.name;
        EXPECT_DOUBLE_EQ(snap.totalSeconds, 0.0) << c.name;
        EXPECT_DOUBLE_EQ(snap.tokensPerSecond, 0.0) << c.name;
        EXPECT_TRUE(std::isfinite(snap.meanSeconds)) << c.name;
        EXPECT_TRUE(std::isfinite(snap.p50Seconds)) << c.name;
        EXPECT_TRUE(std::isfinite(snap.p99Seconds)) << c.name;
        EXPECT_TRUE(std::isfinite(snap.maxSeconds)) << c.name;
    }
}

TEST(ServerStatsHardeningTest, TokenTotalSaturatesInsteadOfWrapping)
{
    constexpr Index kMax = std::numeric_limits<Index>::max();
    ServerStats stats;
    stats.recordStep(1e-3, kMax - 5);
    EXPECT_EQ(stats.snapshot().tokens, kMax - 5);
    stats.recordStep(1e-3, 100);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.tokens, kMax);
    EXPECT_GT(snap.tokensPerSecond, 0);
    stats.recordStep(1e-3, kMax);
    EXPECT_EQ(stats.snapshot().tokens, kMax);
}

TEST(ServerStatsHardeningTest, ResetClearsEverything)
{
    ServerStats stats(/*capacity=*/16);
    for (int i = 0; i < 100; ++i)
        stats.recordStep(1e-3);
    stats.recordStep(std::numeric_limits<double>::quiet_NaN());
    stats.reset();
    EXPECT_EQ(stats.steps(), 0);
    EXPECT_EQ(stats.samplesStored(), 0);
    const ServerStatsSnapshot snap = stats.snapshot();
    EXPECT_EQ(snap.steps, 0);
    EXPECT_EQ(snap.tokens, 0);
    EXPECT_EQ(snap.droppedNonFinite, 0);
    EXPECT_DOUBLE_EQ(snap.totalSeconds, 0);
    EXPECT_DOUBLE_EQ(snap.maxSeconds, 0);
}

TEST(ServerStatsDeathTest, NegativeDurationStaysFatal)
{
    ServerStats stats;
    EXPECT_EXIT(stats.recordStep(-1e-3),
                testing::ExitedWithCode(1), "negative step");
    EXPECT_EXIT(stats.recordStep(
                    -std::numeric_limits<double>::infinity()),
                testing::ExitedWithCode(1), "negative step");
    EXPECT_EXIT(stats.recordStep(1e-3, -1),
                testing::ExitedWithCode(1), "negative step");
}

TEST(ServerStatsConcurrencyTest, RecordSnapshotResetTorture)
{
    // Writers hammer recordStep while readers snapshot and a resetter
    // periodically clears — the point is freedom from data races
    // (TSan job) and internally consistent snapshots, not exact
    // counts, which reset() intentionally discards.
    ServerStats stats(/*capacity=*/1024);
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 20'000;
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&stats, w] {
            for (int i = 0; i < kPerWriter; ++i)
                stats.recordStep(1e-6 * (w + 1), 1);
        });
    std::thread reader([&stats, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            const ServerStatsSnapshot snap = stats.snapshot();
            EXPECT_GE(snap.steps, 0);
            EXPECT_GE(snap.totalSeconds, 0);
            EXPECT_TRUE(std::isfinite(snap.meanSeconds));
            EXPECT_LE(stats.samplesStored(), 1024);
        }
    });
    std::thread resetter([&stats, &stop] {
        while (!stop.load(std::memory_order_relaxed))
            stats.reset();
    });
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    resetter.join();
    // After the dust settles the object still works normally.
    stats.reset();
    stats.recordStep(1e-3);
    EXPECT_EQ(stats.steps(), 1);
}

} // namespace

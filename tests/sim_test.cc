/**
 * @file
 * Unit tests for the simulator infrastructure: technology constants,
 * SRAM model, and report structures/formatting.
 */

#include <gtest/gtest.h>

#include "sim/energy_model.h"
#include "sim/memory.h"
#include "sim/report.h"

namespace {

using cta::sim::EnergyBreakdown;
using cta::sim::LatencyBreakdown;
using cta::sim::MemoryTraffic;
using cta::sim::PerfReport;
using cta::sim::SramModel;
using cta::sim::TechParams;
using cta::sim::Wide;

TEST(TechParamsTest, SramEnergyGrowsWithCapacity)
{
    const TechParams tech = TechParams::smic40nmClass();
    EXPECT_LT(tech.sramEnergyPjPerWord(2.0),
              tech.sramEnergyPjPerWord(64.0));
    EXPECT_LT(tech.sramEnergyPjPerWord(64.0),
              tech.sramEnergyPjPerWord(512.0));
}

TEST(TechParamsTest, MacCostsMoreThanAdd)
{
    const TechParams tech;
    EXPECT_GT(tech.macEnergyPj, tech.addEnergyPj);
    EXPECT_GT(tech.mulEnergyPj, tech.cmpEnergyPj);
}

TEST(SramModelTest, CountsAccesses)
{
    SramModel mem("test", 64.0, TechParams{});
    EXPECT_EQ(mem.accesses(), 0u);
    mem.read(100);
    mem.write(40);
    EXPECT_EQ(mem.reads(), 100u);
    EXPECT_EQ(mem.writes(), 40u);
    EXPECT_EQ(mem.accesses(), 140u);
    mem.reset();
    EXPECT_EQ(mem.accesses(), 0u);
}

TEST(SramModelTest, EnergyProportionalToAccesses)
{
    const TechParams tech;
    SramModel mem("test", 64.0, tech);
    mem.read(1000);
    const Wide e1 = mem.dynamicEnergyPj();
    mem.read(1000);
    EXPECT_NEAR(mem.dynamicEnergyPj(), 2.0 * e1, 1e-9);
    EXPECT_NEAR(e1, 1000.0 * tech.sramEnergyPjPerWord(64.0), 1e-6);
}

TEST(SramModelTest, AreaScalesWithCapacity)
{
    const TechParams tech;
    const SramModel small("s", 32.0, tech);
    const SramModel large("l", 128.0, tech);
    EXPECT_NEAR(large.areaMm2(), 4.0 * small.areaMm2(), 1e-9);
}

TEST(LatencyBreakdownTest, TotalIsSum)
{
    LatencyBreakdown lat;
    lat.tokenCompression = 100;
    lat.linears = 200;
    lat.attention = 300;
    EXPECT_EQ(lat.total(), 600u);
}

TEST(EnergyBreakdownTest, TotalIsSum)
{
    EnergyBreakdown e;
    e.memoryPj = 1;
    e.computePj = 2;
    e.auxiliaryPj = 3;
    e.staticPj = 4;
    EXPECT_DOUBLE_EQ(e.total(), 10.0);
}

TEST(MemoryTrafficTest, Accumulates)
{
    MemoryTraffic a{10, 5}, b{1, 2};
    a += b;
    EXPECT_EQ(a.reads, 11u);
    EXPECT_EQ(a.writes, 7u);
    EXPECT_EQ(a.total(), 18u);
}

TEST(PerfReportTest, ThroughputIsInverseLatency)
{
    PerfReport r;
    r.freqGhz = 1.0;
    r.latency.attention = 1000; // 1 us at 1 GHz
    EXPECT_NEAR(r.seconds(), 1e-6, 1e-12);
    EXPECT_NEAR(r.throughput(), 1e6, 1.0);
}

TEST(PerfReportTest, EnergyInJoules)
{
    PerfReport r;
    r.energy.computePj = 2e12; // 2 J
    EXPECT_NEAR(r.energyJ(), 2.0, 1e-9);
}

TEST(RenderTableTest, AlignsColumns)
{
    const std::string table = cta::sim::renderTable(
        {{"name", "value"}, {"x", "123"}, {"longname", "4"}});
    EXPECT_NE(table.find("name"), std::string::npos);
    EXPECT_NE(table.find("--------"), std::string::npos);
    EXPECT_NE(table.find("longname"), std::string::npos);
}

TEST(FormatTest, RatiosAndPercents)
{
    EXPECT_EQ(cta::sim::fmtRatio(27.66, 1), "27.7x");
    EXPECT_EQ(cta::sim::fmtPercent(0.746, 1), "74.6%");
    EXPECT_EQ(cta::sim::fmt(3.14159, 2), "3.14");
}

} // namespace

/**
 * @file
 * Tests for the approximation-error analysis: residual statistics,
 * spectral-norm estimation, and the empirical validity of the
 * worst-case score-error bound.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/analysis.h"
#include "cta/compressed_attention.h"
#include "nn/workload.h"

namespace {

using cta::alg::CompressionLevel;
using cta::alg::CtaConfig;
using cta::alg::ResidualStats;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;

TEST(ResidualStatsTest, LosslessCompressionHasZeroResiduals)
{
    Rng rng(1);
    const Matrix x = Matrix::randomNormal(32, 8, rng);
    const auto lsh = cta::alg::LshParams::sample(6, 8, 1e-4f, rng);
    const CompressionLevel level = cta::alg::compressTokens(x, lsh);
    ASSERT_EQ(level.numClusters, 32); // singleton clusters
    const ResidualStats stats = residualStats(x, level);
    EXPECT_LT(stats.maxNorm, 1e-5f);
    EXPECT_LT(stats.relative, 1e-6f);
}

TEST(ResidualStatsTest, MeanNeverExceedsMax)
{
    Rng rng(2);
    const Matrix x = Matrix::randomNormal(64, 16, rng);
    const auto lsh = cta::alg::LshParams::sample(4, 16, 4.0f, rng);
    const auto level = cta::alg::compressTokens(x, lsh);
    const ResidualStats stats = residualStats(x, level);
    EXPECT_LE(stats.meanNorm, stats.maxNorm + 1e-6f);
    EXPECT_GT(stats.maxNorm, 0.0f);
}

TEST(ResidualStatsTest, SecondLevelShrinksResiduals)
{
    // The quantitative version of paper SIII-B: the residual norms
    // after two-level compression are strictly below one-level's.
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 192;
    profile.tokenDim = 32;
    profile.coarseClusters = 10;
    profile.fineClusters = 6;
    cta::nn::WorkloadGenerator gen(profile, 3);
    const Matrix x = gen.sampleTokens();
    Rng rng(4);
    const auto lsh1 = cta::alg::LshParams::sample(6, 32, 2.0f, rng);
    const auto lsh2 = cta::alg::LshParams::sample(6, 32, 0.8f, rng);
    const auto two = cta::alg::compressTwoLevel(x, lsh1, lsh2);
    const ResidualStats one_stats = residualStats(x, two.level1);
    const ResidualStats two_stats = residualStats(x, two);
    EXPECT_LT(two_stats.relative, one_stats.relative);
    EXPECT_LT(two_stats.meanNorm, one_stats.meanNorm);
}

TEST(SpectralNormTest, DiagonalMatrix)
{
    Matrix w(3, 3);
    w(0, 0) = 2.0f;
    w(1, 1) = -5.0f;
    w(2, 2) = 1.0f;
    const Real sigma = cta::alg::spectralNormUpperBound(w);
    EXPECT_GE(sigma, 5.0f - 1e-3f);
    EXPECT_LE(sigma, 5.0f * 1.06f);
}

TEST(SpectralNormTest, UpperBoundsOperatorAction)
{
    Rng rng(5);
    const Matrix w = Matrix::randomNormal(16, 16, rng);
    const Real sigma = cta::alg::spectralNormUpperBound(w);
    for (int t = 0; t < 20; ++t) {
        Matrix v = Matrix::randomNormal(16, 1, rng);
        const Real ratio =
            frobeniusNorm(matmul(w, v)) / frobeniusNorm(v);
        EXPECT_LE(ratio, sigma + 1e-3f);
    }
}

TEST(ScoreErrorBoundTest, BoundHoldsEmpirically)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 128;
    profile.tokenDim = 16;
    profile.coarseClusters = 10;
    profile.fineClusters = 6;
    cta::nn::WorkloadGenerator gen(profile, 6);
    const Matrix x = gen.sampleTokens();
    Rng rng(7);
    const auto head =
        cta::nn::AttentionHeadParams::randomInit(16, 16, rng);
    CtaConfig config;
    config.subtractRowMax = false; // compare raw compressed scores
    const auto r = ctaAttention(x, x, head, config);

    const Real bound = cta::alg::scoreErrorBound(
        x, x, r.inter.queryComp, r.inter.kvComp, head);

    // Measure the true max score error: exact S_ij vs recovered
    // compressed score S~_{CT0[i], CT1[j]} + S~_{CT0[i], k1+CT2[j]}.
    const auto trace = cta::nn::exactAttentionTraced(x, x, head);
    Real max_err = 0;
    const Index k1 = r.stats.k1;
    for (Index i = 0; i < 128; ++i) {
        const Index c0 =
            r.inter.queryComp.table[static_cast<std::size_t>(i)];
        for (Index j = 0; j < 128; ++j) {
            const Index c1 = r.inter.kvComp.level1
                .table[static_cast<std::size_t>(j)];
            const Index c2 = k1 + r.inter.kvComp.level2
                .table[static_cast<std::size_t>(j)];
            const Real approx =
                r.inter.sBar(c0, c1) + r.inter.sBar(c0, c2);
            max_err = std::max(
                max_err, std::abs(approx - trace.scores(i, j)));
        }
    }
    EXPECT_LE(max_err, bound)
        << "worst-case bound violated: measured " << max_err
        << " bound " << bound;
    EXPECT_GT(max_err, 0.0f);
    // The bound should not be vacuous (within ~100x of reality).
    EXPECT_LT(bound, 100.0f * std::max(max_err, 1e-3f));
}

TEST(ScoreErrorBoundTest, TighterCompressionTightensBound)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 96;
    profile.tokenDim = 16;
    cta::nn::WorkloadGenerator gen(profile, 8);
    const Matrix x = gen.sampleTokens();
    Rng rng(9);
    const auto head =
        cta::nn::AttentionHeadParams::randomInit(16, 16, rng);
    CtaConfig fine, coarse;
    fine.w0 = fine.w1 = 0.3f;
    fine.w2 = 0.15f;
    coarse.w0 = coarse.w1 = 3.0f;
    coarse.w2 = 1.5f;
    const auto r_fine = ctaAttention(x, x, head, fine);
    const auto r_coarse = ctaAttention(x, x, head, coarse);
    const Real b_fine = cta::alg::scoreErrorBound(
        x, x, r_fine.inter.queryComp, r_fine.inter.kvComp, head);
    const Real b_coarse = cta::alg::scoreErrorBound(
        x, x, r_coarse.inter.queryComp, r_coarse.inter.kvComp, head);
    EXPECT_LT(b_fine, b_coarse);
}

} // namespace

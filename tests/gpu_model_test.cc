/**
 * @file
 * Tests for the analytical V100 model and the ideal accelerator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/ideal_accel.h"
#include "gpu/gpu_model.h"

namespace {

using cta::alg::CompressionStats;
using cta::baseline::IdealAccelerator;
using cta::gpu::GpuModel;
using cta::sim::Wide;

TEST(GpuModelTest, LatencyGrowsQuadraticallyWithSeqLen)
{
    const GpuModel gpu;
    const Wide t256 = gpu.attentionCalcSeconds(256, 256, 64);
    const Wide t512 = gpu.attentionCalcSeconds(512, 512, 64);
    EXPECT_GT(t512 / t256, 2.5);
    EXPECT_LT(t512 / t256, 6.0);
}

TEST(GpuModelTest, LinearsGrowLinearly)
{
    const GpuModel gpu;
    const Wide t256 = gpu.linearSeconds(256, 256, 64, 64);
    const Wide t512 = gpu.linearSeconds(512, 512, 64, 64);
    EXPECT_GT(t512 / t256, 1.3);
    EXPECT_LT(t512 / t256, 2.6);
}

TEST(GpuModelTest, AttentionDominatesAtLongSequences)
{
    const GpuModel gpu;
    EXPECT_GT(gpu.attentionCalcSeconds(512, 512, 64),
              gpu.linearSeconds(512, 512, 64, 64));
}

TEST(GpuModelTest, PlausibleAbsoluteScale)
{
    // Per-head attention mechanism at n = 512 should land in the
    // tens of microseconds (the calibration target, EXPERIMENTS.md).
    const GpuModel gpu;
    const Wide t = gpu.exactAttentionSeconds(512, 512, 64, 64);
    EXPECT_GT(t, 20e-6);
    EXPECT_LT(t, 300e-6);
}

TEST(GpuModelTest, EnergyIsPowerTimesTime)
{
    const GpuModel gpu;
    EXPECT_NEAR(gpu.energyJ(1e-3),
                gpu.params().boardPowerW * 1e-3, 1e-12);
}

TEST(GpuModelTest, CtaOnGpuIsNotFaster)
{
    // Paper SIV opening: optimized CUDA CTA is 1.0-2.1x the latency
    // of normal attention.
    const GpuModel gpu;
    CompressionStats stats;
    stats.m = stats.n = 512;
    stats.dw = stats.d = 64;
    stats.k0 = 200;
    stats.k1 = 130;
    stats.k2 = 120;
    const Wide normal = gpu.exactAttentionSeconds(512, 512, 64, 64);
    const Wide cta = gpu.ctaOnGpuSeconds(stats);
    EXPECT_GT(cta / normal, 0.9);
    EXPECT_LT(cta / normal, 3.0);
}

TEST(GpuModelTest, RunExactHeadReportsBreakdown)
{
    const GpuModel gpu;
    const auto report = gpu.runExactHead(512, 512, 64, 64);
    EXPECT_GT(report.latency.linears, 0u);
    EXPECT_GT(report.latency.attention, 0u);
    EXPECT_GT(report.energy.total(), 0.0);
}

TEST(GpuModelTest, ZeroWorkPricesToZeroSeconds)
{
    // Denominator audit: every degenerate shape must yield exactly 0
    // seconds — finite, no launch charge, no inf/NaN from the
    // roofline divisions.
    const GpuModel gpu;
    struct Case
    {
        const char *name;
        Wide seconds;
    };
    CompressionStats empty;
    empty.n = 0;
    empty.m = 0;
    empty.dw = empty.d = 64;
    const Case cases[] = {
        {"linear m=n=0", gpu.linearSeconds(0, 0, 64, 64)},
        {"linear dw=0", gpu.linearSeconds(512, 512, 0, 64)},
        {"linear d=0", gpu.linearSeconds(512, 512, 64, 0)},
        {"attention m=0", gpu.attentionCalcSeconds(0, 512, 64)},
        {"attention n=0", gpu.attentionCalcSeconds(512, 0, 64)},
        {"exact all-zero", gpu.exactAttentionSeconds(0, 0, 0, 0)},
        {"cta n=0", gpu.ctaOnGpuSeconds(empty)},
    };
    for (const Case &c : cases) {
        EXPECT_TRUE(std::isfinite(c.seconds)) << c.name;
        EXPECT_EQ(c.seconds, 0.0) << c.name;
    }
    // ... while one-sided shapes still price the work they do have.
    EXPECT_GT(gpu.linearSeconds(0, 512, 64, 64), 0.0);
    EXPECT_TRUE(std::isfinite(gpu.linearSeconds(0, 512, 64, 64)));
}

TEST(GpuModelDeathTest, RejectsDegenerateParams)
{
    // Each of these lands in a roofline denominator; constructing the
    // model with a zero must die immediately, not emit inf later.
    struct Case
    {
        const char *name;
        void (*corrupt)(cta::sim::GpuParams &);
    };
    const Case cases[] = {
        {"peak", [](cta::sim::GpuParams &p) { p.peakFp32Tflops = 0; }},
        {"bandwidth",
         [](cta::sim::GpuParams &p) { p.hbmBandwidthGBs = 0; }},
        {"bw-eff",
         [](cta::sim::GpuParams &p) { p.bandwidthEfficiency = 0; }},
        {"gemm-eff",
         [](cta::sim::GpuParams &p) { p.gemmEfficiency = 0; }},
        {"amortization",
         [](cta::sim::GpuParams &p) { p.launchAmortization = -1; }},
        {"launch-us",
         [](cta::sim::GpuParams &p) { p.kernelLaunchUs = -1; }},
    };
    for (const Case &c : cases) {
        cta::sim::GpuParams params;
        c.corrupt(params);
        EXPECT_EXIT(GpuModel{params}, ::testing::ExitedWithCode(1),
                    "GpuParams")
            << c.name;
    }
}

TEST(IdealAcceleratorTest, PeakCyclesFormula)
{
    const IdealAccelerator ideal(512);
    // multiplier ops: 3nd^2 + 2n^2 d + n^2 (softmax muls) + n (in
    // exactAttentionCalcOps: muls = 2 m n, macs = 2 m n d).
    const auto cycles = ideal.exactAttentionCycles(512, 512, 64, 64);
    const std::uint64_t mults = 3ull * 512 * 64 * 64 // linears
        + 2ull * 512 * 512 * 64                      // S and O macs
        + 2ull * 512 * 512;                          // scale+norm muls
    EXPECT_EQ(cycles, (mults + 511) / 512);
}

TEST(IdealAcceleratorTest, MoreMultipliersFewerCycles)
{
    const IdealAccelerator small(256), large(1024);
    EXPECT_GT(small.exactAttentionCycles(512, 512, 64, 64),
              large.exactAttentionCycles(512, 512, 64, 64));
}

TEST(IdealAcceleratorTest, ReportSplitsPhases)
{
    const IdealAccelerator ideal(512);
    const auto report = ideal.run(512, 512, 64, 64);
    EXPECT_GT(report.latency.linears, 0u);
    EXPECT_GT(report.latency.attention, report.latency.linears);
}

// Cycle-to-seconds conversion divides by the clock and the ceil-div
// by the multiplier count; zeros must die at construction.
TEST(IdealAcceleratorTest, RejectsDegenerateConfig)
{
    EXPECT_DEATH(IdealAccelerator(0),
                 "need at least one multiplier");
    EXPECT_DEATH(
        IdealAccelerator(512, 0.0),
        "ideal-accelerator clock frequency must be positive");
}

} // namespace

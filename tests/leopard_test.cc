/**
 * @file
 * Tests for the LeOPArd baseline reconstruction: threshold
 * calibration, pruning behaviour, early-termination accounting and
 * approximation quality.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta/error.h"
#include "leopard/leopard_accel.h"
#include "leopard/leopard_attention.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::leopard::calibrateLeopard;
using cta::leopard::LeopardConfig;
using cta::leopard::LeopardResult;
using cta::nn::AttentionHeadParams;

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    Fixture()
        : params([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(32, 16, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = 128;
        profile.tokenDim = 32;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
    }
};

TEST(LeopardTest, OutputShapeAndFiniteness)
{
    Fixture fx;
    const LeopardResult r = leopardAttention(
        fx.tokens, fx.tokens, fx.params, LeopardConfig{});
    EXPECT_EQ(r.output.rows(), 128);
    EXPECT_EQ(r.output.cols(), 16);
    EXPECT_GT(r.keepRatio, 0.0f);
    EXPECT_LE(r.keepRatio, 1.0f);
}

TEST(LeopardTest, LargeMarginIsNearlyExact)
{
    Fixture fx;
    LeopardConfig config;
    config.margin = 50.0f; // keeps everything
    const LeopardResult r =
        leopardAttention(fx.tokens, fx.tokens, fx.params, config);
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    EXPECT_NEAR(r.keepRatio, 1.0f, 1e-6f);
    EXPECT_LT(relativeError(r.output, exact), 1e-4f);
}

TEST(LeopardTest, SmallerMarginPrunesHarder)
{
    Fixture fx;
    LeopardConfig mild, hard;
    mild.margin = 6.0f;
    hard.margin = 1.5f;
    const auto r_mild =
        leopardAttention(fx.tokens, fx.tokens, fx.params, mild);
    const auto r_hard =
        leopardAttention(fx.tokens, fx.tokens, fx.params, hard);
    EXPECT_LT(r_hard.keepRatio, r_mild.keepRatio);
    EXPECT_LT(r_hard.bitWorkRatio, r_mild.bitWorkRatio);
}

TEST(LeopardTest, PruningStaysAccurate)
{
    // Keys below rowmax - 4.6 carry < 1% relative softmax weight
    // each, so the output barely moves.
    Fixture fx;
    const LeopardResult r = leopardAttention(
        fx.tokens, fx.tokens, fx.params, LeopardConfig{});
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const auto err = cta::alg::compareOutputs(r.output, exact);
    EXPECT_GT(err.meanCosine, 0.995f);
}

TEST(LeopardTest, BitWorkRatioBounds)
{
    Fixture fx;
    LeopardConfig config;
    config.margin = 2.0f;
    config.scoreBits = 12;
    config.earlyTerminationBits = 4;
    const auto r =
        leopardAttention(fx.tokens, fx.tokens, fx.params, config);
    // Ratio in [early/score, 1].
    EXPECT_GE(r.bitWorkRatio, 4.0f / 12.0f - 1e-6f);
    EXPECT_LE(r.bitWorkRatio, 1.0f + 1e-6f);
    // Consistency: ratio = keep + (1-keep) * early/score.
    const Real expect =
        r.keepRatio + (1.0f - r.keepRatio) * 4.0f / 12.0f;
    EXPECT_NEAR(r.bitWorkRatio, expect, 1e-4f);
}

TEST(LeopardTest, CalibrationMeetsMassTarget)
{
    Fixture fx;
    const LeopardConfig config =
        calibrateLeopard(fx.tokens, fx.params, 0.99f);
    // Verify retained softmax mass on the sample.
    const auto trace = cta::nn::exactAttentionTraced(
        fx.tokens, fx.tokens, fx.params);
    double mass = 0;
    for (Index i = 0; i < 128; ++i) {
        Real row_max = trace.scores(i, 0);
        for (Index j = 1; j < 128; ++j)
            row_max = std::max(row_max, trace.scores(i, j));
        for (Index j = 0; j < 128; ++j)
            if (trace.scores(i, j) >= row_max - config.margin)
                mass += trace.probs(i, j);
    }
    EXPECT_GE(mass / 128.0, 0.989);
}

TEST(LeopardTest, TighterMassTargetSmallerMargin)
{
    Fixture fx;
    const auto strict = calibrateLeopard(fx.tokens, fx.params, 0.999f);
    const auto loose = calibrateLeopard(fx.tokens, fx.params, 0.90f);
    EXPECT_LE(loose.margin, strict.margin);
}

TEST(LeopardTest, QuerySpecificPruningVaries)
{
    // Different queries keep different key counts — the defining
    // query-specific behaviour CTA's critique targets. Check the
    // aggregate is strictly between the extremes.
    Fixture fx;
    LeopardConfig config;
    config.margin = 2.5f;
    const auto r =
        leopardAttention(fx.tokens, fx.tokens, fx.params, config);
    EXPECT_GT(r.keepRatio, 0.01f);
    EXPECT_LT(r.keepRatio, 0.99f);
}

// The accelerator model divides by freqGhz and sizes K/V SRAM by
// maxSeqLen; degenerate values must die at construction.
TEST(LeopardAccelTest, RejectsDegenerateHwConfig)
{
    using cta::leopard::LeopardAccelerator;
    using cta::leopard::LeopardHwConfig;
    using cta::sim::TechParams;
    auto zero_freq = LeopardHwConfig::paperDefault();
    zero_freq.freqGhz = 0;
    EXPECT_DEATH(LeopardAccelerator(zero_freq,
                                    TechParams::smic40nmClass()),
                 "LeOPArd clock frequency must be positive");
    auto zero_mem = LeopardHwConfig::paperDefault();
    zero_mem.maxSeqLen = 0;
    EXPECT_DEATH(LeopardAccelerator(zero_mem,
                                    TechParams::smic40nmClass()),
                 "LeOPArd memory sizing must be positive");
    auto zero_lanes = LeopardHwConfig::paperDefault();
    zero_lanes.keyLanes = 0;
    EXPECT_DEATH(LeopardAccelerator(zero_lanes,
                                    TechParams::smic40nmClass()),
                 "invalid LeOPArd configuration");
}

} // namespace

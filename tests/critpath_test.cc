/**
 * @file
 * Tests for the critical-path analyzer: the longest path equals the
 * mapper's makespan on every configuration, binding cycles
 * decompose it exactly, hidden modules carry slack instead of
 * binding, and the bottleneck attribution flips from SA to PAG when
 * the PAG is starved of parallelism.
 */

#include <gtest/gtest.h>

#include "cta_accel/critpath.h"

namespace {

using cta::accel::CritPathReport;
using cta::accel::HwConfig;
using cta::accel::MappingResult;
using cta::accel::TableIMapper;
using cta::alg::CompressionStats;
using cta::core::Cycles;

CompressionStats
shape(cta::core::Index n = 512, cta::core::Index k0 = 200,
      cta::core::Index k1 = 130, cta::core::Index k2 = 120)
{
    CompressionStats s;
    s.m = s.n = n;
    s.dw = s.d = 64;
    s.k0 = k0;
    s.k1 = k1;
    s.k2 = k2;
    return s;
}

std::vector<HwConfig>
configs()
{
    std::vector<HwConfig> out;
    out.push_back(HwConfig::paperDefault());
    HwConfig wide = HwConfig::paperDefault();
    wide.saWidth = 32;
    wide.pagTiles = 32;
    out.push_back(wide);
    HwConfig no_bubble = HwConfig::paperDefault();
    no_bubble.bubbleRemoval = false;
    out.push_back(no_bubble);
    HwConfig starved = HwConfig::paperDefault();
    starved.pagTiles = 1;
    starved.pagPerTile = 1;
    out.push_back(starved);
    return out;
}

TEST(CritPathTest, LongestPathEqualsMapperMakespan)
{
    for (const auto &config : configs()) {
        for (const auto &s :
             {shape(), shape(128, 60, 40, 30),
              shape(512, 280, 150, 130)}) {
            const MappingResult mapping =
                TableIMapper(config).schedule(s);
            const CritPathReport report =
                cta::accel::analyzeCriticalPath(config, s);
            EXPECT_EQ(report.criticalPathCycles,
                      mapping.latency.total());
        }
    }
}

TEST(CritPathTest, BindingCyclesDecomposeThePath)
{
    for (const auto &config : configs()) {
        const CritPathReport report =
            cta::accel::analyzeCriticalPath(config, shape());
        Cycles sum = 0;
        for (const auto &m : report.modules)
            sum += m.bindingCycles;
        EXPECT_EQ(sum, report.criticalPathCycles);
    }
}

TEST(CritPathTest, ModuleOrderAndLookup)
{
    const CritPathReport report = cta::accel::analyzeCriticalPath(
        HwConfig::paperDefault(), shape());
    ASSERT_EQ(report.modules.size(), 4u);
    EXPECT_EQ(report.modules[0].module, "SA");
    EXPECT_EQ(report.modules[1].module, "CIM");
    EXPECT_EQ(report.modules[2].module, "CAG");
    EXPECT_EQ(report.modules[3].module, "PAG");
    EXPECT_EQ(&report.module("PAG"), &report.modules[3]);
    EXPECT_DEATH(report.module("DMA"),
                 "unknown critical-path module");
}

TEST(CritPathTest, PaperDefaultIsSaBound)
{
    const CritPathReport report = cta::accel::analyzeCriticalPath(
        HwConfig::paperDefault(), shape());
    EXPECT_EQ(report.bottleneck, "SA");
    // The CIM is fully hidden: one code per cycle always fits under
    // an LSH pass streaming one token per cycle.
    EXPECT_EQ(report.module("CIM").bindingCycles, 0u);
    EXPECT_GT(report.module("SA").bindingCycles, 0u);
}

TEST(CritPathTest, StarvedPagBecomesTheBottleneck)
{
    HwConfig starved = HwConfig::paperDefault();
    starved.pagTiles = 1;
    starved.pagPerTile = 1;
    const CritPathReport report =
        cta::accel::analyzeCriticalPath(starved, shape());
    EXPECT_EQ(report.bottleneck, "PAG");
    // A binding PAG has no spare headroom left.
    EXPECT_EQ(report.module("PAG").slackCycles, 0u);
    EXPECT_GT(report.module("PAG").bindingCycles,
              report.module("SA").bindingCycles);
}

TEST(CritPathTest, HiddenModulesCarrySlackAtPaperDefault)
{
    const CritPathReport report = cta::accel::analyzeCriticalPath(
        HwConfig::paperDefault(), shape());
    // CIM and CAG fit under their windows with room to spare; the
    // amply-parallel PAG finishes each batch early.
    EXPECT_GT(report.module("CIM").slackCycles, 0u);
    EXPECT_GT(report.module("CAG").slackCycles, 0u);
    EXPECT_GT(report.module("PAG").slackCycles, 0u);
    // Busy cycles are real work: every module does something.
    for (const auto &m : report.modules)
        EXPECT_GT(m.busyCycles, 0u) << m.module;
}

TEST(CritPathTest, MorePagParallelismNeverAddsBinding)
{
    const auto s = shape();
    Cycles prev = ~Cycles{0};
    for (const cta::core::Index tiles : {1, 2, 4, 8}) {
        HwConfig config = HwConfig::paperDefault();
        config.pagTiles = tiles;
        const CritPathReport report =
            cta::accel::analyzeCriticalPath(config, s);
        const Cycles binding = report.module("PAG").bindingCycles;
        EXPECT_LE(binding, prev);
        prev = binding;
    }
}

TEST(CritPathTest, RejectsInvalidConfig)
{
    HwConfig bad = HwConfig::paperDefault();
    bad.freqGhz = 0;
    EXPECT_DEATH(cta::accel::analyzeCriticalPath(bad, shape()),
                 "clock frequency must be positive");
}

} // namespace

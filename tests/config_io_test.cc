/**
 * @file
 * Tests for the key=value configuration format and CtaConfig
 * round-tripping.
 */

#include <gtest/gtest.h>

#include "core/config_io.h"
#include "cta/config.h"

namespace {

using cta::alg::CtaConfig;
using cta::core::ConfigMap;

TEST(ConfigMapTest, ParseBasicPairs)
{
    const ConfigMap map = ConfigMap::parse(
        "alpha = 3\n"
        "beta=hello world\n"
        "  gamma   =  2.5  \n");
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.getInt("alpha"), 3);
    EXPECT_EQ(map.getString("beta"), "hello world");
    EXPECT_DOUBLE_EQ(map.getDouble("gamma"), 2.5);
}

TEST(ConfigMapTest, CommentsAndBlankLinesIgnored)
{
    const ConfigMap map = ConfigMap::parse(
        "# a comment\n"
        "\n"
        "key = 1  # trailing comment\n");
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.getInt("key"), 1);
}

TEST(ConfigMapTest, BoolForms)
{
    const ConfigMap map = ConfigMap::parse(
        "a = true\nb = false\nc = 1\nd = 0\n");
    EXPECT_TRUE(map.getBool("a"));
    EXPECT_FALSE(map.getBool("b"));
    EXPECT_TRUE(map.getBool("c"));
    EXPECT_FALSE(map.getBool("d"));
}

TEST(ConfigMapTest, DefaultsForMissingKeys)
{
    const ConfigMap map = ConfigMap::parse("x = 1\n");
    EXPECT_EQ(map.getInt("absent", 42), 42);
    EXPECT_DOUBLE_EQ(map.getDouble("absent", 2.5), 2.5);
    EXPECT_TRUE(map.getBool("absent", true));
    EXPECT_EQ(map.getInt("x", 42), 1);
}

TEST(ConfigMapTest, RoundTripThroughText)
{
    ConfigMap map;
    map.set("name", std::string("cta"));
    map.set("count", std::int64_t{7});
    map.set("ratio", 0.123456789012345);
    map.set("flag", true);
    const ConfigMap reparsed = ConfigMap::parse(map.toString());
    EXPECT_EQ(reparsed.getString("name"), "cta");
    EXPECT_EQ(reparsed.getInt("count"), 7);
    EXPECT_NEAR(reparsed.getDouble("ratio"), 0.123456789012345,
                1e-15);
    EXPECT_TRUE(reparsed.getBool("flag"));
}

TEST(ConfigMapTest, MalformedLineDies)
{
    EXPECT_DEATH(ConfigMap::parse("no equals sign here\n"),
                 "has no '='");
}

TEST(ConfigMapTest, MissingKeyDies)
{
    const ConfigMap map = ConfigMap::parse("x = 1\n");
    EXPECT_DEATH(map.getString("y"), "missing config key");
}

TEST(ConfigMapTest, BadIntDies)
{
    const ConfigMap map = ConfigMap::parse("x = hello\n");
    EXPECT_DEATH(map.getInt("x"), "not an integer");
}

TEST(CtaConfigIoTest, RoundTripPreservesEverything)
{
    CtaConfig config;
    config.hashLen = 8;
    config.w0 = 0.375f;
    config.w1 = 1.25f;
    config.w2 = 0.625f;
    config.subtractRowMax = false;
    config.seed = 12345;
    const CtaConfig back =
        cta::alg::ctaConfigFromMap(cta::alg::toConfigMap(config));
    EXPECT_EQ(back.hashLen, 8);
    EXPECT_FLOAT_EQ(back.w0, 0.375f);
    EXPECT_FLOAT_EQ(back.w1, 1.25f);
    EXPECT_FLOAT_EQ(back.w2, 0.625f);
    EXPECT_FALSE(back.subtractRowMax);
    EXPECT_EQ(back.seed, 12345u);
}

TEST(CtaConfigIoTest, TextFormIsHumanReadable)
{
    CtaConfig config;
    const std::string text =
        cta::alg::toConfigMap(config).toString();
    EXPECT_NE(text.find("hash_len = 6"), std::string::npos);
    EXPECT_NE(text.find("subtract_row_max = true"),
              std::string::npos);
}

TEST(CtaConfigIoTest, DefaultsApplyForOptionalKeys)
{
    const ConfigMap map = ConfigMap::parse(
        "hash_len = 6\nw0 = 1\nw1 = 1\nw2 = 0.5\n");
    const CtaConfig config = cta::alg::ctaConfigFromMap(map);
    EXPECT_TRUE(config.subtractRowMax);
    EXPECT_EQ(config.seed, 1u);
}

} // namespace

/**
 * @file
 * Unit tests for OpCounts arithmetic and derived quantities.
 */

#include <gtest/gtest.h>

#include "core/op_counter.h"

namespace {

using cta::core::OpCounts;

TEST(OpCountsTest, DefaultIsZero)
{
    const OpCounts ops;
    EXPECT_EQ(ops.total(), 0u);
    EXPECT_EQ(ops.flops(), 0u);
    EXPECT_EQ(ops.multiplierOps(), 0u);
}

TEST(OpCountsTest, TotalSumsAllClasses)
{
    OpCounts ops;
    ops.macs = 1;
    ops.adds = 2;
    ops.muls = 3;
    ops.divs = 4;
    ops.exps = 5;
    ops.cmps = 6;
    ops.floors = 7;
    EXPECT_EQ(ops.total(), 28u);
}

TEST(OpCountsTest, FlopsCountsMacAsTwo)
{
    OpCounts ops;
    ops.macs = 10;
    ops.adds = 3;
    EXPECT_EQ(ops.flops(), 23u);
}

TEST(OpCountsTest, MultiplierOps)
{
    OpCounts ops;
    ops.macs = 10;
    ops.muls = 5;
    ops.adds = 100; // adders don't use multipliers
    EXPECT_EQ(ops.multiplierOps(), 15u);
}

TEST(OpCountsTest, PlusAccumulatesFieldwise)
{
    OpCounts a;
    a.macs = 1;
    a.exps = 2;
    OpCounts b;
    b.macs = 10;
    b.cmps = 5;
    const OpCounts c = a + b;
    EXPECT_EQ(c.macs, 11u);
    EXPECT_EQ(c.exps, 2u);
    EXPECT_EQ(c.cmps, 5u);
}

TEST(OpCountsTest, EqualityIsFieldwise)
{
    OpCounts a, b;
    a.divs = 1;
    EXPECT_NE(a, b);
    b.divs = 1;
    EXPECT_EQ(a, b);
}

TEST(OpCountsTest, ToStringMentionsEveryField)
{
    OpCounts ops;
    ops.macs = 42;
    const std::string s = ops.toString();
    EXPECT_NE(s.find("macs=42"), std::string::npos);
    EXPECT_NE(s.find("exps=0"), std::string::npos);
    EXPECT_NE(s.find("floors=0"), std::string::npos);
}

} // namespace

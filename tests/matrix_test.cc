/**
 * @file
 * Unit tests for core::Matrix and its kernels, including op-count
 * accounting and a property sweep over GEMM shapes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/matrix.h"
#include "core/op_counter.h"
#include "core/rng.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Real;
using cta::core::Rng;

TEST(MatrixTest, ConstructionAndFill)
{
    Matrix m(3, 4, 2.5f);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.size(), 12);
    for (Index i = 0; i < 3; ++i)
        for (Index j = 0; j < 4; ++j)
            EXPECT_FLOAT_EQ(m(i, j), 2.5f);
    m.fill(-1.0f);
    EXPECT_FLOAT_EQ(m(2, 3), -1.0f);
}

TEST(MatrixTest, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0);
}

TEST(MatrixTest, RowSpanWritesThrough)
{
    Matrix m(2, 3);
    auto row = m.row(1);
    row[2] = 9.0f;
    EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
}

TEST(MatrixTest, IdentityMatmulIsNoop)
{
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(5, 5, rng);
    const Matrix prod = matmul(a, Matrix::identity(5));
    EXPECT_LT(maxAbsDiff(prod, a), 1e-6f);
}

TEST(MatrixTest, MatmulKnownValues)
{
    Matrix a(2, 2);
    a(0, 0) = 1; a(0, 1) = 2;
    a(1, 0) = 3; a(1, 1) = 4;
    Matrix b(2, 2);
    b(0, 0) = 5; b(0, 1) = 6;
    b(1, 0) = 7; b(1, 1) = 8;
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatmulTransBMatchesExplicitTranspose)
{
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(4, 6, rng);
    const Matrix b = Matrix::randomNormal(5, 6, rng);
    const Matrix direct = matmulTransB(a, b);
    const Matrix via_t = matmul(a, transpose(b));
    EXPECT_LT(maxAbsDiff(direct, via_t), 1e-4f);
}

TEST(MatrixTest, MatmulChargesMacs)
{
    Rng rng(3);
    const Matrix a = Matrix::randomNormal(3, 4, rng);
    const Matrix b = Matrix::randomNormal(4, 5, rng);
    OpCounts ops;
    matmul(a, b, &ops);
    EXPECT_EQ(ops.macs, 3u * 4u * 5u);
    OpCounts ops_t;
    matmulTransB(a, transpose(b), &ops_t);
    EXPECT_EQ(ops_t.macs, 3u * 4u * 5u);
}

TEST(MatrixTest, AddSubScale)
{
    Rng rng(4);
    const Matrix a = Matrix::randomNormal(3, 3, rng);
    const Matrix b = Matrix::randomNormal(3, 3, rng);
    const Matrix sum = add(a, b);
    const Matrix back = sub(sum, b);
    EXPECT_LT(maxAbsDiff(back, a), 1e-6f);
    const Matrix doubled = scale(a, 2.0f);
    EXPECT_LT(maxAbsDiff(doubled, add(a, a)), 1e-6f);
}

TEST(MatrixTest, TransposeIsInvolution)
{
    Rng rng(5);
    const Matrix a = Matrix::randomNormal(3, 7, rng);
    const Matrix tt = transpose(transpose(a));
    EXPECT_LT(maxAbsDiff(tt, a), 0.0f + 1e-9f);
}

TEST(MatrixTest, RowSliceAndAppendRowsRoundTrip)
{
    Rng rng(6);
    const Matrix a = Matrix::randomNormal(6, 4, rng);
    Matrix top = a.rowSlice(0, 2);
    const Matrix bottom = a.rowSlice(2, 6);
    top.appendRows(bottom);
    EXPECT_LT(maxAbsDiff(top, a), 0.0f + 1e-9f);
}

TEST(MatrixTest, AppendToEmptyAdopts)
{
    Rng rng(7);
    const Matrix a = Matrix::randomNormal(3, 4, rng);
    Matrix empty;
    empty.appendRows(a);
    EXPECT_EQ(empty.rows(), 3);
    EXPECT_LT(maxAbsDiff(empty, a), 1e-9f);
}

TEST(MatrixTest, FrobeniusNormKnown)
{
    Matrix m(1, 2);
    m(0, 0) = 3;
    m(0, 1) = 4;
    EXPECT_FLOAT_EQ(frobeniusNorm(m), 5.0f);
}

TEST(MatrixTest, RelativeErrorZeroForIdentical)
{
    Rng rng(8);
    const Matrix a = Matrix::randomNormal(4, 4, rng);
    EXPECT_FLOAT_EQ(relativeError(a, a), 0.0f);
}

TEST(MatrixTest, RandomNormalMoments)
{
    Rng rng(9);
    const Matrix m = Matrix::randomNormal(200, 200, rng, 1.0f, 0.5f);
    double sum = 0;
    for (Index i = 0; i < m.size(); ++i)
        sum += m.data()[i];
    EXPECT_NEAR(sum / m.size(), 1.0, 0.01);
}

/** Property sweep: (A*B)*C == A*(B*C) across shapes. */
class MatmulAssocTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(MatmulAssocTest, Associativity)
{
    const auto [m, k, n, p] = GetParam();
    Rng rng(100 + m + k + n + p);
    const Matrix a = Matrix::randomNormal(m, k, rng);
    const Matrix b = Matrix::randomNormal(k, n, rng);
    const Matrix c = Matrix::randomNormal(n, p, rng);
    const Matrix left = matmul(matmul(a, b), c);
    const Matrix right = matmul(a, matmul(b, c));
    EXPECT_LT(relativeError(left, right), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulAssocTest,
    ::testing::Values(std::make_tuple(1, 1, 1, 1),
                      std::make_tuple(2, 3, 4, 5),
                      std::make_tuple(8, 8, 8, 8),
                      std::make_tuple(16, 1, 16, 1),
                      std::make_tuple(1, 32, 1, 32),
                      std::make_tuple(7, 13, 5, 3)));

} // namespace

/**
 * @file
 * Tests for the multi-tenant serving front-end: DRR weighted
 * fairness, per-tenant admission quotas, least-loaded shard
 * placement, exact per-shard budget splitting, retry-after admission
 * hints, per-shard submission-order determinism across thread
 * counts, and the trace-driven load generator it is benched with.
 * Shard fault domains are covered in tests/shard_failover_test.cc.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/parallel.h"
#include "core/rng.h"
#include "fault/fault.h"
#include "nn/workload.h"
#include "serve/frontend.h"
#include "serve/loadgen.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::core::ThreadPool;
using cta::serve::Completion;
using cta::serve::DecodeSession;
using cta::serve::FrontendConfig;
using cta::serve::ServeConfig;
using cta::serve::ServeFrontend;
using cta::serve::StepStatus;
using cta::serve::SubmitResult;
using cta::serve::TenantConfig;

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

cta::nn::AttentionHeadParams
testParams()
{
    Rng rng(5);
    return cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim,
                                                    rng);
}

TEST(ServeFrontendTest, RoundRobinShardPlacement)
{
    FrontendConfig fc;
    fc.shards = 3;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    for (Index i = 0; i < 7; ++i)
        EXPECT_EQ(frontend.createSession(tenant), i);
    for (Index i = 0; i < 7; ++i) {
        EXPECT_EQ(frontend.shardOf(i), i % 3);
        EXPECT_EQ(frontend.tenantOf(i), tenant);
    }
    EXPECT_EQ(frontend.sessionCount(), 7);
    EXPECT_EQ(frontend.shardCount(), 3);
}

TEST(ServeFrontendTest, CompletionsMatchStandaloneSessions)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 64});

    const Matrix ctx_a = sampleTokens(24, kDim, 61);
    const Matrix ctx_b = sampleTokens(32, kDim, 62);
    const Matrix ctx_c = sampleTokens(16, kDim, 63);
    const Index a = frontend.createSession(tenant, ctx_a);
    const Index b = frontend.createSession(tenant, ctx_b);
    const Index c = frontend.createSession(tenant, ctx_c);

    // Two decode steps per session, interleaved across sessions (and
    // therefore across shards).
    const Matrix steps = sampleTokens(6, kDim, 64);
    const Index order[6] = {a, b, c, c, a, b};
    for (Index i = 0; i < 6; ++i)
        ASSERT_EQ(frontend.trySubmit(order[i], steps.row(i)),
                  SubmitResult::Accepted);
    const auto completions = frontend.flushOnce();
    ASSERT_EQ(completions.size(), 6u);

    // Reference: the same three streams stepped standalone, serially,
    // in the same per-session order.
    DecodeSession ref_a(params, ServeConfig{}, kDim);
    DecodeSession ref_b(params, ServeConfig{}, kDim);
    DecodeSession ref_c(params, ServeConfig{}, kDim);
    ref_a.prefill(ctx_a);
    ref_b.prefill(ctx_b);
    ref_c.prefill(ctx_c);
    std::vector<std::vector<Matrix>> want(3);
    for (Index i = 0; i < 6; ++i) {
        DecodeSession &ref = order[i] == a   ? ref_a
                             : order[i] == b ? ref_b
                                             : ref_c;
        want[static_cast<std::size_t>(order[i])].push_back(
            ref.step(steps.row(i)));
    }
    std::vector<std::size_t> seen(3, 0);
    for (const Completion &comp : completions) {
        EXPECT_EQ(comp.status, StepStatus::Ok);
        EXPECT_EQ(comp.tenant, tenant);
        EXPECT_EQ(comp.shard, frontend.shardOf(comp.session));
        const auto s = static_cast<std::size_t>(comp.session);
        ASSERT_LT(seen[s], want[s].size());
        EXPECT_TRUE(bitIdentical(comp.output, want[s][seen[s]]))
            << "session " << comp.session << " step " << seen[s];
        ++seen[s];
    }
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_EQ(seen[s], want[s].size());
}

/** One fixed two-tenant workload over two flush rounds. */
std::vector<Completion>
runFrontendWorkload(ThreadPool *pool)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 2;
    fc.pool = pool;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index gold = frontend.registerTenant({"gold", 4, 64});
    const Index bronze = frontend.registerTenant({"bronze", 1, 64});

    std::vector<Index> sessions;
    for (Index i = 0; i < 4; ++i)
        sessions.push_back(frontend.createSession(
            i % 2 == 0 ? gold : bronze,
            sampleTokens(16 + 4 * i, kDim, 70 + i)));

    const Matrix steps = sampleTokens(16, kDim, 80);
    std::vector<Completion> all;
    for (Index round = 0; round < 2; ++round) {
        for (Index i = 0; i < 8; ++i) {
            const Index sid = sessions[static_cast<std::size_t>(
                (i + round) % 4)];
            EXPECT_EQ(frontend.trySubmit(
                          sid, steps.row(round * 8 + i)),
                      SubmitResult::Accepted);
        }
        auto completions = frontend.flushOnce();
        EXPECT_EQ(completions.size(), 8u);
        for (auto &c : completions)
            all.push_back(std::move(c));
    }
    return all;
}

TEST(ServeFrontendTest, DeterministicAcrossThreadCounts)
{
    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto one = runFrontendWorkload(&serial);
    const auto eight = runFrontendWorkload(&wide);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].session, eight[i].session) << "slot " << i;
        EXPECT_EQ(one[i].tenant, eight[i].tenant);
        EXPECT_EQ(one[i].shard, eight[i].shard);
        EXPECT_EQ(one[i].status, eight[i].status);
        EXPECT_TRUE(bitIdentical(one[i].output, eight[i].output))
            << "slot " << i;
    }
}

TEST(ServeFrontendTest, DrrDispatchesProportionallyUnderSaturation)
{
    FrontendConfig fc;
    fc.shards = 1;
    fc.drrQuantumScale = 4;
    fc.maxDispatchPerFlush = 16;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index gold = frontend.registerTenant({"gold", 3, 64});
    const Index bronze = frontend.registerTenant({"bronze", 1, 64});
    const Index gs =
        frontend.createSession(gold, sampleTokens(8, kDim, 90));
    const Index bs =
        frontend.createSession(bronze, sampleTokens(8, kDim, 91));

    // Both tenants heavily backlogged: 40 queued steps each, far more
    // than one flush's dispatch budget.
    const Matrix token = sampleTokens(2, kDim, 92);
    for (Index i = 0; i < 40; ++i) {
        ASSERT_EQ(frontend.trySubmit(gs, token.row(0)),
                  SubmitResult::Accepted);
        ASSERT_EQ(frontend.trySubmit(bs, token.row(1)),
                  SubmitResult::Accepted);
    }
    const auto completions = frontend.flushOnce();
    // One DRR round banks 3*4 = 12 gold and 1*4 = 4 bronze — exactly
    // the 16-step dispatch budget, so the split is exact: the flush
    // carried weight-proportional work from both classes.
    EXPECT_EQ(completions.size(), 16u);
    EXPECT_EQ(frontend.tenantCounters(gold).dispatched, 12u);
    EXPECT_EQ(frontend.tenantCounters(bronze).dispatched, 4u);
    EXPECT_EQ(frontend.queuedSteps(gold), 28);
    EXPECT_EQ(frontend.queuedSteps(bronze), 36);
}

TEST(ServeFrontendTest, WorkConservingWhenOnlyOneTenantIsBusy)
{
    FrontendConfig fc;
    fc.shards = 2;
    fc.drrQuantumScale = 2; // tiny quantum: re-banking must kick in
    fc.maxDispatchPerFlush = 64;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index gold = frontend.registerTenant({"gold", 4, 64});
    const Index bronze = frontend.registerTenant({"bronze", 1, 64});
    const Index bs =
        frontend.createSession(bronze, sampleTokens(8, kDim, 95));
    (void)gold;

    const Matrix token = sampleTokens(1, kDim, 96);
    for (Index i = 0; i < 30; ++i)
        ASSERT_EQ(frontend.trySubmit(bs, token.row(0)),
                  SubmitResult::Accepted);
    // A lone busy tenant is not throttled to its own quantum: the
    // dispatch loop re-banks until the backlog (or the cap) runs out.
    EXPECT_EQ(frontend.flushOnce().size(), 30u);
    EXPECT_EQ(frontend.queuedSteps(bronze), 0);
    EXPECT_EQ(frontend.tenantCounters(bronze).completed, 30u);
}

TEST(ServeFrontendTest, QuotaRejectsAndReadmitsAfterFlush)
{
    FrontendConfig fc;
    fc.shards = 1;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"capped", 1, 4});
    const Index other = frontend.registerTenant({"other", 1, 4});
    const Index s =
        frontend.createSession(tenant, sampleTokens(8, kDim, 97));
    const Index o =
        frontend.createSession(other, sampleTokens(8, kDim, 98));

    const Matrix token = sampleTokens(1, kDim, 99);
    for (Index i = 0; i < 4; ++i)
        ASSERT_EQ(frontend.trySubmit(s, token.row(0)),
                  SubmitResult::Accepted);
    // The fifth step breaches this tenant's quota — and only this
    // tenant's: the other class still has its full headroom.
    EXPECT_EQ(frontend.trySubmit(s, token.row(0)),
              SubmitResult::QuotaExceeded);
    EXPECT_EQ(frontend.tenantCounters(tenant).shedQuota, 1u);
    EXPECT_EQ(frontend.trySubmit(o, token.row(0)),
              SubmitResult::Accepted);

    // Draining the queue re-opens admission.
    EXPECT_EQ(frontend.flushOnce().size(), 5u);
    EXPECT_EQ(frontend.queuedSteps(tenant), 0);
    EXPECT_EQ(frontend.trySubmit(s, token.row(0)),
              SubmitResult::Accepted);
    const auto counters = frontend.tenantCounters(tenant);
    EXPECT_EQ(counters.submitted, 6u);
    EXPECT_EQ(counters.admitted, 5u);
    EXPECT_EQ(counters.completed, 4u);
}

TEST(ServeFrontendTest, RemoveSessionShedsQueuedStepsAndRejects)
{
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    const Index a =
        frontend.createSession(tenant, sampleTokens(8, kDim, 101));
    const Index b =
        frontend.createSession(tenant, sampleTokens(8, kDim, 102));

    const Matrix token = sampleTokens(2, kDim, 103);
    for (Index i = 0; i < 3; ++i) {
        ASSERT_EQ(frontend.trySubmit(a, token.row(0)),
                  SubmitResult::Accepted);
        ASSERT_EQ(frontend.trySubmit(b, token.row(1)),
                  SubmitResult::Accepted);
    }
    frontend.removeSession(a);
    EXPECT_EQ(frontend.trySubmit(a, token.row(0)),
              SubmitResult::SessionRemoved);
    // All four sheds (3 queued drops + 1 admission rejection) are
    // removed-session sheds, and the legacy catch-all is exactly the
    // sum of the per-reason counters.
    const auto counters = frontend.tenantCounters(tenant);
    EXPECT_EQ(counters.shedRemoved, 4u);
    EXPECT_EQ(counters.shedCorrupted, 0u);
    EXPECT_EQ(counters.shedBounced, 0u);
    EXPECT_EQ(counters.shedFenced, 0u);
    EXPECT_EQ(counters.shedDispatch(), 4u);

    const auto completions = frontend.flushOnce();
    ASSERT_EQ(completions.size(), 3u);
    for (const Completion &c : completions) {
        EXPECT_EQ(c.session, b);
        EXPECT_EQ(c.status, StepStatus::Ok);
    }
}

TEST(ServeFrontendTest, EnvKnobsParse)
{
    setenv("CTA_SHARDS", "5", 1);
    EXPECT_EQ(ServeFrontend::shardsFromEnv(), 5);
    unsetenv("CTA_SHARDS");
    EXPECT_EQ(ServeFrontend::shardsFromEnv(), 4);

    setenv("CTA_TENANT_QUOTA", "77", 1);
    EXPECT_EQ(ServeFrontend::tenantQuotaFromEnv(), 77);
    unsetenv("CTA_TENANT_QUOTA");
    EXPECT_EQ(ServeFrontend::tenantQuotaFromEnv(), 1024);

    setenv("CTA_SHARD_FAIL_AFTER", "7", 1);
    EXPECT_EQ(ServeFrontend::shardFailAfterFromEnv(), 7);
    unsetenv("CTA_SHARD_FAIL_AFTER");
    EXPECT_EQ(ServeFrontend::shardFailAfterFromEnv(), 3);

    setenv("CTA_RETRY_BASE", "0.25", 1);
    EXPECT_DOUBLE_EQ(ServeFrontend::retryBaseFromEnv(), 0.25);
    unsetenv("CTA_RETRY_BASE");
    EXPECT_DOUBLE_EQ(ServeFrontend::retryBaseFromEnv(), 1e-3);

    setenv("CTA_RETRY_MAX", "8", 1);
    EXPECT_DOUBLE_EQ(ServeFrontend::retryMaxFromEnv(), 8.0);
    unsetenv("CTA_RETRY_MAX");
    EXPECT_DOUBLE_EQ(ServeFrontend::retryMaxFromEnv(), 1.0);
}

TEST(ServeFrontendDeathTest, MalformedEnvKnobsAreFatal)
{
    setenv("CTA_SHARDS", "0", 1);
    EXPECT_EXIT(ServeFrontend::shardsFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_SHARDS");
    setenv("CTA_SHARDS", "nope", 1);
    EXPECT_EXIT(ServeFrontend::shardsFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_SHARDS");
    unsetenv("CTA_SHARDS");
    setenv("CTA_TENANT_QUOTA", "-2", 1);
    EXPECT_EXIT(ServeFrontend::tenantQuotaFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_TENANT_QUOTA");
    unsetenv("CTA_TENANT_QUOTA");
    setenv("CTA_SHARD_FAIL_AFTER", "0", 1);
    EXPECT_EXIT(ServeFrontend::shardFailAfterFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_SHARD_FAIL_AFTER");
    unsetenv("CTA_SHARD_FAIL_AFTER");
    setenv("CTA_RETRY_BASE", "-0.5", 1);
    EXPECT_EXIT(ServeFrontend::retryBaseFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_RETRY_BASE");
    unsetenv("CTA_RETRY_BASE");
    setenv("CTA_RETRY_MAX", "nope", 1);
    EXPECT_EXIT(ServeFrontend::retryMaxFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_RETRY_MAX");
    unsetenv("CTA_RETRY_MAX");
}

TEST(ServeFrontendDeathTest, DuplicateTenantNameIsFatal)
{
    FrontendConfig fc;
    fc.shards = 1;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    frontend.registerTenant({"gold", 1, 4});
    EXPECT_EXIT(frontend.registerTenant({"gold", 2, 8}),
                ::testing::ExitedWithCode(1), "already registered");
}

TEST(ServeFrontendTest, ShardBudgetSplitSumsExactly)
{
    FrontendConfig fc;
    fc.shards = 3;
    fc.memBudgetBytes = 1'000'001; // 3 * 333'333 + 2
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    // The first budget % shards shards take the extra byte; an even
    // split would silently shave the operator's stated limit.
    EXPECT_EQ(frontend.manager(0).memBudgetBytes(), 333'334u);
    EXPECT_EQ(frontend.manager(1).memBudgetBytes(), 333'334u);
    EXPECT_EQ(frontend.manager(2).memBudgetBytes(), 333'333u);
    std::size_t sum = 0;
    for (Index s = 0; s < frontend.shardCount(); ++s)
        sum += frontend.manager(s).memBudgetBytes();
    EXPECT_EQ(sum, 1'000'001u);
}

TEST(ServeFrontendDeathTest, BudgetSmallerThanShardCountIsFatal)
{
    FrontendConfig fc;
    fc.shards = 4;
    fc.memBudgetBytes = 3; // some shard would get a zero budget
    EXPECT_EXIT(ServeFrontend(testParams(), ServeConfig{}, kDim, fc),
                ::testing::ExitedWithCode(1), "memBudgetBytes");
}

TEST(ServeFrontendTest, PlacementPrefersLeastLoadedShard)
{
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    const Index heavy =
        frontend.createSession(tenant, sampleTokens(64, kDim, 110));
    const Index light = frontend.createSession(tenant);
    EXPECT_EQ(frontend.shardOf(heavy), 0);
    EXPECT_EQ(frontend.shardOf(light), 1);
    // An empty flush refreshes the placement load cache; shard 1 now
    // holds far fewer resident bytes, so new sessions go to it until
    // the next refresh evens the picture out.
    EXPECT_TRUE(frontend.flushOnce().empty());
    EXPECT_EQ(frontend.shardOf(frontend.createSession(tenant)), 1);
    EXPECT_EQ(frontend.shardOf(frontend.createSession(tenant)), 1);
    // A fork shares its parent's pages copy-on-write, so it lands on
    // the parent's shard regardless of load.
    EXPECT_EQ(frontend.shardOf(frontend.forkSession(heavy)), 0);
}

TEST(ServeFrontendTest, RetryAfterBacksOffExponentiallyAndResets)
{
    FrontendConfig fc;
    fc.shards = 1;
    fc.retryBaseSeconds = 0.5;
    fc.retryMaxSeconds = 1.0;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"capped", 1, 2});
    const Index s =
        frontend.createSession(tenant, sampleTokens(8, kDim, 115));
    const Matrix token = sampleTokens(1, kDim, 116);
    for (Index i = 0; i < 2; ++i)
        ASSERT_EQ(frontend.trySubmit(s, token.row(0)),
                  SubmitResult::Accepted);
    // Consecutive temporary rejections double the hint from the base
    // up to the cap.
    const auto first = frontend.admit(s, token.row(0));
    EXPECT_EQ(first.result, SubmitResult::QuotaExceeded);
    EXPECT_DOUBLE_EQ(first.retryAfterSeconds, 0.5);
    EXPECT_DOUBLE_EQ(frontend.admit(s, token.row(0)).retryAfterSeconds,
                     1.0);
    EXPECT_DOUBLE_EQ(frontend.admit(s, token.row(0)).retryAfterSeconds,
                     1.0); // capped at retryMaxSeconds
    // Draining re-opens admission; an acceptance resets the streak,
    // so the next rejection starts over at the base.
    EXPECT_EQ(frontend.flushOnce().size(), 2u);
    const auto accepted = frontend.admit(s, token.row(0));
    EXPECT_EQ(accepted.result, SubmitResult::Accepted);
    EXPECT_DOUBLE_EQ(accepted.retryAfterSeconds, 0.0);
    ASSERT_EQ(frontend.trySubmit(s, token.row(0)),
              SubmitResult::Accepted);
    const auto again = frontend.admit(s, token.row(0));
    EXPECT_EQ(again.result, SubmitResult::QuotaExceeded);
    EXPECT_DOUBLE_EQ(again.retryAfterSeconds, 0.5);
}

#ifndef CTA_FAULT_DISABLED
TEST(ServeFrontendTest, ForcedQueueDelayExpiryLeavesStreamsIntact)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 1;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index alpha = frontend.registerTenant({"alpha", 1, 16});
    const Index beta = frontend.registerTenant({"beta", 1, 16});
    const Matrix ctx_a = sampleTokens(8, kDim, 120);
    const Matrix ctx_b = sampleTokens(8, kDim, 121);
    const Index sa = frontend.createSession(alpha, ctx_a);
    const Index sb = frontend.createSession(beta, ctx_b);
    const Matrix steps = sampleTokens(4, kDim, 122);

    // Arm only the queue-delay site at rate 1: every dispatched step
    // is treated as having overstayed its deadline.
    cta::fault::FaultConfig injecting;
    injecting.seed = 11;
    injecting.rate = 1.0;
    injecting.sites =
        1u << static_cast<unsigned>(cta::fault::Site::QueueDelay);
    cta::fault::setConfig(injecting);
    for (Index i = 0; i < 2; ++i) {
        ASSERT_EQ(frontend.trySubmit(sa, steps.row(i)),
                  SubmitResult::Accepted);
        ASSERT_EQ(frontend.trySubmit(sb, steps.row(2 + i)),
                  SubmitResult::Accepted);
    }
    const auto expired = frontend.flushOnce();
    cta::fault::setConfig(cta::fault::FaultConfig{});
    ASSERT_EQ(expired.size(), 4u);
    for (const Completion &c : expired)
        EXPECT_EQ(c.status, StepStatus::Expired);
    // The forced expiries are charged to the right tenants...
    EXPECT_EQ(frontend.tenantCounters(alpha).expired, 2u);
    EXPECT_EQ(frontend.tenantCounters(beta).expired, 2u);
    EXPECT_EQ(frontend.tenantCounters(alpha).completed, 0u);
    EXPECT_EQ(frontend.tenantCounters(beta).completed, 0u);

    // ...and no expired step touched any stream: with the fault
    // disarmed the same steps complete bit-identically to reference
    // sessions that never saw the expired attempts.
    DecodeSession ref_a(params, ServeConfig{}, kDim);
    DecodeSession ref_b(params, ServeConfig{}, kDim);
    ref_a.prefill(ctx_a);
    ref_b.prefill(ctx_b);
    for (Index i = 0; i < 2; ++i) {
        ASSERT_EQ(frontend.trySubmit(sa, steps.row(i)),
                  SubmitResult::Accepted);
        ASSERT_EQ(frontend.trySubmit(sb, steps.row(2 + i)),
                  SubmitResult::Accepted);
    }
    const auto done = frontend.flushOnce();
    ASSERT_EQ(done.size(), 4u);
    Index seen_a = 0;
    Index seen_b = 0;
    for (const Completion &c : done) {
        ASSERT_EQ(c.status, StepStatus::Ok);
        const Matrix want =
            c.session == sa ? ref_a.step(steps.row(seen_a++))
                            : ref_b.step(steps.row(2 + seen_b++));
        EXPECT_TRUE(bitIdentical(c.output, want));
    }
    EXPECT_EQ(seen_a, 2);
    EXPECT_EQ(seen_b, 2);
}
#endif // CTA_FAULT_DISABLED

// ---- load generator ----------------------------------------------

TEST(LoadGenTest, TracesAreDeterministicAndSorted)
{
    cta::serve::LoadGenConfig lg;
    lg.sessions = 16;
    lg.ratePerSecond = 500;
    lg.burstFactor = 1.5;
    lg.durationSeconds = 2.0;
    lg.seed = 42;
    const auto a = cta::serve::generateArrivals(lg);
    const auto b = cta::serve::generateArrivals(lg);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].session, b[i].session);
        EXPECT_EQ(a[i].steps, b[i].steps);
        if (i > 0) {
            EXPECT_GE(a[i].time, a[i - 1].time);
        }
        EXPECT_GE(a[i].session, 0);
        EXPECT_LT(a[i].session, lg.sessions);
        EXPECT_GE(a[i].steps, lg.minSteps);
        EXPECT_LE(a[i].steps, lg.maxSteps);
        EXPECT_GE(a[i].time, 0.0);
        EXPECT_LT(a[i].time, lg.durationSeconds);
    }
    // The thinned process realizes roughly rate * duration arrivals.
    const double expected = lg.ratePerSecond * lg.durationSeconds;
    EXPECT_GT(static_cast<double>(a.size()), 0.7 * expected);
    EXPECT_LT(static_cast<double>(a.size()), 1.3 * expected);
}

TEST(LoadGenTest, ZipfSkewsTowardLowSlots)
{
    cta::serve::LoadGenConfig lg;
    lg.sessions = 32;
    lg.zipfExponent = 1.0;
    lg.ratePerSecond = 2000;
    lg.durationSeconds = 2.0;
    lg.seed = 7;
    const auto trace = cta::serve::generateArrivals(lg);
    std::vector<int> hits(static_cast<std::size_t>(lg.sessions), 0);
    for (const auto &a : trace)
        ++hits[static_cast<std::size_t>(a.session)];
    // Slot 0 must dominate the tail slot by a wide margin (the exact
    // Zipf ratio is 32:1; demand at least 4:1 to stay robust).
    EXPECT_GT(hits[0], 4 * std::max(hits.back(), 1));
}

TEST(LoadGenTest, MergeInterleavesSortedWithOffset)
{
    cta::serve::LoadGenConfig lg;
    lg.sessions = 4;
    lg.ratePerSecond = 300;
    lg.durationSeconds = 1.0;
    lg.seed = 8;
    const auto a = cta::serve::generateArrivals(lg);
    lg.seed = 9;
    const auto b = cta::serve::generateArrivals(lg);
    const auto merged = cta::serve::mergeArrivals(a, b, 4);
    ASSERT_EQ(merged.size(), a.size() + b.size());
    std::size_t fromB = 0;
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(merged[i].time, merged[i - 1].time);
        }
        if (merged[i].session >= 4)
            ++fromB;
    }
    EXPECT_EQ(fromB, b.size());
}

TEST(LoadGenDeathTest, RejectsOutOfRangeParameters)
{
    cta::serve::LoadGenConfig lg;
    lg.burstFactor = 3.0; // > 2 would drive the modulated rate negative
    EXPECT_EXIT(cta::serve::generateArrivals(lg),
                ::testing::ExitedWithCode(1), "burstFactor");
    lg.burstFactor = 1.0;
    lg.ratePerSecond = 0;
    EXPECT_EXIT(cta::serve::generateArrivals(lg),
                ::testing::ExitedWithCode(1), "ratePerSecond");
}

} // namespace

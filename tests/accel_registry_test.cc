/**
 * @file
 * Tests for the unified accelerator registry: name resolution,
 * descriptor validation at registration, the module-cycle drift
 * guard, per-instance run statistics, and — the load-bearing
 * property of the whole refactor — bit-identical outputs through
 * the registry seam vs invoking each wrapped model directly.
 */

#include <gtest/gtest.h>

#include "a3/a3_accel.h"
#include "accel_registry/registry.h"
#include "baseline/ideal_accel.h"
#include "core/rng.h"
#include "cta/config.h"
#include "cta_accel/accelerator.h"
#include "elsa/elsa_accel.h"
#include "gpu/gpu_model.h"
#include "leopard/leopard_accel.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;
using cta::sim::PerfReport;
using cta::sim::TechParams;

struct Fixture
{
    Matrix calib;
    Matrix eval;
    AttentionHeadParams head;

    explicit Fixture(Index n = 48)
        : head([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(64, 64, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = n;
        profile.tokenDim = 64;
        cta::nn::WorkloadGenerator gen(profile, 2);
        calib = gen.sampleTokens();
        eval = gen.sampleTokens();
    }
};

cta::reg::AccelOptions
smallOptions()
{
    cta::reg::AccelOptions options;
    options.maxSeqLen = 64;
    return options;
}

void
expectSameReport(const PerfReport &a, const PerfReport &b)
{
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.latency.tokenCompression, b.latency.tokenCompression);
    EXPECT_EQ(a.latency.linears, b.latency.linears);
    EXPECT_EQ(a.latency.attention, b.latency.attention);
    EXPECT_EQ(a.energy.memoryPj, b.energy.memoryPj);
    EXPECT_EQ(a.energy.computePj, b.energy.computePj);
    EXPECT_EQ(a.energy.auxiliaryPj, b.energy.auxiliaryPj);
    EXPECT_EQ(a.energy.staticPj, b.energy.staticPj);
    EXPECT_EQ(a.traffic.reads, b.traffic.reads);
    EXPECT_EQ(a.traffic.writes, b.traffic.writes);
    EXPECT_EQ(a.areaMm2, b.areaMm2);
    EXPECT_EQ(a.freqGhz, b.freqGhz);
}

void
expectSameMatrix(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (Index r = 0; r < a.rows(); ++r)
        for (Index c = 0; c < a.cols(); ++c)
            EXPECT_EQ(a(r, c), b(r, c))
                << "mismatch at (" << r << ", " << c << ")";
}

TEST(AccelRegistryTest, BuiltinsRegisteredAndSorted)
{
    const auto names = cta::reg::registeredNames();
    const std::vector<std::string> expected{"a3", "cta", "elsa",
                                            "gpu", "ideal",
                                            "leopard"};
    EXPECT_EQ(names, expected);
    for (const auto &name : expected)
        EXPECT_TRUE(cta::reg::isRegistered(name));
    EXPECT_FALSE(cta::reg::isRegistered("tpu"));
}

TEST(AccelRegistryTest, UnknownNameDiesListingKeys)
{
    EXPECT_DEATH(cta::reg::makeAccelerator("tpu"),
                 "unknown accelerator 'tpu'.*cta");
}

TEST(AccelRegistryTest, DuplicateRegistrationDies)
{
    EXPECT_DEATH(
        cta::reg::registerAccelerator(
            "cta",
            [](const cta::reg::AccelOptions &options) {
                return cta::reg::makeAccelerator("cta", options);
            }),
        "duplicate accelerator registration");
}

TEST(AccelRegistryTest, MalformedDescriptorDiesAtRegistration)
{
    class Broken final : public cta::reg::Accelerator
    {
      public:
        const cta::reg::AccelDescriptor &describe() const override
        {
            return desc_; // display empty, freqGhz defaulted
        }

      protected:
        cta::reg::RunResult
        doRun(const Matrix &, const Matrix &,
              const AttentionHeadParams &,
              const cta::reg::RunRequest &) const override
        {
            return {};
        }

      private:
        cta::reg::AccelDescriptor desc_{"broken", "", 1.0f, 0,
                                        false};
    };
    EXPECT_DEATH(cta::reg::registerAccelerator(
                     "broken",
                     [](const cta::reg::AccelOptions &) {
                         return std::unique_ptr<
                             cta::reg::Accelerator>(new Broken());
                     }),
                 "descriptor display is empty");
}

/** Every registered model: breakdown covers the total and stats
 *  accumulate. */
class EveryAccelTest
    : public ::testing::TestWithParam<std::string>
{
};

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryAccelTest,
    ::testing::ValuesIn(cta::reg::registeredNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST_P(EveryAccelTest, ModuleCyclesSumToTotalLatency)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator(GetParam(), smallOptions());
    cta::reg::RunRequest request;
    request.calibTokens = &fx.calib;
    const auto r = accel->run(fx.eval, fx.eval, fx.head, request);
    ASSERT_FALSE(r.moduleCycles.empty());
    cta::core::Cycles sum = 0;
    for (const auto &m : r.moduleCycles) {
        EXPECT_FALSE(m.module.empty());
        sum += m.cycles;
    }
    EXPECT_EQ(sum, r.report.latency.total());
    EXPECT_GT(r.report.latency.total(), 0u);
    EXPECT_EQ(r.output.rows(), fx.eval.rows());
}

TEST_P(EveryAccelTest, RegStatsAccumulateAcrossRuns)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator(GetParam(), smallOptions());
    cta::reg::RunRequest request;
    request.calibTokens = &fx.calib;
    const auto r = accel->run(fx.eval, fx.eval, fx.head, request);
    accel->run(fx.eval, fx.eval, fx.head, request);

    const auto stats = accel->regStats();
    EXPECT_EQ(stats.runs, 2u);
    EXPECT_EQ(stats.totalCycles, 2 * r.report.latency.total());
    ASSERT_EQ(stats.moduleCycles.size(), r.moduleCycles.size());
    for (std::size_t i = 0; i < stats.moduleCycles.size(); ++i) {
        EXPECT_EQ(stats.moduleCycles[i].module,
                  r.moduleCycles[i].module);
        EXPECT_EQ(stats.moduleCycles[i].cycles,
                  2 * r.moduleCycles[i].cycles);
    }

    accel->resetStats();
    EXPECT_EQ(accel->regStats().runs, 0u);
    EXPECT_TRUE(accel->regStats().moduleCycles.empty());
}

TEST_P(EveryAccelTest, DescriptorMatchesRegistryKey)
{
    const auto accel =
        cta::reg::makeAccelerator(GetParam(), smallOptions());
    const auto &desc = accel->describe();
    EXPECT_EQ(desc.name, GetParam());
    EXPECT_FALSE(desc.display.empty());
    EXPECT_GT(desc.freqGhz, 0.0f);
    EXPECT_GE(desc.areaMm2, 0.0);
}

// --- A/B: the registry seam must not change a single bit. ---

TEST(AccelRegistryAbTest, CtaMatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("cta", smallOptions());
    cta::reg::RunRequest request;
    request.quality = cta::reg::Quality::Moderate;
    request.platform = "CTA-0.5";
    request.calibTokens = &fx.calib;
    const auto via = accel->run(fx.eval, fx.eval, fx.head, request);

    cta::accel::HwConfig hw = cta::accel::HwConfig::paperDefault();
    hw.maxSeqLen = 64;
    const cta::accel::CtaAccelerator direct(
        hw, TechParams::smic40nmClass());
    const auto config = cta::alg::calibrate(
        fx.calib, fx.calib, cta::alg::Preset::Cta05, 6, /*seed=*/7);
    const auto ref = direct.run(fx.eval, fx.eval, fx.head, config,
                                "CTA-0.5");
    expectSameReport(via.report, ref.report);
    expectSameMatrix(via.output, ref.algorithm.output);
}

TEST(AccelRegistryAbTest, ElsaMatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("elsa", smallOptions());
    cta::reg::RunRequest request;
    request.quality = cta::reg::Quality::Aggressive;
    request.platform = "ELSA";
    const auto via = accel->run(fx.eval, fx.eval, fx.head, request);

    cta::elsa::ElsaHwConfig hw =
        cta::elsa::ElsaHwConfig::paperDefault();
    hw.maxSeqLen = 64;
    const cta::elsa::ElsaAccelerator direct(
        hw, TechParams::smic40nmClass());
    const auto ref = direct.run(
        fx.eval, fx.eval, fx.head,
        cta::elsa::ElsaConfig::fromPreset(
            cta::elsa::ElsaPreset::Aggressive),
        "ELSA");
    expectSameReport(via.report, ref.report);
    expectSameMatrix(via.output, ref.algorithm.output);
}

TEST(AccelRegistryAbTest, A3MatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("a3", smallOptions());
    cta::reg::RunRequest request;
    request.quality = cta::reg::Quality::Moderate;
    request.platform = "A3";
    const auto via = accel->run(fx.eval, fx.eval, fx.head, request);

    cta::a3::A3HwConfig hw = cta::a3::A3HwConfig::paperDefault();
    hw.maxSeqLen = 64;
    const cta::a3::A3Accelerator direct(hw,
                                        TechParams::smic40nmClass());
    cta::a3::A3Config config;
    config.searchRounds = fx.eval.rows();
    config.candidates = fx.eval.rows() / 4;
    const auto ref =
        direct.run(fx.eval, fx.eval, fx.head, config, "A3");
    expectSameReport(via.report, ref.report);
    expectSameMatrix(via.output, ref.algorithm.output);
}

TEST(AccelRegistryAbTest, LeopardMatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("leopard", smallOptions());
    cta::reg::RunRequest request;
    request.quality = cta::reg::Quality::Moderate;
    request.platform = "LeOPArd";
    request.calibTokens = &fx.calib;
    const auto via = accel->run(fx.eval, fx.eval, fx.head, request);

    cta::leopard::LeopardHwConfig hw =
        cta::leopard::LeopardHwConfig::paperDefault();
    hw.maxSeqLen = 64;
    const cta::leopard::LeopardAccelerator direct(
        hw, TechParams::smic40nmClass());
    const auto config =
        cta::leopard::calibrateLeopard(fx.calib, fx.head, 0.99f);
    const auto ref =
        direct.run(fx.eval, fx.eval, fx.head, config, "LeOPArd");
    expectSameReport(via.report, ref.report);
    expectSameMatrix(via.output, ref.algorithm.output);
}

TEST(AccelRegistryAbTest, GpuMatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("gpu", smallOptions());
    cta::reg::RunRequest request;
    request.platform = "V100";
    const auto via = accel->run(fx.eval, fx.eval, fx.head, request);

    const cta::gpu::GpuModel direct;
    const auto ref = direct.runExactHead(
        fx.eval.rows(), fx.eval.rows(), fx.eval.cols(),
        fx.head.wq.outDim(), "V100");
    expectSameReport(via.report, ref);
}

TEST(AccelRegistryAbTest, IdealMatchesDirectInvocation)
{
    const Fixture fx;
    const auto accel =
        cta::reg::makeAccelerator("ideal", smallOptions());
    const auto via =
        accel->run(fx.eval, fx.eval, fx.head, {});

    const cta::baseline::IdealAccelerator direct(
        cta::accel::HwConfig::paperDefault().multiplierCount());
    const auto ref = direct.run(
        fx.eval.rows(), fx.eval.rows(), fx.eval.cols(),
        fx.head.wq.outDim(), "Ideal");
    // The registry defaults the platform to the descriptor name.
    EXPECT_EQ(via.report.platform, "ideal");
    EXPECT_EQ(via.report.latency.linears, ref.latency.linears);
    EXPECT_EQ(via.report.latency.attention, ref.latency.attention);
    EXPECT_EQ(via.report.freqGhz, ref.freqGhz);
}

} // namespace

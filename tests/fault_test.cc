/**
 * @file
 * Tests for the fault-injection library: stateless content-keyed
 * determinism, rate-0 and rate-1 limits, site masking, injection
 * accounting (per-site, per-thread), the analytic faulty-word count,
 * and the strict env contract of CTA_FAULT_SEED / CTA_FAULT_RATE /
 * CTA_FAULT_SITES.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "fault/fault.h"

namespace {

namespace fault = cta::fault;
using fault::FaultConfig;
using fault::Site;

/** Restores the process fault configuration on scope exit so tests
 *  cannot leak an armed config into each other. */
struct ConfigGuard
{
    FaultConfig saved = fault::config();
    ~ConfigGuard() { fault::setConfig(saved); }
};

unsigned
siteBit(Site site)
{
    return 1u << static_cast<unsigned>(site);
}

TEST(FaultTest, RateZeroIsFullyDisarmed)
{
    ConfigGuard guard;
    fault::setConfig({/*seed=*/7, /*rate=*/0.0, fault::kAllSites});
    const std::uint64_t before = fault::totalInjections();

    for (unsigned s = 0; s < fault::kSiteCount; ++s) {
        EXPECT_FALSE(fault::armed(static_cast<Site>(s)));
        EXPECT_FALSE(fault::inject(static_cast<Site>(s), 12345u + s));
    }
    std::int32_t value = 42;
    EXPECT_FALSE(fault::flipInt32Bit(Site::CimOperand, 1, value));
    EXPECT_EQ(value, 42);
    std::int32_t bucket = 5;
    EXPECT_FALSE(fault::perturbBucket(Site::LshBucket, 2, bucket));
    EXPECT_EQ(bucket, 5);
    std::vector<std::uint8_t> blob(16, 0xCD);
    EXPECT_FALSE(fault::corruptBlob(Site::SnapshotBlob, 3, blob));
    EXPECT_EQ(blob, std::vector<std::uint8_t>(16, 0xCD));
    EXPECT_EQ(fault::faultyWords(Site::SramWord, 4, 1000), 0u);

    EXPECT_EQ(fault::totalInjections(), before);
}

TEST(FaultTest, RateOneAlwaysFiresAndCorrupts)
{
    ConfigGuard guard;
    fault::setConfig({/*seed=*/11, /*rate=*/1.0, fault::kAllSites});

    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_TRUE(fault::inject(Site::QueueDelay, key));

    std::int32_t value = 42;
    EXPECT_TRUE(fault::flipInt32Bit(Site::CimOperand, 9, value));
    EXPECT_NE(value, 42); // exactly one bit differs
    std::int32_t delta = value ^ 42;
    EXPECT_EQ(delta & (delta - 1), 0);

    std::int32_t bucket = 100;
    EXPECT_TRUE(fault::perturbBucket(Site::LshBucket, 9, bucket));
    EXPECT_TRUE(bucket == 99 || bucket == 101);

    const std::vector<std::uint8_t> original(24, 0x5A);
    std::vector<std::uint8_t> blob = original;
    EXPECT_TRUE(fault::corruptBlob(Site::SnapshotBlob, 9, blob));
    EXPECT_TRUE(blob != original); // flipped byte or truncated tail

    std::vector<std::uint8_t> empty;
    EXPECT_FALSE(fault::corruptBlob(Site::SnapshotBlob, 10, empty));

    EXPECT_EQ(fault::faultyWords(Site::SramWord, 9, 1000), 1000u);
}

TEST(FaultTest, DecisionsAreAPureFunctionOfSeedSiteKey)
{
    ConfigGuard guard;
    const FaultConfig config{/*seed=*/99, /*rate=*/0.3,
                             fault::kAllSites};

    const auto sample = [](std::vector<bool> *out) {
        out->clear();
        for (std::uint64_t key = 0; key < 512; ++key)
            out->push_back(fault::inject(Site::LshBucket, key));
    };
    std::vector<bool> first, second;
    fault::setConfig(config);
    sample(&first);
    sample(&second); // no hidden draw counter: rerun == first run
    EXPECT_EQ(first, second);

    // mix() itself is pure.
    EXPECT_EQ(fault::mix(Site::SramWord, 77),
              fault::mix(Site::SramWord, 77));
    EXPECT_NE(fault::mix(Site::SramWord, 77),
              fault::mix(Site::CimOperand, 77));

    // A different seed reshapes the fault set.
    fault::setConfig({/*seed=*/100, /*rate=*/0.3, fault::kAllSites});
    std::vector<bool> reseeded;
    sample(&reseeded);
    EXPECT_NE(first, reseeded);

    // The rate is roughly honoured (pure smoke bound, not a
    // statistical test).
    const auto fired = static_cast<std::size_t>(
        std::count(first.begin(), first.end(), true));
    EXPECT_GT(fired, 512u / 10);
    EXPECT_LT(fired, 512u / 2);
}

TEST(FaultTest, SiteMaskGatesInjection)
{
    ConfigGuard guard;
    fault::setConfig(
        {/*seed=*/3, /*rate=*/1.0, siteBit(Site::SnapshotBlob)});
    EXPECT_TRUE(fault::armed(Site::SnapshotBlob));
    EXPECT_TRUE(fault::inject(Site::SnapshotBlob, 1));
    for (unsigned s = 0; s < fault::kSiteCount; ++s) {
        const auto site = static_cast<Site>(s);
        if (site == Site::SnapshotBlob)
            continue;
        EXPECT_FALSE(fault::armed(site)) << fault::siteName(site);
        EXPECT_FALSE(fault::inject(site, 1)) << fault::siteName(site);
    }
}

TEST(FaultTest, CountersRecordPerSiteAndPerThread)
{
    ConfigGuard guard;
    fault::setConfig({/*seed=*/5, /*rate=*/1.0, fault::kAllSites});
    fault::resetInjectionCounters();

    const std::uint64_t threadBefore = fault::threadInjections();
    for (std::uint64_t key = 0; key < 5; ++key)
        EXPECT_TRUE(fault::inject(Site::LshBucket, key));
    EXPECT_EQ(fault::totalInjections(Site::LshBucket), 5u);
    EXPECT_EQ(fault::totalInjections(Site::QueueDelay), 0u);
    EXPECT_EQ(fault::totalInjections(), 5u);
    EXPECT_EQ(fault::threadInjections(), threadBefore + 5);

    fault::resetInjectionCounters();
    EXPECT_EQ(fault::totalInjections(), 0u);
}

TEST(FaultTest, FaultyWordsMatchesTheAnalyticCount)
{
    ConfigGuard guard;
    fault::setConfig({/*seed=*/17, /*rate=*/0.5, fault::kAllSites});
    // floor(101 * 0.5) = 50 plus at most one fractional extra.
    const std::uint64_t n =
        fault::faultyWords(Site::SramWord, 21, 101);
    EXPECT_GE(n, 50u);
    EXPECT_LE(n, 51u);
    // Deterministic in the key.
    EXPECT_EQ(n, fault::faultyWords(Site::SramWord, 21, 101));
    EXPECT_EQ(fault::faultyWords(Site::SramWord, 21, 0), 0u);
}

TEST(FaultTest, ConfigFromEnvParsesKnobsStrictly)
{
    ::setenv("CTA_FAULT_SEED", "42", 1);
    ::setenv("CTA_FAULT_RATE", "0.25", 1);
    ::setenv("CTA_FAULT_SITES", "lsh,snapshot", 1);
    const FaultConfig config = fault::configFromEnv();
    EXPECT_EQ(config.seed, 42u);
    EXPECT_DOUBLE_EQ(config.rate, 0.25);
    EXPECT_EQ(config.sites,
              siteBit(Site::LshBucket) | siteBit(Site::SnapshotBlob));

    ::setenv("CTA_FAULT_SITES", "none", 1);
    EXPECT_EQ(fault::configFromEnv().sites, 0u);
    ::setenv("CTA_FAULT_SITES", "all", 1);
    EXPECT_EQ(fault::configFromEnv().sites, fault::kAllSites);

    ::unsetenv("CTA_FAULT_SEED");
    ::unsetenv("CTA_FAULT_RATE");
    ::unsetenv("CTA_FAULT_SITES");
    const FaultConfig defaults = fault::configFromEnv();
    EXPECT_EQ(defaults.seed, 0u);
    EXPECT_DOUBLE_EQ(defaults.rate, 0.0);
    EXPECT_EQ(defaults.sites, fault::kAllSites);
}

TEST(FaultDeathTest, MalformedEnvKnobsAreFatal)
{
    ::setenv("CTA_FAULT_RATE", "1.5", 1);
    EXPECT_DEATH(fault::configFromEnv(), "");
    ::setenv("CTA_FAULT_RATE", "lots", 1);
    EXPECT_DEATH(fault::configFromEnv(), "");
    ::unsetenv("CTA_FAULT_RATE");

    ::setenv("CTA_FAULT_SITES", "sram,bogus", 1);
    EXPECT_DEATH(fault::configFromEnv(), "");
    ::unsetenv("CTA_FAULT_SITES");
}

} // namespace

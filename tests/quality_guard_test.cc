/**
 * @file
 * Tests for the per-session quality guard and the corruption
 * quarantine path (DESIGN.md §4.5): a degenerate stream demotes the
 * session to exact attention with finite outputs and exactly one
 * "serve.fallback" bump, fallback sessions are pinned against
 * eviction, non-finite input tokens are sanitized, and — with the
 * fault layer armed — a corrupted snapshot quarantines only its own
 * session while the Batcher reports Corrupted instead of crashing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/rng.h"
#include "cta/error.h"
#include "fault/fault.h"
#include "nn/workload.h"
#include "obs/metrics.h"
#include "serve/batcher.h"
#include "serve/session_manager.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::serve::Batcher;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;
using cta::serve::SessionManager;
using cta::serve::StepStatus;
using cta::serve::SubmitResult;

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

cta::nn::AttentionHeadParams
headParams(std::uint64_t seed = 2)
{
    Rng rng(seed);
    return cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim,
                                                    rng);
}

/** n copies of one fixed token: every level-1 hash lands in the same
 *  bucket and every frozen residual is exactly zero, so the
 *  compression collapses to k1 == k2 == 1 — the guard's
 *  collapsed-cluster trigger. */
Matrix
identicalTokens(Index n)
{
    Matrix tokens(n, kDim);
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < kDim; ++j)
            tokens(i, j) = 0.1f * static_cast<Real>(j) - 0.3f;
    return tokens;
}

Matrix
variedTokens(Index n, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = kDim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

ServeConfig
guardedConfig(Index min_context = 4)
{
    ServeConfig config;
    config.guardMinContext = min_context;
    return config;
}

TEST(QualityGuardTest, CollapsedClustersFallBackFinitelyCountedOnce)
{
    DecodeSession session(headParams(), guardedConfig(), kDim);
    session.prefill(identicalTokens(8));
    ASSERT_FALSE(session.fallbackActive());

    const std::uint64_t before =
        cta::obs::counter("serve.fallback").value();
    const Matrix token = identicalTokens(1);

    const Matrix out1 = session.step(token.row(0));
    EXPECT_TRUE(session.fallbackActive());
    EXPECT_STRNE(session.fallbackReason(), "");
    ASSERT_EQ(out1.rows(), 1);
    ASSERT_EQ(out1.cols(), kHeadDim);
    EXPECT_TRUE(cta::alg::allFinite(out1));
    EXPECT_EQ(cta::obs::counter("serve.fallback").value(),
              before + 1);

    // Fallback is sticky and the counter bumps exactly once per
    // session, not once per step.
    const Matrix out2 = session.step(token.row(0));
    EXPECT_TRUE(session.fallbackActive());
    EXPECT_TRUE(cta::alg::allFinite(out2));
    EXPECT_EQ(cta::obs::counter("serve.fallback").value(),
              before + 1);
    EXPECT_EQ(session.contextLength(), 10);
}

TEST(QualityGuardTest, GuardOffLeavesTheCompressedPathAlone)
{
    ServeConfig config = guardedConfig();
    config.qualityGuard = false;
    DecodeSession session(headParams(), config, kDim);
    session.prefill(identicalTokens(8));
    const Matrix token = identicalTokens(1);
    const Matrix out = session.step(token.row(0));
    EXPECT_FALSE(session.fallbackActive());
    EXPECT_TRUE(cta::alg::allFinite(out));
}

TEST(QualityGuardTest, HealthyStreamNeverTripsTheGuard)
{
    DecodeSession session(headParams(), ServeConfig{}, kDim);
    session.prefill(variedTokens(24, 5));
    const Matrix decode = variedTokens(4, 6);
    for (Index i = 0; i < decode.rows(); ++i) {
        const Matrix out = session.step(decode.row(i));
        EXPECT_TRUE(cta::alg::allFinite(out));
    }
    EXPECT_FALSE(session.fallbackActive());
    EXPECT_STREQ(session.fallbackReason(), "");
}

TEST(QualityGuardTest, NonFiniteTokensAreSanitized)
{
    DecodeSession session(headParams(), ServeConfig{}, kDim);
    Matrix prefill = variedTokens(12, 7);
    prefill(3, 1) = std::numeric_limits<Real>::quiet_NaN();
    prefill(5, 0) = std::numeric_limits<Real>::infinity();
    session.prefill(prefill); // must not poison the centroids

    Matrix token = variedTokens(1, 8);
    token(0, 2) = -std::numeric_limits<Real>::infinity();
    const Matrix out = session.step(token.row(0));
    EXPECT_TRUE(cta::alg::allFinite(out));
}

TEST(QualityGuardTest, FallbackSessionIsPinnedAgainstEviction)
{
    SessionManager manager(headParams(), guardedConfig(), kDim,
                           /*mem_budget_bytes=*/0);
    const Index pinned = manager.createSession(identicalTokens(8));
    const Index other = manager.createSession(variedTokens(12, 9));

    const Matrix token = identicalTokens(1);
    manager.acquire(pinned).step(token.row(0));
    ASSERT_TRUE(manager.acquire(pinned).fallbackActive());

    // evict() must be a no-op for the fallback session (its exact K/V
    // caches are not serializable) while others still evict.
    manager.evict(pinned);
    EXPECT_TRUE(manager.isLive(pinned));
    manager.evict(other);
    EXPECT_TRUE(manager.isEvicted(other));
    EXPECT_EQ(manager.stats().evictions, 1u);

    // The pinned session keeps serving.
    const Matrix out = manager.acquire(pinned).step(token.row(0));
    EXPECT_TRUE(cta::alg::allFinite(out));
}

#ifndef CTA_FAULT_DISABLED

/** Restores the process fault configuration on scope exit. */
struct FaultConfigGuard
{
    cta::fault::FaultConfig saved = cta::fault::config();
    ~FaultConfigGuard() { cta::fault::setConfig(saved); }
};

unsigned
siteBit(cta::fault::Site site)
{
    return 1u << static_cast<unsigned>(site);
}

TEST(QualityGuardTest, CorruptSnapshotQuarantinesOnlyThatSession)
{
    FaultConfigGuard guard;
    cta::fault::setConfig(
        {/*seed=*/1, /*rate=*/1.0,
         siteBit(cta::fault::Site::SnapshotBlob)});

    SessionManager manager(headParams(), ServeConfig{}, kDim,
                           /*mem_budget_bytes=*/0);
    const Index doomed = manager.createSession(variedTokens(12, 20));
    const Index healthy = manager.createSession(variedTokens(12, 21));

    manager.evict(doomed); // rate 1.0: the blob is corrupted
    ASSERT_EQ(manager.stats().corruptionsInjected, 1u);

    EXPECT_EQ(manager.tryAcquire(doomed), nullptr);
    EXPECT_TRUE(manager.isQuarantined(doomed));
    EXPECT_EQ(manager.tryAcquire(doomed), nullptr); // stays gone

    const auto stats = manager.stats();
    EXPECT_EQ(stats.quarantined, 1);
    EXPECT_EQ(stats.corruptionsDetected, 1u);
    EXPECT_EQ(stats.corruptionsSilent, 0u);

    // The other session is untouched and keeps serving.
    const Matrix token = variedTokens(1, 22);
    DecodeSession *alive = manager.tryAcquire(healthy);
    ASSERT_NE(alive, nullptr);
    EXPECT_TRUE(cta::alg::allFinite(alive->step(token.row(0))));

    // A quarantined id can still be removed cleanly.
    manager.removeSession(doomed);
    EXPECT_FALSE(manager.exists(doomed));
}

TEST(QualityGuardTest, BatcherDegradesQuarantinedSessionsToCorrupted)
{
    FaultConfigGuard guard;
    cta::fault::setConfig(
        {/*seed=*/2, /*rate=*/1.0,
         siteBit(cta::fault::Site::SnapshotBlob)});

    SessionManager manager(headParams(), ServeConfig{}, kDim,
                           /*mem_budget_bytes=*/0);
    Batcher batcher(manager);
    const Index doomed = manager.createSession(variedTokens(12, 30));
    const Index healthy = manager.createSession(variedTokens(12, 31));
    manager.evict(doomed);

    const Matrix tokens = variedTokens(2, 32);
    ASSERT_EQ(batcher.trySubmit(doomed, tokens.row(0)),
              SubmitResult::Accepted); // evicted, not yet quarantined
    ASSERT_EQ(batcher.trySubmit(healthy, tokens.row(1)),
              SubmitResult::Accepted);

    const auto results = batcher.flush();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, StepStatus::Corrupted);
    EXPECT_EQ(results[0].output.size(), 0);
    EXPECT_EQ(results[1].status, StepStatus::Ok);
    EXPECT_TRUE(cta::alg::allFinite(results[1].output));
    EXPECT_EQ(batcher.corruptedSteps(), 1u);

    // Later submits against the quarantined id are refused up front.
    EXPECT_EQ(batcher.trySubmit(doomed, tokens.row(0)),
              SubmitResult::Corrupted);
    EXPECT_EQ(batcher.trySubmit(healthy, tokens.row(1)),
              SubmitResult::Accepted);
    const auto again = batcher.flush();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].status, StepStatus::Ok);
}

TEST(QualityGuardTest, InjectionsInsideAStepTaintTheSession)
{
    FaultConfigGuard guard;
    cta::fault::setConfig(
        {/*seed=*/3, /*rate=*/1.0,
         siteBit(cta::fault::Site::LshBucket)});

    SessionManager manager(headParams(), ServeConfig{}, kDim,
                           /*mem_budget_bytes=*/0);
    const Index id = manager.createSession();
    EXPECT_FALSE(manager.isFaultTainted(id));
    manager.acquire(id).prefill(variedTokens(8, 40));
    EXPECT_TRUE(manager.isFaultTainted(id));

    // Taint survives an evict/restore round trip (sticky per slot).
    manager.evict(id);
    cta::fault::setConfig({/*seed=*/3, /*rate=*/0.0, 0});
    ASSERT_NE(manager.tryAcquire(id), nullptr);
    EXPECT_TRUE(manager.isFaultTainted(id));
}

TEST(QualityGuardDeathTest, AcquireOnQuarantinedSessionIsFatal)
{
    FaultConfigGuard guard;
    cta::fault::setConfig(
        {/*seed=*/4, /*rate=*/1.0,
         siteBit(cta::fault::Site::SnapshotBlob)});
    SessionManager manager(headParams(), ServeConfig{}, kDim,
                           /*mem_budget_bytes=*/0);
    const Index id = manager.createSession(variedTokens(12, 50));
    manager.evict(id);
    ASSERT_EQ(manager.tryAcquire(id), nullptr);
    EXPECT_DEATH(manager.acquire(id), "");
}

#endif // CTA_FAULT_DISABLED

} // namespace

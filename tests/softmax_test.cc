/**
 * @file
 * Unit tests for the row-wise softmax and its un-normalized form.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/matrix.h"
#include "core/op_counter.h"
#include "core/rng.h"
#include "nn/softmax.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Real;
using cta::core::Rng;

TEST(SoftmaxTest, RowsSumToOne)
{
    Rng rng(1);
    const Matrix s = Matrix::randomNormal(5, 9, rng, 0, 3);
    const Matrix p = cta::nn::rowSoftmax(s);
    for (Index i = 0; i < p.rows(); ++i) {
        Real sum = 0;
        for (Index j = 0; j < p.cols(); ++j) {
            sum += p(i, j);
            EXPECT_GT(p(i, j), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(SoftmaxTest, UniformInputGivesUniformOutput)
{
    const Matrix s(2, 4, 3.0f);
    const Matrix p = cta::nn::rowSoftmax(s);
    for (Index i = 0; i < 2; ++i)
        for (Index j = 0; j < 4; ++j)
            EXPECT_NEAR(p(i, j), 0.25f, 1e-6f);
}

TEST(SoftmaxTest, ShiftInvariance)
{
    Rng rng(2);
    const Matrix s = Matrix::randomNormal(3, 6, rng);
    Matrix shifted = s;
    for (Index i = 0; i < s.size(); ++i)
        shifted.data()[i] += 100.0f;
    EXPECT_LT(maxAbsDiff(cta::nn::rowSoftmax(s),
                         cta::nn::rowSoftmax(shifted)),
              1e-5f);
}

TEST(SoftmaxTest, StableForLargeScores)
{
    Matrix s(1, 3);
    s(0, 0) = 500.0f;
    s(0, 1) = 400.0f;
    s(0, 2) = 300.0f;
    const Matrix p = cta::nn::rowSoftmax(s);
    EXPECT_TRUE(std::isfinite(p(0, 0)));
    EXPECT_NEAR(p(0, 0), 1.0f, 1e-5f);
}

TEST(SoftmaxTest, RowExpReturnsDenominators)
{
    Rng rng(3);
    const Matrix s = Matrix::randomNormal(4, 5, rng);
    Matrix sums;
    const Matrix e = cta::nn::rowExp(s, sums);
    ASSERT_EQ(sums.rows(), 4);
    for (Index i = 0; i < 4; ++i) {
        Real acc = 0;
        for (Index j = 0; j < 5; ++j)
            acc += e(i, j);
        EXPECT_NEAR(acc, sums(i, 0), 1e-4f);
    }
}

TEST(SoftmaxDeathTest, RowExpRejectsEmptyRows)
{
    // Regression: rowExp() used to run max_element over an empty row
    // (UB) when called directly with cols() == 0; the guard lived
    // only in rowSoftmax().
    const Matrix s(3, 0);
    Matrix sums;
    EXPECT_EXIT(cta::nn::rowExp(s, sums),
                ::testing::ExitedWithCode(1),
                "softmax over empty rows");
}

TEST(SoftmaxDeathTest, RowSoftmaxRejectsEmptyRows)
{
    const Matrix s(2, 0);
    EXPECT_EXIT(cta::nn::rowSoftmax(s), ::testing::ExitedWithCode(1),
                "softmax over empty rows");
}

TEST(SoftmaxTest, OpAccountingMatchesFormula)
{
    Rng rng(4);
    const Matrix s = Matrix::randomNormal(3, 7, rng);
    OpCounts ops;
    cta::nn::rowSoftmax(s, &ops);
    const std::uint64_t cells = 21, rows = 3;
    EXPECT_EQ(ops.exps, cells);
    EXPECT_EQ(ops.cmps, cells - rows);
    EXPECT_EQ(ops.divs, rows);
}

TEST(SoftmaxTest, FullyMaskedRowYieldsZerosNotNaN)
{
    // Regression: a row of all -inf (every key masked) produced
    // exp(-inf - (-inf)) = exp(nan) and a 0/0 normalization — NaNs
    // that then poisoned every downstream matmul. The defined
    // semantics is an all-zero output row ("attend to nothing").
    constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();
    Rng rng(5);
    Matrix s = Matrix::randomNormal(4, 6, rng);
    for (Index j = 0; j < s.cols(); ++j) {
        s(1, j) = kNegInf;
        s(3, j) = kNegInf;
    }

    Matrix sums;
    const Matrix e = cta::nn::rowExp(s, sums);
    const Matrix p = cta::nn::rowSoftmax(s);
    for (Index i : {Index{1}, Index{3}}) {
        EXPECT_EQ(sums(i, 0), 0.0f);
        for (Index j = 0; j < s.cols(); ++j) {
            EXPECT_EQ(e(i, j), 0.0f) << "row " << i << " col " << j;
            EXPECT_EQ(p(i, j), 0.0f) << "row " << i << " col " << j;
        }
    }
    // Live rows are untouched by the guard: finite and normalized.
    for (Index i : {Index{0}, Index{2}}) {
        Real sum = 0;
        for (Index j = 0; j < s.cols(); ++j) {
            ASSERT_TRUE(std::isfinite(p(i, j)));
            sum += p(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(SoftmaxTest, AllRowsMaskedIsStillWellDefined)
{
    constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();
    const Matrix s(3, 5, kNegInf);
    const Matrix p = cta::nn::rowSoftmax(s);
    for (Index i = 0; i < p.rows(); ++i)
        for (Index j = 0; j < p.cols(); ++j)
            EXPECT_EQ(p(i, j), 0.0f);
}

TEST(SoftmaxTest, MaskedRowsChargeOnlyTheirMaxScan)
{
    // A masked row still pays its row-max scan (cols - 1 cmps) but no
    // exps, adds, divs or muls; live rows charge the full formula.
    constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();
    Rng rng(6);
    Matrix s = Matrix::randomNormal(4, 7, rng);
    for (Index j = 0; j < s.cols(); ++j)
        s(2, j) = kNegInf;

    OpCounts ops;
    cta::nn::rowSoftmax(s, &ops);
    const std::uint64_t rows = 4, cols = 7, live_rows = 3;
    EXPECT_EQ(ops.cmps, rows * (cols - 1));
    EXPECT_EQ(ops.exps, live_rows * cols);
    EXPECT_EQ(ops.divs, live_rows);
    EXPECT_EQ(ops.muls, live_rows * cols);
}

TEST(SoftmaxTest, PartiallyMaskedRowIsUntouchedByTheGuard)
{
    // -inf entries inside an otherwise live row flow through the
    // ordinary path: exp(-inf - max) == 0 exactly, and the rest of
    // the row normalizes over the survivors.
    constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();
    Matrix s(1, 4, 1.0f);
    s(0, 1) = kNegInf;
    s(0, 3) = kNegInf;
    const Matrix p = cta::nn::rowSoftmax(s);
    EXPECT_EQ(p(0, 1), 0.0f);
    EXPECT_EQ(p(0, 3), 0.0f);
    EXPECT_NEAR(p(0, 0), 0.5f, 1e-6f);
    EXPECT_NEAR(p(0, 2), 0.5f, 1e-6f);
}

} // namespace

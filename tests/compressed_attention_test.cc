/**
 * @file
 * Unit and property tests for the full CTA scheme: exactness in the
 * lossless limit, approximation quality on clustered workloads, the
 * probability-aggregation identity, row-max invariance, and shape
 * contracts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "cta/config.h"
#include "cta/error.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::alg::CtaResult;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;

/** Clustered self-attention workload shared by the tests. */
struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    explicit Fixture(Index n = 256, Index dw = 32, Index d = 16,
                     Real noise = 0.02f, std::uint64_t seed = 1)
        : params([&] {
              Rng rng(seed);
              return AttentionHeadParams::randomInit(dw, d, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = n;
        profile.tokenDim = dw;
        profile.coarseClusters = 12;
        profile.fineClusters = 8;
        profile.noiseScale = noise;
        cta::nn::WorkloadGenerator gen(profile, seed + 100);
        tokens = gen.sampleTokens();
    }
};

TEST(CtaAttentionTest, OutputShapeMatchesExact)
{
    Fixture fx;
    CtaConfig config;
    const CtaResult result =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    EXPECT_EQ(result.output.rows(), fx.tokens.rows());
    EXPECT_EQ(result.output.cols(), 16);
}

TEST(CtaAttentionTest, LosslessLimitReproducesExactAttention)
{
    // With tiny buckets every token is a singleton cluster and CTA
    // degenerates to exact attention (k0 = m, k1 = n, k2 <= n).
    Fixture fx(96, 16, 8);
    CtaConfig config;
    config.w0 = config.w1 = config.w2 = 1e-4f;
    const CtaResult result =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    EXPECT_EQ(result.stats.k0, 96);
    EXPECT_EQ(result.stats.k1, 96);
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    EXPECT_LT(relativeError(result.output, exact), 1e-3f);
}

TEST(CtaAttentionTest, ClusteredWorkloadHighFidelity)
{
    Fixture fx(256, 32, 16, 0.02f);
    CtaConfig config;
    config.w0 = 0.5f;
    config.w1 = 0.5f;
    config.w2 = 0.25f;
    const CtaResult result =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const auto err = cta::alg::compareOutputs(result.output, exact);
    EXPECT_GT(err.meanCosine, 0.98f);
    EXPECT_LT(err.relativeFrobenius, 0.15f);
    // And it must actually compress.
    EXPECT_LT(result.stats.k0, 256);
    EXPECT_LT(result.stats.k1 + result.stats.k2, 2 * 256);
}

TEST(CtaAttentionTest, RowMaxSubtractionIsOutputInvariant)
{
    Fixture fx(128, 16, 8);
    CtaConfig with_max, without_max;
    with_max.subtractRowMax = true;
    without_max.subtractRowMax = false;
    const CtaResult a =
        ctaAttention(fx.tokens, fx.tokens, fx.params, with_max);
    const CtaResult b =
        ctaAttention(fx.tokens, fx.tokens, fx.params, without_max);
    EXPECT_LT(relativeError(a.output, b.output), 1e-3f)
        << "PPE max subtraction must cancel in normalization";
}

TEST(CtaAttentionTest, ApRowSumsAreTwiceProbabilityMass)
{
    // Each token contributes exp(s1+s2) twice per AP row, so the row
    // sum equals 2 * sum_j p_j (the basis of the half-sum division).
    Fixture fx(64, 16, 8);
    CtaConfig config;
    config.subtractRowMax = false;
    const CtaResult r =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    const auto &inter = r.inter;
    const Index k1 = r.stats.k1;
    for (Index i = 0; i < r.stats.k0; ++i) {
        double direct = 0;
        for (Index j = 0; j < 64; ++j) {
            const Index c1 =
                inter.kvComp.level1.table[static_cast<std::size_t>(j)];
            const Index c2 = k1 +
                inter.kvComp.level2.table[static_cast<std::size_t>(j)];
            direct += std::exp(inter.sBar(i, c1) + inter.sBar(i, c2));
        }
        EXPECT_NEAR(inter.apRowSums(i, 0), 2.0 * direct,
                    2e-3 * std::abs(2.0 * direct) + 1e-6);
    }
}

TEST(CtaAttentionTest, OutputConstantWithinQueryCluster)
{
    Fixture fx(128, 16, 8);
    CtaConfig config;
    const CtaResult r =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    const auto &ct0 = r.inter.queryComp.table;
    for (Index i = 0; i < 128; ++i) {
        for (Index j = i + 1; j < 128; ++j) {
            if (ct0[static_cast<std::size_t>(i)] ==
                ct0[static_cast<std::size_t>(j)]) {
                for (Index c = 0; c < 8; ++c)
                    EXPECT_FLOAT_EQ(r.output(i, c), r.output(j, c));
            }
        }
    }
}

TEST(CtaAttentionTest, StatsShapesConsistent)
{
    Fixture fx(100, 16, 8);
    const CtaResult r =
        ctaAttention(fx.tokens, fx.tokens, fx.params, CtaConfig{});
    EXPECT_EQ(r.stats.m, 100);
    EXPECT_EQ(r.stats.n, 100);
    EXPECT_EQ(r.stats.k0, r.inter.qBar.rows());
    EXPECT_EQ(r.stats.k1 + r.stats.k2, r.inter.kBar.rows());
    EXPECT_EQ(r.inter.sBar.rows(), r.stats.k0);
    EXPECT_EQ(r.inter.sBar.cols(), r.stats.k1 + r.stats.k2);
    EXPECT_EQ(r.inter.ap.rows(), r.stats.k0);
}

TEST(CtaAttentionTest, MoreNoiseMoreClusters)
{
    CtaConfig config;
    Fixture clean(256, 32, 16, 0.01f, 5);
    Fixture noisy(256, 32, 16, 0.6f, 5);
    const auto r_clean =
        ctaAttention(clean.tokens, clean.tokens, clean.params, config);
    const auto r_noisy =
        ctaAttention(noisy.tokens, noisy.tokens, noisy.params, config);
    EXPECT_LT(r_clean.stats.k0, r_noisy.stats.k0);
}

TEST(CtaAttentionTest, CrossAttentionSupported)
{
    Rng rng(20);
    const auto params = AttentionHeadParams::randomInit(16, 8, rng);
    const Matrix xq = Matrix::randomNormal(40, 16, rng, 0, 0.3f);
    const Matrix xkv = Matrix::randomNormal(70, 16, rng, 0, 0.3f);
    const CtaResult r = ctaAttention(xq, xkv, params, CtaConfig{});
    EXPECT_EQ(r.output.rows(), 40);
    EXPECT_EQ(r.stats.m, 40);
    EXPECT_EQ(r.stats.n, 70);
}

TEST(AggregateProbabilitiesTest, MatchesHandComputation)
{
    // k0 = 1, k1 = 2, k2 = 1, n = 2 hand-checkable example.
    Matrix s_bar(1, 3);
    s_bar(0, 0) = 0.1f; // level-1 cluster 0
    s_bar(0, 1) = 0.2f; // level-1 cluster 1
    s_bar(0, 2) = 0.3f; // level-2 cluster 0 (column k1+0)
    const std::vector<Index> ct1{0, 1};
    const std::vector<Index> ct2{0, 0};
    Matrix ap, sums;
    cta::alg::aggregateProbabilities(s_bar, ct1, ct2, 2, ap, sums);
    const Real p0 = std::exp(0.1f + 0.3f);
    const Real p1 = std::exp(0.2f + 0.3f);
    EXPECT_NEAR(ap(0, 0), p0, 1e-5f);
    EXPECT_NEAR(ap(0, 1), p1, 1e-5f);
    EXPECT_NEAR(ap(0, 2), p0 + p1, 1e-5f);
    EXPECT_NEAR(sums(0, 0), 2 * (p0 + p1), 1e-4f);
}

/** Property sweep over sequence lengths: error stays bounded. */
class CtaSeqLenTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CtaSeqLenTest, BoundedErrorAcrossLengths)
{
    const Index n = GetParam();
    Fixture fx(n, 32, 16, 0.03f, static_cast<std::uint64_t>(n));
    CtaConfig config;
    config.w0 = 0.6f;
    config.w1 = 0.6f;
    config.w2 = 0.3f;
    const CtaResult r =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const auto err = cta::alg::compareOutputs(r.output, exact);
    EXPECT_GT(err.meanCosine, 0.95f) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, CtaSeqLenTest,
                         ::testing::Values(64, 128, 256, 384, 512));

} // namespace

/**
 * @file
 * Determinism torture tests for the fused online-softmax decode
 * kernel (cta/fused_decode.h): a session decoding through the fused
 * kernel must produce bit-identical outputs — and identical operation
 * counts — to the unfused grouped pipeline at EVERY prefix length,
 * under every compute backend, thread count and dispatched ISA level.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/matrix.h"
#include "core/rng.h"
#include "core/simd.h"
#include "nn/workload.h"
#include "serve/decode_session.h"

namespace {

using cta::core::Backend;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::core::SimdLevel;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;

class ScopedBackend
{
  public:
    explicit ScopedBackend(Backend *backend)
        : previous_(cta::core::setActiveBackend(backend))
    {
    }
    ~ScopedBackend() { cta::core::setActiveBackend(previous_); }

  private:
    Backend *previous_;
};

class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level)
        : previous_(cta::core::setSimdLevel(level))
    {
    }
    ~ScopedSimdLevel() { cta::core::setSimdLevel(previous_); }

  private:
    SimdLevel previous_;
};

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

/** Cluster-structured tokens the LSH compression actually compresses
 *  (pure noise would make every token its own cluster). */
Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

/**
 * Decodes the same stream through a fused and an unfused session and
 * asserts bitwise-identical outputs and identical per-step OpCounts
 * at every prefix length. Sessions share (params, tokenDim) and
 * differ ONLY in config.fusedDecode; the standalone constructor
 * samples its LSH set deterministically from the config, so both see
 * identical compression state.
 */
void
expectFusedMatchesUnfused(Index prefill, Index steps,
                          std::uint64_t seed, ServeConfig base,
                          const std::string &what)
{
    const Index dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + steps, dim, seed);
    Rng rng(seed + 1);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    ServeConfig fused = base;
    fused.groupedAggregation = true;
    fused.fusedDecode = true;
    ServeConfig unfused = base;
    unfused.groupedAggregation = true;
    unfused.fusedDecode = false;

    DecodeSession fused_session(params, fused, dim);
    DecodeSession unfused_session(params, unfused, dim);
    fused_session.prefill(tokens.rowSlice(0, prefill));
    unfused_session.prefill(tokens.rowSlice(0, prefill));

    for (Index i = prefill; i < prefill + steps; ++i) {
        const Matrix out_fused = fused_session.step(tokens.row(i));
        const Matrix out_unfused =
            unfused_session.step(tokens.row(i));
        ASSERT_TRUE(bitIdentical(out_fused, out_unfused))
            << what << ": outputs diverge at prefix " << i;
        ASSERT_EQ(fused_session.lastStepOps(),
                  unfused_session.lastStepOps())
            << what << ": op counts diverge at prefix " << i;
        ASSERT_FALSE(fused_session.fallbackActive());
        ASSERT_FALSE(unfused_session.fallbackActive());
    }
}

TEST(FusedDecodeTest, BitIdenticalToUnfusedAtEveryPrefixLength)
{
    // Long stream under the default backend: every prefix length from
    // the first post-prefill token exercises fresh cluster counts,
    // pair multisets and row-max shifts.
    expectFusedMatchesUnfused(16, 48, 21, ServeConfig{},
                              "default config");
}

TEST(FusedDecodeTest, BitIdenticalWithoutRowMaxShift)
{
    ServeConfig config;
    config.cta.subtractRowMax = false;
    expectFusedMatchesUnfused(16, 32, 22, config,
                              "subtractRowMax off");
}

TEST(FusedDecodeTest, BitIdenticalAcrossBackendsAndThreadCounts)
{
    // The decode step's numerics may differ BETWEEN backends (the
    // simd backend runs FMA projection chains), but fused and unfused
    // must agree WITHIN each backend — the kernel dispatches its AV
    // accumulation on Backend::gemmFmaChains to guarantee it.
    for (const char *spec :
         {"naive", "parallel:1", "parallel:4", "parallel:8",
          "simd:1", "simd:8"}) {
        const auto backend = cta::core::makeBackend(spec);
        ScopedBackend guard(backend.get());
        expectFusedMatchesUnfused(16, 24, 23, ServeConfig{},
                                  std::string("backend ") + spec);
    }
}

TEST(FusedDecodeTest, BitIdenticalAtEveryDispatchedIsaLevel)
{
    // CTA_SIMD-forced levels re-dispatch every vector primitive the
    // fused kernel and the cached-projection updates run through.
    const auto simd = cta::core::makeBackend("simd:4");
    ScopedBackend backend_guard(simd.get());
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512,
          SimdLevel::Neon}) {
        if (!cta::core::simdLevelSupported(level))
            continue;
        ScopedSimdLevel level_guard(level);
        expectFusedMatchesUnfused(
            16, 24, 24, ServeConfig{},
            std::string("level ") + cta::core::simdLevelName(level));
    }
}

TEST(FusedDecodeTest, IsaLevelDoesNotChangeFusedOutputs)
{
    // Stronger than fused==unfused per level: the fused outputs
    // themselves must be bitwise level-invariant, because every SIMD
    // primitive preserves the scalar per-element rounding sequence.
    const Index dim = 32, d = 16, prefill = 16, steps = 16;
    const Matrix tokens = sampleTokens(prefill + steps, dim, 25);
    Rng rng(26);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);
    const auto simd = cta::core::makeBackend("simd:4");
    ScopedBackend backend_guard(simd.get());

    std::vector<Matrix> reference;
    bool have_reference = false;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512,
          SimdLevel::Neon}) {
        if (!cta::core::simdLevelSupported(level))
            continue;
        ScopedSimdLevel level_guard(level);
        DecodeSession session(params, ServeConfig{}, dim);
        session.prefill(tokens.rowSlice(0, prefill));
        std::vector<Matrix> outputs;
        for (Index i = prefill; i < prefill + steps; ++i)
            outputs.push_back(session.step(tokens.row(i)));
        if (!have_reference) {
            reference = std::move(outputs);
            have_reference = true;
            continue;
        }
        for (std::size_t s = 0; s < reference.size(); ++s)
            EXPECT_TRUE(bitIdentical(outputs[s], reference[s]))
                << "level " << cta::core::simdLevelName(level)
                << " diverges at step " << s;
    }
}

TEST(FusedDecodeTest, FusedFlagIgnoredWithoutGroupedAggregation)
{
    // fusedDecode requires the pair multiset; with grouped
    // aggregation off both configs must run the identical per-token
    // pipeline.
    const Index dim = 32, d = 16, prefill = 24, steps = 12;
    const Matrix tokens = sampleTokens(prefill + steps, dim, 27);
    Rng rng(28);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    ServeConfig on;
    on.groupedAggregation = false;
    on.fusedDecode = true;
    ServeConfig off;
    off.groupedAggregation = false;
    off.fusedDecode = false;

    DecodeSession session_on(params, on, dim);
    DecodeSession session_off(params, off, dim);
    session_on.prefill(tokens.rowSlice(0, prefill));
    session_off.prefill(tokens.rowSlice(0, prefill));
    for (Index i = prefill; i < prefill + steps; ++i) {
        const Matrix a = session_on.step(tokens.row(i));
        const Matrix b = session_off.step(tokens.row(i));
        ASSERT_TRUE(bitIdentical(a, b)) << "prefix " << i;
        ASSERT_EQ(session_on.lastStepOps(),
                  session_off.lastStepOps());
    }
}

TEST(FusedDecodeTest, SteadyStateStepsDoNotRegrowScratch)
{
    // The session-held scratch makes steady-state steps allocation-
    // free: after the first step the buffers only ever resize when
    // the cluster count grows past their capacity. Smoke-check the
    // plumbing by decoding a long stream and confirming health.
    const Index dim = 32, d = 16;
    const Matrix tokens = sampleTokens(160, dim, 29);
    Rng rng(30);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);
    DecodeSession session(params, ServeConfig{}, dim);
    session.prefill(tokens.rowSlice(0, 32));
    for (Index i = 32; i < 160; ++i) {
        const Matrix out = session.step(tokens.row(i));
        ASSERT_EQ(out.rows(), 1);
        ASSERT_EQ(out.cols(), d);
        for (Index j = 0; j < d; ++j)
            ASSERT_TRUE(std::isfinite(out(0, j)))
                << "step " << i << " col " << j;
    }
    EXPECT_FALSE(session.fallbackActive());
}

} // namespace

/**
 * @file
 * Fuzz-lite integrity tests for the CTAS session-snapshot blob: a
 * clean round trip, then every single-byte flip and every truncation
 * of a real blob must be *detected* by tryDeserializeSnapshot() — it
 * may only report success when the decoded state is bit-identical to
 * the original, never silently succeed with wrong state. Also covers
 * the forged-checksum path (valid CRC over a structurally bad
 * payload) and the fatal deserializeSnapshot() contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/crc32.h"
#include "core/rng.h"
#include "nn/workload.h"
#include "serve/decode_session.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;
using cta::serve::SessionSnapshot;

constexpr Index kDim = 16;
constexpr Index kHeadDim = 8;

Matrix
sampleTokens(Index n, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = kDim;
    profile.coarseClusters = 4;
    profile.fineClusters = 3;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

/** A small but real snapshot blob (non-trivial cluster state). */
std::vector<std::uint8_t>
sampleBlob()
{
    Rng rng(3);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    DecodeSession session(params, ServeConfig{}, kDim);
    session.prefill(sampleTokens(6, 77));
    return cta::serve::serializeSnapshot(session.snapshot());
}

/** Rewrites the CRC-32 trailer so the checksum matches the (possibly
 *  tampered-with) payload — the forged-checksum attack surface. */
void
forgeCrc(std::vector<std::uint8_t> &blob)
{
    ASSERT_GE(blob.size(), 4u);
    const std::uint32_t crc =
        cta::core::crc32(blob.data(), blob.size() - 4);
    std::memcpy(blob.data() + blob.size() - 4, &crc, sizeof(crc));
}

TEST(SnapshotIntegrityTest, CleanBlobRoundTrips)
{
    const auto blob = sampleBlob();
    SessionSnapshot snap;
    std::string error;
    ASSERT_TRUE(cta::serve::tryDeserializeSnapshot(blob, &snap,
                                                   &error))
        << error;
    EXPECT_EQ(snap.tokenDim, kDim);
    // Re-serializing the decoded state reproduces the blob exactly.
    EXPECT_EQ(cta::serve::serializeSnapshot(snap), blob);
    // The fatal variant agrees.
    const SessionSnapshot fatal = cta::serve::deserializeSnapshot(blob);
    EXPECT_EQ(cta::serve::serializeSnapshot(fatal), blob);
}

TEST(SnapshotIntegrityTest, EmptySessionBlobRoundTrips)
{
    Rng rng(4);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim, rng);
    DecodeSession session(params, ServeConfig{}, kDim);
    const auto blob =
        cta::serve::serializeSnapshot(session.snapshot());
    SessionSnapshot snap;
    ASSERT_TRUE(
        cta::serve::tryDeserializeSnapshot(blob, &snap, nullptr));
    EXPECT_EQ(cta::serve::serializeSnapshot(snap), blob);
}

TEST(SnapshotIntegrityTest, EveryByteFlipIsDetected)
{
    const auto original = sampleBlob();
    // Three masks per offset: low bit, high bit, full byte.
    const std::uint8_t masks[] = {0x01, 0x80, 0xFF};
    for (std::size_t at = 0; at < original.size(); ++at) {
        for (const std::uint8_t mask : masks) {
            std::vector<std::uint8_t> blob = original;
            blob[at] ^= mask;
            SessionSnapshot snap;
            std::string error;
            const bool ok = cta::serve::tryDeserializeSnapshot(
                blob, &snap, &error);
            // A single-byte flip is a burst of at most 8 bits, which
            // the CRC-32 trailer detects unconditionally — including
            // flips of the trailer itself.
            EXPECT_FALSE(ok) << "flip of byte " << at << " (mask 0x"
                             << std::hex << unsigned{mask}
                             << ") went undetected";
            if (!ok) {
                EXPECT_FALSE(error.empty()) << "byte " << at;
            }
        }
    }
}

TEST(SnapshotIntegrityTest, EveryTruncationIsDetected)
{
    const auto original = sampleBlob();
    for (std::size_t len = 0; len < original.size(); ++len) {
        SessionSnapshot snap;
        std::string error;
        EXPECT_FALSE(cta::serve::tryDeserializeSnapshot(
            std::span<const std::uint8_t>(original.data(), len),
            &snap, &error))
            << "truncation to " << len << " bytes went undetected";
    }
    // Trailing garbage is rejected too.
    std::vector<std::uint8_t> extended = original;
    extended.push_back(0x00);
    SessionSnapshot snap;
    EXPECT_FALSE(
        cta::serve::tryDeserializeSnapshot(extended, &snap, nullptr));
}

TEST(SnapshotIntegrityTest, ForgedChecksumStillRejectsBadStructure)
{
    // An unsupported version behind a *valid* CRC must be rejected by
    // the structural layer, not the checksum.
    auto blob = sampleBlob();
    blob[4] = 0x7F; // version lives right after the 4-byte magic
    forgeCrc(blob);
    SessionSnapshot snap;
    std::string error;
    EXPECT_FALSE(
        cta::serve::tryDeserializeSnapshot(blob, &snap, &error));
    EXPECT_FALSE(error.empty());

    // A wildly wrong array length behind a valid CRC exercises the
    // non-throwing BlobReader: it must fail soft, not crash or
    // overread.
    auto lied = sampleBlob();
    // tokenDim (int64) sits at offset 8; make it absurd.
    const std::int64_t absurd = -5;
    std::memcpy(lied.data() + 8, &absurd, sizeof(absurd));
    forgeCrc(lied);
    EXPECT_FALSE(
        cta::serve::tryDeserializeSnapshot(lied, &snap, nullptr));
}

TEST(SnapshotIntegrityTest, LegacyVersionsRejectedWithVersionedError)
{
    // Pre-v3 blobs (flat snapshots without prefix deltas) are no
    // longer decodable. They must be refused with an error that names
    // the stale version — operationally distinct from corruption, so
    // an operator knows to re-snapshot rather than hunt bit rot.
    for (const std::uint8_t legacy : {std::uint8_t{1},
                                      std::uint8_t{2}}) {
        auto blob = sampleBlob();
        blob[4] = legacy; // version lives right after the magic
        forgeCrc(blob);   // valid checksum: this is not corruption
        SessionSnapshot snap;
        std::string error;
        EXPECT_FALSE(
            cta::serve::tryDeserializeSnapshot(blob, &snap, &error));
        EXPECT_NE(error.find("legacy"), std::string::npos) << error;
        EXPECT_NE(error.find(std::to_string(unsigned{legacy})),
                  std::string::npos)
            << error;
    }

    // Future/unknown versions get the generic unsupported message,
    // not the legacy one.
    auto blob = sampleBlob();
    blob[4] = 0x09;
    forgeCrc(blob);
    SessionSnapshot snap;
    std::string error;
    EXPECT_FALSE(
        cta::serve::tryDeserializeSnapshot(blob, &snap, &error));
    EXPECT_EQ(error.find("legacy"), std::string::npos) << error;
    EXPECT_NE(error.find("unsupported"), std::string::npos) << error;
}

TEST(SnapshotIntegrityDeathTest, FatalVariantAbortsOnCorruption)
{
    auto blob = sampleBlob();
    blob[blob.size() / 2] ^= 0xFF;
    EXPECT_DEATH(cta::serve::deserializeSnapshot(blob), "");
}

} // namespace

/**
 * @file
 * Unit tests for the thread pool and deterministic parallel-for
 * (core/parallel.h): chunking policy, empty/small ranges, ranges
 * smaller than the thread count, exception propagation, and
 * re-entrant (nested) invocation.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"

namespace {

using cta::core::chunkSpans;
using cta::core::configuredThreadCount;
using cta::core::Index;
using cta::core::parallelFor;
using cta::core::parseEnvInt;
using cta::core::resolveThreadCount;
using cta::core::ThreadPool;

/** RAII guard setting an environment variable for one test. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        setenv(name, value, /*overwrite=*/1);
    }

    ~ScopedEnv()
    {
        if (old_)
            setenv(name_, old_->c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::optional<std::string> old_;
};

TEST(ChunkSpansTest, EmptyRangeYieldsNoSpans)
{
    EXPECT_TRUE(chunkSpans(0, 0).empty());
    EXPECT_TRUE(chunkSpans(5, 5).empty());
    EXPECT_TRUE(chunkSpans(7, 3).empty());
}

TEST(ChunkSpansTest, SpansAreDisjointAndCoverTheRange)
{
    for (const Index n : {1, 2, 7, 63, 64, 65, 100, 512, 1000}) {
        const auto spans = chunkSpans(10, 10 + n);
        ASSERT_FALSE(spans.empty());
        EXPECT_LE(static_cast<Index>(spans.size()),
                  cta::core::kMaxChunks);
        Index expect_begin = 10;
        for (const auto &[begin, end] : spans) {
            EXPECT_EQ(begin, expect_begin);
            EXPECT_LT(begin, end);
            expect_begin = end;
        }
        EXPECT_EQ(expect_begin, 10 + n);
    }
}

TEST(ChunkSpansTest, GrainIsRespected)
{
    const auto spans = chunkSpans(0, 100, /*grain=*/32);
    for (std::size_t c = 0; c + 1 < spans.size(); ++c)
        EXPECT_GE(spans[c].second - spans[c].first, 32);
}

TEST(ChunkSpansTest, PartitionIsIndependentOfThreadCount)
{
    // The partition is a pure function of (range, grain); nothing
    // about pools or CTA_THREADS can appear here. Two calls agree.
    EXPECT_EQ(chunkSpans(0, 777, 4), chunkSpans(0, 777, 4));
}

TEST(ParallelForTest, EmptyRangeBodyNeverRuns)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    parallelFor(pool, 0, 0, [&](Index, Index) { ++calls; });
    parallelFor(pool, 9, 3, [&](Index, Index) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanThreadCount)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> visits(3);
    parallelFor(pool, 0, 3, [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i)
            ++visits[static_cast<std::size_t>(i)];
    });
    for (const auto &count : visits)
        EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    constexpr Index kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    parallelFor(pool, 0, kN, [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i)
            ++visits[static_cast<std::size_t>(i)];
    });
    for (const auto &count : visits)
        EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        parallelFor(pool, 0, 100,
                    [&](Index begin, Index) {
                        if (begin == 0)
                            throw std::runtime_error("chunk failed");
                    }),
        std::runtime_error);
}

TEST(ParallelForTest, LowestFailingChunkWins)
{
    // Several chunks throw; the rethrown exception is the one from
    // the lowest-numbered failing task (deterministic choice).
    ThreadPool pool(4);
    try {
        pool.run(16, [&](Index task) {
            if (task >= 2)
                throw std::runtime_error("task " +
                                         std::to_string(task));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "task 2");
    }
}

TEST(ParallelForTest, PoolSurvivesAnExceptionBatch)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.run(8,
                          [&](Index) {
                              throw std::runtime_error("boom");
                          }),
                 std::runtime_error);
    // The pool keeps working after a failed batch.
    std::atomic<Index> sum{0};
    pool.run(8, [&](Index task) { sum += task; });
    EXPECT_EQ(sum.load(), 28);
}

TEST(ParallelForTest, NestedInvocationRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(64);
    parallelFor(pool, 0, 8, [&](Index obegin, Index oend) {
        for (Index o = obegin; o < oend; ++o) {
            // Nested parallelFor on the SAME pool must not deadlock;
            // it degrades to inline execution.
            parallelFor(pool, 0, 8, [&](Index ibegin, Index iend) {
                for (Index i = ibegin; i < iend; ++i)
                    ++visits[static_cast<std::size_t>(o * 8 + i)];
            });
        }
    });
    for (const auto &count : visits)
        EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, SingleThreadPoolWorks)
{
    ThreadPool pool(1);
    Index sum = 0; // no atomics needed: single worker
    parallelFor(pool, 0, 100, [&](Index begin, Index end) {
        for (Index i = begin; i < end; ++i)
            sum += i;
    });
    EXPECT_EQ(sum, 4950);
}

TEST(ConfiguredThreadCountTest, IsPositive)
{
    EXPECT_GE(cta::core::configuredThreadCount(), 1);
}

TEST(ParseEnvIntTest, ParsesPlainIntegers)
{
    EXPECT_EQ(parseEnvInt("8", "test"), 8);
    EXPECT_EQ(parseEnvInt("-3", "test"), -3);
    EXPECT_EQ(parseEnvInt("0", "test"), 0);
}

TEST(ParseEnvIntDeathTest, RejectsMalformedValues)
{
    // Regression: strtol-without-endptr accepted "8x" as 8 and
    // silently parsed "abc" as 0.
    EXPECT_EXIT(parseEnvInt("8x", "CTA_THREADS"),
                ::testing::ExitedWithCode(1), "malformed CTA_THREADS");
    EXPECT_EXIT(parseEnvInt("abc", "CTA_THREADS"),
                ::testing::ExitedWithCode(1), "malformed CTA_THREADS");
    EXPECT_EXIT(parseEnvInt("", "CTA_THREADS"),
                ::testing::ExitedWithCode(1), "empty CTA_THREADS");
    EXPECT_EXIT(parseEnvInt(" 8", "CTA_THREADS"),
                ::testing::ExitedWithCode(1), "empty CTA_THREADS");
    EXPECT_EXIT(parseEnvInt("99999999999999999999", "CTA_THREADS"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ConfiguredThreadCountTest, ReadsValidEnv)
{
    ScopedEnv env("CTA_THREADS", "5");
    EXPECT_EQ(configuredThreadCount(), 5);
}

TEST(ConfiguredThreadCountTest, ClampsOutOfRangeValues)
{
    {
        ScopedEnv env("CTA_THREADS", "1000");
        EXPECT_EQ(configuredThreadCount(), 64);
    }
    {
        ScopedEnv env("CTA_THREADS", "0");
        EXPECT_EQ(configuredThreadCount(), 1);
    }
    {
        ScopedEnv env("CTA_THREADS", "-4");
        EXPECT_EQ(configuredThreadCount(), 1);
    }
}

TEST(ConfiguredThreadCountDeathTest, RejectsMalformedEnv)
{
    // Regression: CTA_THREADS=abc used to degrade silently to one
    // thread instead of failing loudly.
    ScopedEnv env("CTA_THREADS", "abc");
    EXPECT_EXIT(configuredThreadCount(),
                ::testing::ExitedWithCode(1), "malformed CTA_THREADS");
}

TEST(ResolveThreadCountTest, UnknownHardwareConcurrencyResolvesToOne)
{
    // Regression: hardware_concurrency() may legally return 0
    // ("unknown"); the pool must size to 1, not 0 (which formerly
    // spawned std::thread::hardware_concurrency() - 1 == UINT_MAX
    // workers' worth of nonsense downstream).
    EXPECT_EQ(resolveThreadCount(std::nullopt, 0), 1);
    EXPECT_EQ(resolveThreadCount(std::nullopt, 1), 1);
}

TEST(ResolveThreadCountTest, DefaultsFollowHardwareClampedTo16)
{
    EXPECT_EQ(resolveThreadCount(std::nullopt, 4), 4);
    EXPECT_EQ(resolveThreadCount(std::nullopt, 16), 16);
    EXPECT_EQ(resolveThreadCount(std::nullopt, 64), 16);
}

TEST(ResolveThreadCountTest, EnvWinsEvenOnUnknownHardware)
{
    EXPECT_EQ(resolveThreadCount(8, 0), 8);
    EXPECT_EQ(resolveThreadCount(2, 64), 2);
}

TEST(ResolveThreadCountTest, EnvClampsToValidRange)
{
    EXPECT_EQ(resolveThreadCount(1000, 4), 64);
    EXPECT_EQ(resolveThreadCount(0, 4), 1);
    EXPECT_EQ(resolveThreadCount(-3, 4), 1);
}

TEST(ResolveThreadCountTest, ReportsOversubscription)
{
    // The out-param reports the condition on every call, independent
    // of the once-per-process warning latch (which an earlier test in
    // this binary may already have tripped).
    bool warned = false;
    EXPECT_EQ(resolveThreadCount(8, 1, &warned), 8);
    EXPECT_TRUE(warned);

    warned = true;
    EXPECT_EQ(resolveThreadCount(4, 4, &warned), 4);
    EXPECT_FALSE(warned);

    warned = false;
    EXPECT_EQ(resolveThreadCount(1000, 4, &warned), 64);
    EXPECT_TRUE(warned);
}

TEST(ThreadPoolTest, OversubscribedPoolRunsInlineByDefault)
{
    // A pool bigger than the machine must fall back to inline
    // draining (fan-out can only add context switches). The calling
    // thread then claims every task itself.
    const unsigned hw = std::thread::hardware_concurrency();
    const int threads = static_cast<int>(hw == 0 ? 1 : hw) + 4;
    ThreadPool pool(threads);
    std::set<std::thread::id> ids;
    std::mutex ids_mutex;
    pool.run(32, [&](Index) {
        const std::lock_guard<std::mutex> lock(ids_mutex);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, ForceFanoutExercisesCrossThreadClaiming)
{
    // force_fanout disables the oversubscription shortcut so the
    // cross-thread ticket-claiming path runs even on a single-core
    // host. Workers race the caller for tickets; retry with slow
    // tasks until at least one task lands off the calling thread.
    ThreadPool pool(4, /*force_fanout=*/true);
    constexpr Index kTasks = 16;
    bool saw_other_thread = false;
    for (int attempt = 0; attempt < 50 && !saw_other_thread;
         ++attempt) {
        std::vector<std::atomic<int>> visits(kTasks);
        std::set<std::thread::id> ids;
        std::mutex ids_mutex;
        pool.run(kTasks, [&](Index task) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
            ++visits[static_cast<std::size_t>(task)];
            const std::lock_guard<std::mutex> lock(ids_mutex);
            ids.insert(std::this_thread::get_id());
        });
        for (const auto &count : visits)
            ASSERT_EQ(count.load(), 1); // exactly once, every batch
        saw_other_thread =
            ids.size() > 1 ||
            ids.find(std::this_thread::get_id()) == ids.end();
    }
    EXPECT_TRUE(saw_other_thread)
        << "no worker ever claimed a task in 50 batches";
}

} // namespace

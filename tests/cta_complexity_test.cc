/**
 * @file
 * Verifies the paper's SIII-D complexity analysis against measured
 * operation counts: the closed-form expressions for hashing, centroid
 * aggregation, probability aggregation, linears, similarity, score
 * normalization and output calculation must match what the
 * implementation actually performs.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::alg::CtaResult;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;

struct Measured
{
    CtaResult result;
    Index n, dw, d, l;
};

Measured
runCase(Index n, Index dw, Index d, Index l, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dw;
    profile.coarseClusters = 10;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    const Matrix x = gen.sampleTokens();
    Rng rng(seed + 1);
    const auto params = AttentionHeadParams::randomInit(dw, d, rng);
    CtaConfig config;
    config.hashLen = l;
    config.subtractRowMax = false; // isolate the core-formula terms
    return Measured{ctaAttention(x, x, params, config), n, dw, d, l};
}

TEST(ComplexityTest, HashingCostIs3lnd)
{
    const auto mc = runCase(128, 32, 16, 6, 1);
    // Overhead MACs come only from the three LSH instances:
    // LSH0 + LSH1 + LSH2 = 3 * l * n * d_w (self-attention: m = n).
    const std::uint64_t expect = 3ull * 6 * 128 * 32;
    EXPECT_EQ(mc.result.overheadOps.macs, expect);
}

TEST(ComplexityTest, CentroidDivisionsAreKd)
{
    const auto mc = runCase(128, 32, 16, 6, 2);
    const auto &s = mc.result.stats;
    // Divisions in overhead come only from centroid averaging:
    // (k0 + k1 + k2) * d_w.
    const std::uint64_t expect =
        static_cast<std::uint64_t>(s.k0 + s.k1 + s.k2) * 32;
    EXPECT_EQ(mc.result.overheadOps.divs, expect);
}

TEST(ComplexityTest, OverheadAddsMatchFormula)
{
    const auto mc = runCase(96, 16, 8, 4, 3);
    const auto &s = mc.result.stats;
    const auto n = static_cast<std::uint64_t>(mc.n);
    const auto dw = static_cast<std::uint64_t>(mc.dw);
    const auto l = static_cast<std::uint64_t>(mc.l);
    // adds = 3*l*n (hash bias) + 3*n*dw (centroid accumulation over
    // three clusterings) + n*dw (residual subtraction)
    //      + 3*k0*n (probability aggregation, Fig. 6).
    const std::uint64_t expect = 3 * l * n + 3 * n * dw + n * dw +
        3 * static_cast<std::uint64_t>(s.k0) * n;
    EXPECT_EQ(mc.result.overheadOps.adds, expect);
}

TEST(ComplexityTest, LinearMacsMatchEq3)
{
    const auto mc = runCase(128, 32, 16, 6, 4);
    const auto &s = mc.result.stats;
    // (k0 + 2(k1+k2)) * dw * d MACs (eq. 3).
    const std::uint64_t expect =
        static_cast<std::uint64_t>(s.k0 + 2 * (s.k1 + s.k2)) * 32 * 16;
    EXPECT_EQ(mc.result.linearOps.macs, expect);
}

TEST(ComplexityTest, AttentionMacsMatchEq5And8)
{
    const auto mc = runCase(128, 32, 16, 6, 5);
    const auto &s = mc.result.stats;
    // Scores k0*(k1+k2)*d + outputs k0*(k1+k2)*d (eq. 5, 8).
    const std::uint64_t expect = 2ull *
        static_cast<std::uint64_t>(s.k0) *
        static_cast<std::uint64_t>(s.k1 + s.k2) * 16;
    EXPECT_EQ(mc.result.attnOps.macs, expect);
}

TEST(ComplexityTest, ExponentialsReducedToK0n)
{
    const auto mc = runCase(128, 32, 16, 6, 6);
    const auto &s = mc.result.stats;
    EXPECT_EQ(mc.result.attnOps.exps,
              static_cast<std::uint64_t>(s.k0) * 128u);
}

TEST(ComplexityTest, OutputDivisionsReducedToK0d)
{
    const auto mc = runCase(128, 32, 16, 6, 7);
    const auto &s = mc.result.stats;
    EXPECT_EQ(mc.result.attnOps.divs,
              static_cast<std::uint64_t>(s.k0) * 16u);
}

TEST(ComplexityTest, RlFormulaMatchesMeasured)
{
    const auto mc = runCase(256, 32, 16, 6, 8);
    const auto &s = mc.result.stats;
    // stats.rl() is the closed form; measuredRl() is op-count based.
    EXPECT_NEAR(s.rl(), mc.result.measuredRl(), 1e-6f);
}

TEST(ComplexityTest, CompressionReducesWork)
{
    const auto mc = runCase(256, 32, 16, 6, 9);
    const auto exact_attn =
        cta::nn::exactAttentionCalcOps(256, 256, 16);
    EXPECT_LT(mc.result.attnOps.flops(), exact_attn.flops());
    const auto exact_lin = cta::nn::exactLinearOps(256, 256, 32, 16);
    EXPECT_LT(mc.result.linearOps.flops(), exact_lin.flops());
}

TEST(ComplexityTest, OverheadSmallRelativeToSavings)
{
    // The paper's premise: approximation overhead (hashing, centroid
    // and probability aggregation) is far below what compression
    // saves in the backbone.
    const auto mc = runCase(512, 64, 64, 6, 10);
    const auto exact = cta::nn::exactAttentionCalcOps(512, 512, 64) +
                       cta::nn::exactLinearOps(512, 512, 64, 64);
    const auto cta_total = mc.result.totalOps();
    const std::uint64_t saved =
        exact.flops() - (mc.result.linearOps.flops() +
                         mc.result.attnOps.flops());
    EXPECT_LT(mc.result.overheadOps.flops(), saved / 2);
    EXPECT_LT(cta_total.flops(), exact.flops());
}

} // namespace

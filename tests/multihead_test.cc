/**
 * @file
 * Tests for multi-head CTA attention and the CTA encoder layer:
 * shared-compression correctness, accuracy tracking, and the
 * layer-level op savings.
 */

#include <gtest/gtest.h>

#include "core/op_counter.h"
#include "core/rng.h"
#include "cta/error.h"
#include "cta/multihead.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaEncoderLayer;
using cta::alg::CtaMultiHeadAttention;
using cta::alg::Preset;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Rng;

Matrix
clusteredTokens(Index n, Index d, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = d;
    profile.coarseClusters = 20;
    profile.fineClusters = 12;
    profile.noiseScale = 0.03f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

TEST(CtaMultiHeadTest, RequiresCalibration)
{
    Rng rng(1);
    const CtaMultiHeadAttention mha(64, 2, rng);
    const Matrix x = clusteredTokens(64, 64, 2);
    EXPECT_DEATH(mha.forward(x), "before calibrate");
}

TEST(CtaMultiHeadTest, ForwardShapeAndDeterminism)
{
    Rng rng(1);
    CtaMultiHeadAttention mha(64, 2, rng);
    const Matrix x = clusteredTokens(128, 64, 2);
    mha.calibrate(x, Preset::Cta05);
    const Matrix a = mha.forward(x);
    const Matrix b = mha.forward(x);
    EXPECT_EQ(a.rows(), 128);
    EXPECT_EQ(a.cols(), 64);
    EXPECT_LT(maxAbsDiff(a, b), 1e-9f);
}

TEST(CtaMultiHeadTest, TracksExactAttention)
{
    Rng rng(3);
    CtaMultiHeadAttention mha(64, 4, rng);
    const Matrix x = clusteredTokens(192, 64, 4);
    mha.calibrate(x, Preset::Cta0);
    const Matrix approx = mha.forward(x);
    const Matrix exact = mha.forwardExact(x);
    const auto err = cta::alg::compareOutputs(approx, exact);
    EXPECT_GT(err.meanCosine, 0.97f);
}

TEST(CtaMultiHeadTest, SharedCompressionMatchesPerHeadCta)
{
    // Head h of the multi-head block must produce exactly what
    // single-head ctaAttention produces with the same config (same
    // seed -> same LSH -> same clustering), modulo the output
    // projection.
    Rng rng(5);
    CtaMultiHeadAttention mha(64, 2, rng);
    const Matrix x = clusteredTokens(96, 64, 6);
    mha.calibrate(x, Preset::Cta05);
    const auto direct = cta::alg::ctaAttention(
        x, x, mha.heads()[0], mha.config());
    // Reconstruct head 0's slice: forward() concatenates then
    // projects, so compare via a fresh shared-compression call.
    const auto lsh =
        cta::alg::sampleLshParams(mha.config(), x.cols());
    const auto kv =
        cta::alg::compressTwoLevel(x, lsh.lsh1, lsh.lsh2);
    const auto qc = cta::alg::compressTokens(x, lsh.lsh0);
    const auto shared = cta::alg::ctaAttentionFromCompression(
        qc, kv, x.rows(), mha.heads()[0],
        mha.config().subtractRowMax);
    EXPECT_LT(maxAbsDiff(shared.output, direct.output), 1e-6f);
}

TEST(CtaMultiHeadTest, CompressionChargedOncePerLayer)
{
    Rng rng(7);
    const Matrix x = clusteredTokens(128, 64, 8);
    CtaMultiHeadAttention mha1(64, 1, rng);
    Rng rng2(7);
    CtaMultiHeadAttention mha4(64, 4, rng2);
    mha1.calibrate(x, Preset::Cta05);
    mha4.calibrate(x, Preset::Cta05);
    OpCounts ops1, ops4;
    mha1.forward(x, &ops1);
    mha4.forward(x, &ops4);
    // Hashing MACs (3*l*n*dw) appear once in both: the 4-head block
    // must NOT hash 4x.
    const std::uint64_t hash_macs = 3ull * 6 * 128 * 64;
    EXPECT_GE(ops1.macs, hash_macs);
    EXPECT_LT(ops4.macs, 4 * ops1.macs)
        << "shared compression should make 4 heads cheaper than "
           "4x single-head";
}

TEST(CtaEncoderLayerTest, ForwardTracksExact)
{
    Rng rng(9);
    CtaEncoderLayer layer(64, 2, 128, rng);
    const Matrix x = clusteredTokens(128, 64, 10);
    layer.calibrate(x, Preset::Cta0);
    const Matrix approx = layer.forward(x);
    const Matrix exact = layer.forwardExact(x);
    EXPECT_EQ(approx.rows(), 128);
    EXPECT_EQ(approx.cols(), 64);
    // Residual connections keep the layer output close even where
    // attention is approximated.
    EXPECT_LT(relativeError(approx, exact), 0.10f);
}

TEST(CtaEncoderLayerTest, StackRemainsStable)
{
    Rng rng(11);
    CtaEncoderLayer l0(64, 2, 128, rng);
    CtaEncoderLayer l1(64, 2, 128, rng);
    const Matrix x = clusteredTokens(96, 64, 12);
    l0.calibrate(x, Preset::Cta05);
    Matrix mid_exact = l0.forwardExact(x);
    l1.calibrate(mid_exact, Preset::Cta05);

    Matrix a = l1.forward(l0.forward(x));
    Matrix b = l1.forwardExact(l0.forwardExact(x));
    const auto err = cta::alg::compareOutputs(a, b);
    EXPECT_GT(err.meanCosine, 0.95f);
}

TEST(CtaMultiHeadTest, LastStatsPopulated)
{
    Rng rng(13);
    CtaMultiHeadAttention mha(64, 2, rng);
    const Matrix x = clusteredTokens(128, 64, 14);
    mha.calibrate(x, Preset::Cta1);
    mha.forward(x);
    const auto &stats = mha.lastStats();
    EXPECT_EQ(stats.m, 128);
    EXPECT_GT(stats.k0, 0);
    EXPECT_LT(stats.k0, 128);
}

} // namespace

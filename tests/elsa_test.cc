/**
 * @file
 * Unit tests for the ELSA baseline reconstruction: sign hashing,
 * candidate filtering behaviour and approximation quality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/error.h"
#include "elsa/elsa_attention.h"
#include "elsa/sign_hash.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::elsa::ElsaConfig;
using cta::elsa::ElsaPreset;
using cta::elsa::ElsaResult;
using cta::elsa::SignatureMatrix;
using cta::elsa::SignHashParams;
using cta::nn::AttentionHeadParams;

TEST(SignatureMatrixTest, BitSetAndGet)
{
    SignatureMatrix sig(2, 70); // forces two 64-bit words per row
    sig.setBit(0, 0, true);
    sig.setBit(0, 69, true);
    sig.setBit(1, 69, true);
    EXPECT_TRUE(sig.bit(0, 0));
    EXPECT_TRUE(sig.bit(0, 69));
    EXPECT_FALSE(sig.bit(0, 1));
    EXPECT_EQ(sig.hamming(0, 1), 1); // differ only in bit 0
}

TEST(SignatureMatrixTest, HammingIsSymmetricAndZeroOnSelf)
{
    Rng rng(1);
    SignatureMatrix sig(3, 64);
    for (Index r = 0; r < 3; ++r)
        for (Index b = 0; b < 64; ++b)
            sig.setBit(r, b, rng.bernoulli(0.5f));
    EXPECT_EQ(sig.hamming(0, 0), 0);
    EXPECT_EQ(sig.hamming(0, 1), sig.hamming(1, 0));
}

TEST(SignHashTest, ParallelVectorsShareSignature)
{
    Rng rng(2);
    const SignHashParams params = SignHashParams::sample(64, 16, rng);
    Matrix x(2, 16);
    for (Index j = 0; j < 16; ++j) {
        x(0, j) = rng.normal();
        x(1, j) = 3.0f * x(0, j); // same direction
    }
    const SignatureMatrix sig = signHash(x, params);
    EXPECT_EQ(sig.hamming(0, 1), 0);
}

TEST(SignHashTest, OppositeVectorsAllBitsDiffer)
{
    Rng rng(3);
    const SignHashParams params = SignHashParams::sample(64, 16, rng);
    Matrix x(2, 16);
    for (Index j = 0; j < 16; ++j) {
        x(0, j) = rng.normal();
        x(1, j) = -x(0, j);
    }
    const SignatureMatrix sig = signHash(x, params);
    // Opposite signs except on measure-zero boundaries.
    EXPECT_GE(sig.hamming(0, 1), 62);
}

TEST(SignHashTest, HammingEstimatesAngle)
{
    // Orthogonal vectors should land near kappa/2 Hamming distance.
    Rng rng(4);
    const SignHashParams params =
        SignHashParams::sample(256, 32, rng);
    Matrix x(2, 32);
    x(0, 0) = 1.0f;
    x(1, 1) = 1.0f;
    const SignatureMatrix sig = signHash(x, params);
    EXPECT_NEAR(static_cast<double>(sig.hamming(0, 1)), 128.0, 30.0);
}

TEST(EstimateDotTest, Endpoints)
{
    EXPECT_NEAR(cta::elsa::estimateDot(0, 64, 2.0f, 3.0f), 6.0f,
                1e-5f);
    EXPECT_NEAR(cta::elsa::estimateDot(64, 64, 2.0f, 3.0f), -6.0f,
                1e-5f);
    EXPECT_NEAR(cta::elsa::estimateDot(32, 64, 2.0f, 3.0f), 0.0f,
                1e-5f);
}

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    Fixture()
        : params([] {
              Rng rng(5);
              return AttentionHeadParams::randomInit(32, 16, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = 128;
        profile.tokenDim = 32;
        profile.coarseClusters = 12;
        profile.fineClusters = 8;
        cta::nn::WorkloadGenerator gen(profile, 6);
        tokens = gen.sampleTokens();
    }
};

TEST(ElsaAttentionTest, OutputShape)
{
    Fixture fx;
    const ElsaResult r = elsaAttention(fx.tokens, fx.tokens,
                                       fx.params, ElsaConfig{});
    EXPECT_EQ(r.output.rows(), 128);
    EXPECT_EQ(r.output.cols(), 16);
    EXPECT_EQ(r.candidates.size(), 128u);
}

TEST(ElsaAttentionTest, ConservativeBeatsAggressiveAccuracy)
{
    Fixture fx;
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const ElsaResult cons = elsaAttention(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Conservative));
    const ElsaResult aggr = elsaAttention(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Aggressive));
    const auto err_c = cta::alg::compareOutputs(cons.output, exact);
    const auto err_a = cta::alg::compareOutputs(aggr.output, exact);
    EXPECT_LE(err_c.relativeFrobenius, err_a.relativeFrobenius + 1e-5f);
    EXPECT_LT(aggr.candidateRatio, cons.candidateRatio);
}

TEST(ElsaAttentionTest, ConservativeIsAccurate)
{
    Fixture fx;
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const ElsaResult r = elsaAttention(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Conservative));
    const auto err = cta::alg::compareOutputs(r.output, exact);
    EXPECT_GT(err.meanCosine, 0.99f);
}

TEST(ElsaAttentionTest, CandidatesWithinRange)
{
    Fixture fx;
    const ElsaResult r = elsaAttention(fx.tokens, fx.tokens,
                                       fx.params, ElsaConfig{});
    for (Index c : r.candidates) {
        EXPECT_GE(c, 1);
        EXPECT_LE(c, 128);
    }
    EXPECT_GT(r.candidateRatio, 0.0f);
    EXPECT_LE(r.candidateRatio, 1.0f);
}

TEST(ElsaAttentionTest, AggressivePrunes)
{
    Fixture fx;
    const ElsaResult r = elsaAttention(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Aggressive));
    EXPECT_LT(r.candidateRatio, 0.9f)
        << "aggressive preset must actually prune keys";
}

TEST(ElsaAttentionTest, PresetNames)
{
    EXPECT_EQ(elsaPresetName(ElsaPreset::Conservative),
              "ELSA-Conservative");
    EXPECT_EQ(elsaPresetName(ElsaPreset::Aggressive),
              "ELSA-Aggressive");
}

TEST(ElsaAttentionTest, QuadraticApproxOpsLinearAttnOps)
{
    // The structural contrast with CTA: ELSA still touches all m*n
    // pairs in its estimation stage.
    Fixture fx;
    const ElsaResult r = elsaAttention(fx.tokens, fx.tokens,
                                       fx.params, ElsaConfig{});
    EXPECT_GE(r.approxOps.cmps,
              static_cast<std::uint64_t>(128) * 128);
    EXPECT_LT(r.attnOps.macs,
              2ull * 128 * 128 * 16 + 1);
}

} // namespace

/**
 * @file
 * Tests for SessionManager: byte accounting, LRU eviction under a
 * budget, bit-identical restore through the manager, lifecycle
 * (remove) semantics, env-knob parsing, and the no-livelock
 * guarantee when the budget is smaller than a single session.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/rng.h"
#include "nn/workload.h"
#include "serve/batcher.h"
#include "serve/session_manager.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::serve::Batcher;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;
using cta::serve::SessionManager;
using cta::serve::StepStatus;
using cta::serve::SubmitResult;

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

Matrix
sampleTokens(Index n, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = kDim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

cta::nn::AttentionHeadParams
headParams(std::uint64_t seed = 2)
{
    Rng rng(seed);
    return cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim,
                                                    rng);
}

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

TEST(SessionManagerTest, AccountsBytesAndTracksStates)
{
    SessionManager manager(headParams(), ServeConfig{}, kDim,
                           /*mem_budget_bytes=*/0);
    EXPECT_EQ(manager.sessionCount(), 0);
    EXPECT_EQ(manager.liveStateBytes(), 0u);

    const Index a = manager.createSession(sampleTokens(48, 100));
    const Index b = manager.createSession();
    EXPECT_EQ(manager.sessionCount(), 2);
    EXPECT_TRUE(manager.isLive(a));
    EXPECT_TRUE(manager.isLive(b));

    // A prefilled session owns strictly more state than an empty one,
    // and the aggregate equals the per-session sum.
    const std::size_t bytes_a = manager.acquire(a).stateBytes();
    const std::size_t bytes_b = manager.acquire(b).stateBytes();
    EXPECT_GT(bytes_a, bytes_b);
    EXPECT_EQ(manager.liveStateBytes(), bytes_a + bytes_b);

    const auto stats = manager.stats();
    EXPECT_EQ(stats.created, 2);
    EXPECT_EQ(stats.live, 2);
    EXPECT_EQ(stats.evicted, 0);
    EXPECT_EQ(stats.liveBytes, bytes_a + bytes_b);
}

TEST(SessionManagerTest, EvictsLruFirstUnderBudget)
{
    // Size one session to compute a ~2.5-session budget.
    SessionManager sizer(headParams(), ServeConfig{}, kDim, 0);
    const std::size_t per_session =
        sizer.acquire(sizer.createSession(sampleTokens(32, 200)))
            .stateBytes();

    SessionManager enforced(headParams(), ServeConfig{}, kDim,
                            per_session * 5 / 2);
    std::vector<Index> eids;
    for (int i = 0; i < 4; ++i)
        eids.push_back(enforced.createSession(
            sampleTokens(32, 200 + static_cast<std::uint64_t>(i))));
    enforced.touch(eids[2]);
    enforced.touch(eids[0]);
    enforced.touch(eids[3]);
    enforced.touch(eids[1]);
    enforced.enforceBudget();

    EXPECT_TRUE(enforced.isEvicted(eids[2]));
    EXPECT_TRUE(enforced.isEvicted(eids[0]));
    EXPECT_TRUE(enforced.isLive(eids[3]));
    EXPECT_TRUE(enforced.isLive(eids[1]));
    EXPECT_LE(enforced.liveStateBytes(), per_session * 5 / 2);
    EXPECT_GT(enforced.evictedBlobBytes(), 0u);
    EXPECT_EQ(enforced.stats().evictions, 2u);
}

TEST(SessionManagerTest, RestoreThroughManagerIsBitIdentical)
{
    const Index prefill = 40, steps = 8;
    const Matrix tokens = sampleTokens(prefill + steps, 300);

    // Reference: never evicted.
    SessionManager ref_manager(headParams(), ServeConfig{}, kDim, 0);
    const Index ref = ref_manager.createSession(
        tokens.rowSlice(0, prefill));
    std::vector<Matrix> want;
    for (Index i = 0; i < steps; ++i)
        want.push_back(
            ref_manager.acquire(ref).step(tokens.row(prefill + i)));

    // Victim: evicted and restored between every step.
    SessionManager manager(headParams(), ServeConfig{}, kDim, 0);
    const Index id = manager.createSession(
        tokens.rowSlice(0, prefill));
    for (Index i = 0; i < steps; ++i) {
        manager.evict(id);
        ASSERT_TRUE(manager.isEvicted(id));
        const Matrix out =
            manager.acquire(id).step(tokens.row(prefill + i));
        ASSERT_TRUE(manager.isLive(id));
        EXPECT_TRUE(bitIdentical(
            out, want[static_cast<std::size_t>(i)]))
            << "step " << i;
    }
    EXPECT_EQ(manager.stats().evictions, manager.stats().restores);
}

TEST(SessionManagerTest, TinyBudgetDegradesToOneResidentNoLivelock)
{
    // Budget below a single session: the never-evict-MRU rule must
    // leave exactly the most recent session resident and still make
    // forward progress.
    SessionManager manager(headParams(), ServeConfig{}, kDim, 1);
    const Index a = manager.createSession(sampleTokens(32, 400));
    const Index b = manager.createSession(sampleTokens(32, 401));
    const Matrix decode = sampleTokens(4, 402);

    for (Index i = 0; i < 4; ++i) {
        (void)manager.acquire(a).step(decode.row(i));
        manager.enforceBudget();
        EXPECT_TRUE(manager.isLive(a));
        EXPECT_TRUE(manager.isEvicted(b));
        (void)manager.acquire(b).step(decode.row(i));
        manager.enforceBudget();
        EXPECT_TRUE(manager.isLive(b));
        EXPECT_TRUE(manager.isEvicted(a));
    }
    EXPECT_EQ(manager.stats().live, 1);
}

TEST(SessionManagerTest, RemoveFreesBytesAndBlocksAccess)
{
    SessionManager manager(headParams(), ServeConfig{}, kDim, 0);
    const Index a = manager.createSession(sampleTokens(32, 500));
    const Index b = manager.createSession(sampleTokens(32, 501));
    manager.evict(b);
    EXPECT_GT(manager.liveStateBytes(), 0u);
    EXPECT_GT(manager.evictedBlobBytes(), 0u);

    manager.removeSession(a);
    manager.removeSession(b);
    EXPECT_EQ(manager.liveStateBytes(), 0u);
    EXPECT_EQ(manager.evictedBlobBytes(), 0u);
    EXPECT_FALSE(manager.exists(a));
    EXPECT_FALSE(manager.exists(b));
    EXPECT_EQ(manager.stats().removed, 2);
    // Ids are not reused.
    EXPECT_EQ(manager.createSession(), 2);
}

TEST(SessionManagerDeathTest, InvalidAccessIsFatal)
{
    SessionManager manager(headParams(), ServeConfig{}, kDim, 0);
    const Index id = manager.createSession();
    manager.removeSession(id);
    EXPECT_EXIT(manager.acquire(id), ::testing::ExitedWithCode(1),
                "removed");
    EXPECT_EXIT(manager.acquire(99), ::testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(manager.touch(id), ::testing::ExitedWithCode(1),
                "removed");
    EXPECT_EXIT(manager.evict(id), ::testing::ExitedWithCode(1),
                "removed");
    EXPECT_EXIT(manager.removeSession(id),
                ::testing::ExitedWithCode(1), "removed");
}

TEST(SessionManagerDeathTest, EnvBudgetParsing)
{
    // Death-test subprocesses inherit the env we set here; each EXIT
    // clause runs in a child, so setenv/unsetenv around them is safe.
    setenv("CTA_MEM_BUDGET", "garbage", 1);
    EXPECT_EXIT(SessionManager::memBudgetFromEnv(),
                ::testing::ExitedWithCode(1), "CTA_MEM_BUDGET");
    setenv("CTA_MEM_BUDGET", "-5", 1);
    EXPECT_EXIT(SessionManager::memBudgetFromEnv(),
                ::testing::ExitedWithCode(1), "positive");
    setenv("CTA_MEM_BUDGET", "1048576", 1);
    EXPECT_EQ(SessionManager::memBudgetFromEnv(), 1048576u);
    // Human-scale suffixes parse through core::envBytes.
    setenv("CTA_MEM_BUDGET", "64M", 1);
    EXPECT_EQ(SessionManager::memBudgetFromEnv(),
              std::size_t{64} << 20);
    unsetenv("CTA_MEM_BUDGET");
    EXPECT_EQ(SessionManager::memBudgetFromEnv(), 0u);
}

TEST(ManagedBatcherDeathTest, AddSessionDelegatesToManager)
{
    // Managed batchers delegate session creation to the manager.
    SessionManager manager(headParams(), ServeConfig{}, kDim, 0);
    Batcher batcher(manager);
    EXPECT_EXIT(batcher.addSession(nullptr),
                ::testing::ExitedWithCode(1), "manager");
}

TEST(ManagedBatcherTest, FlushRestoresEvictedSessionsAndEnforces)
{
    const Index prefill = 32, steps = 6;

    // Reference outputs from an unmanaged batcher.
    std::vector<Matrix> want;
    {
        Batcher ref;
        auto session = std::make_unique<DecodeSession>(
            headParams(), ServeConfig{}, kDim);
        session->prefill(sampleTokens(prefill, 600));
        const Index id = ref.addSession(std::move(session));
        const Matrix decode = sampleTokens(steps, 601);
        for (Index i = 0; i < steps; ++i) {
            ref.submit(id, decode.row(i));
            auto results = ref.flush();
            ASSERT_EQ(results.size(), 1u);
            want.push_back(std::move(results[0].output));
        }
    }

    // Managed: two sessions under a one-session budget, alternating —
    // every flush restores one and evicts the other.
    SessionManager manager(headParams(), ServeConfig{}, kDim, 1);
    const Index a = manager.createSession(sampleTokens(prefill, 600));
    const Index b = manager.createSession(sampleTokens(prefill, 600));
    Batcher batcher(manager);
    const Matrix decode = sampleTokens(steps, 601);
    for (Index i = 0; i < steps; ++i) {
        ASSERT_EQ(batcher.trySubmit(a, decode.row(i)),
                  SubmitResult::Accepted);
        ASSERT_EQ(batcher.trySubmit(b, decode.row(i)),
                  SubmitResult::Accepted);
        const auto results = batcher.flush();
        ASSERT_EQ(results.size(), 2u);
        for (const auto &r : results) {
            EXPECT_EQ(r.status, StepStatus::Ok);
            EXPECT_TRUE(bitIdentical(
                r.output, want[static_cast<std::size_t>(i)]))
                << "step " << i;
        }
    }
    const auto stats = manager.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.restores, 0u);
    EXPECT_EQ(stats.live, 1);

    // removeSession forwards to the manager and rejects resubmission.
    batcher.removeSession(a);
    EXPECT_FALSE(manager.exists(a));
    EXPECT_EQ(batcher.trySubmit(a, decode.row(0)),
              SubmitResult::SessionRemoved);
}

TEST(SessionManagerForkTest, ForkSharesPagesAndStepsBitIdentically)
{
    const Index prefill = 64, steps = 4;
    const Matrix prompt = sampleTokens(prefill, 700);
    const Matrix decode = sampleTokens(steps, 701);

    // Dense 256-byte pages so sharing is visible at this small scale.
    SessionManager manager(headParams(), ServeConfig{}, kDim, 0, 256);
    const Index parent = manager.createSession(prompt);
    const std::size_t parent_bytes =
        manager.acquire(parent).stateBytes();
    const Index c1 = manager.forkSession(parent);
    const Index c2 = manager.forkSession(parent);

    // Freshly forked children share every prefix page: their private
    // footprint is a small fraction of a full copy, and the arena
    // reports shared pages.
    const auto stats = manager.stats();
    EXPECT_EQ(stats.forks, 2u);
    EXPECT_EQ(stats.prefixes, 1);
    EXPECT_EQ(stats.prefixesLive, 1);
    EXPECT_GT(stats.sharedPageBytes, 0u);
    EXPECT_LT(manager.acquire(c1).stateBytes(), parent_bytes / 4);
    // Three sessions over one prompt must cost far less than three
    // full copies.
    EXPECT_LT(manager.residentBytes(), 2 * 3 * parent_bytes / 2);

    // Decode through the fork must match an unshared session bit for
    // bit, for both children (same stream -> same bits).
    SessionManager solo(headParams(), ServeConfig{}, kDim, 0, 256);
    const Index twin = solo.createSession(prompt);
    for (Index i = 0; i < steps; ++i) {
        const Matrix want = solo.acquire(twin).step(decode.row(i));
        EXPECT_TRUE(bitIdentical(
            manager.acquire(c1).step(decode.row(i)), want))
            << "child 1 step " << i;
        EXPECT_TRUE(bitIdentical(
            manager.acquire(c2).step(decode.row(i)), want))
            << "child 2 step " << i;
    }
}

TEST(SessionManagerForkTest, ForkedEvictRestoreIsBitIdentical)
{
    const Index prefill = 48, steps = 6;
    const Matrix prompt = sampleTokens(prefill, 710);
    const Matrix decode = sampleTokens(steps, 711);

    SessionManager manager(headParams(), ServeConfig{}, kDim, 0, 256);
    const Index parent = manager.createSession(prompt);
    const Index victim = manager.forkSession(parent);
    const Index twin = manager.forkSession(parent);

    // The victim is squeezed through its delta blob between every
    // step; the twin never is. Same stream, same bits.
    for (Index i = 0; i < steps; ++i) {
        manager.evict(victim);
        ASSERT_TRUE(manager.isEvicted(victim));
        const Matrix got =
            manager.acquire(victim).step(decode.row(i));
        const Matrix want =
            manager.acquire(twin).step(decode.row(i));
        EXPECT_TRUE(bitIdentical(got, want)) << "step " << i;
    }
    // Forked snapshots are deltas: far smaller than the standalone
    // parent's full snapshot of the same prompt.
    manager.evict(victim);
    const std::size_t delta_blob = manager.evictedBlobBytes();
    manager.evict(parent);
    const std::size_t full_blob =
        manager.evictedBlobBytes() - delta_blob;
    EXPECT_LT(delta_blob, full_blob / 2);
}

TEST(SessionManagerForkTest, PrefixEvictsOnlyWhenColdAndResolvesBack)
{
    const Index prefill = 48, steps = 3;
    const Matrix prompt = sampleTokens(prefill, 720);
    const Matrix decode = sampleTokens(steps, 721);

    SessionManager manager(headParams(), ServeConfig{}, kDim, 0, 256);
    const Index parent = manager.createSession(prompt);
    const Index child = manager.forkSession(parent);
    ASSERT_EQ(manager.prefixCount(), 1);
    ASSERT_TRUE(manager.isPrefixLive(0));

    // A prefix with a live forked session is hot: not evictable.
    EXPECT_FALSE(manager.evictPrefixIfCold(0));
    manager.evict(child);
    EXPECT_TRUE(manager.evictPrefixIfCold(0));
    EXPECT_FALSE(manager.isPrefixLive(0));
    EXPECT_EQ(manager.stats().prefixEvictions, 1u);
    EXPECT_GT(manager.stats().prefixBlobBytes, 0u);

    // Touching the child resolves the prefix back from its blob and
    // the decode is still bit-identical to an unshared twin.
    SessionManager solo(headParams(), ServeConfig{}, kDim, 0, 256);
    const Index twin = solo.createSession(prompt);
    for (Index i = 0; i < steps; ++i) {
        const Matrix got =
            manager.acquire(child).step(decode.row(i));
        const Matrix want = solo.acquire(twin).step(decode.row(i));
        EXPECT_TRUE(bitIdentical(got, want)) << "step " << i;
    }
    EXPECT_TRUE(manager.isPrefixLive(0));
    EXPECT_EQ(manager.stats().prefixRestores, 1u);
}

} // namespace

/**
 * @file
 * Integration tests for the full CTA accelerator model: functional
 * equivalence with the algorithm library, area/energy breakdown
 * sanity against the paper's Fig. 14/15, and module cross-checks.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta_accel/accelerator.h"
#include "nn/workload.h"

namespace {

using cta::accel::AreaBreakdown;
using cta::accel::CtaAccelerator;
using cta::accel::CtaAccelResult;
using cta::accel::HwConfig;
using cta::alg::CtaConfig;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;
using cta::sim::TechParams;

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;
    CtaConfig algConfig;

    Fixture()
        : params([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(64, 64, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = 256;
        profile.tokenDim = 64;
        profile.coarseClusters = 30;
        profile.fineClusters = 18;
        profile.noiseScale = 0.04f;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
        algConfig.w0 = 0.8f;
        algConfig.w1 = 0.8f;
        algConfig.w2 = 0.4f;
    }
};

TEST(AcceleratorTest, FunctionalOutputMatchesAlgorithmLibrary)
{
    Fixture fx;
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const CtaAccelResult result =
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    const auto direct =
        ctaAttention(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    EXPECT_LT(maxAbsDiff(result.algorithm.output, direct.output),
              1e-6f);
}

TEST(AcceleratorTest, CimAgreesWithAlgorithm)
{
    // The internal CTA_ASSERT in run() cross-checks the CIM cluster
    // counts against the algorithm library; reaching here means the
    // hardware-faithful trie reproduced the software clustering.
    Fixture fx;
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const auto result =
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    EXPECT_GT(result.algorithm.stats.k0, 0);
}

TEST(AcceleratorTest, AreaMatchesPaperFig15)
{
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const AreaBreakdown area = accel.area();
    // Paper: total 2.150 mm^2, SA = 74.6 %.
    EXPECT_NEAR(area.total(), 2.150, 0.10);
    EXPECT_NEAR(area.saMm2 / area.total(), 0.746, 0.03);
    // Auxiliary modules are individually small.
    EXPECT_LT(area.cimMm2, 0.1);
    EXPECT_LT(area.cagMm2, 0.1);
    EXPECT_LT(area.pagMm2, 0.12);
}

TEST(AcceleratorTest, EnergyBreakdownShapeMatchesFig14)
{
    Fixture fx;
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const auto result =
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    const auto &energy = result.report.energy;
    const double total = energy.total();
    ASSERT_GT(total, 0.0);
    // Paper: ~62 % SA, ~29 % memory, ~9 % auxiliary. Generous bands.
    EXPECT_GT(energy.computePj / total, 0.45);
    EXPECT_LT(energy.computePj / total, 0.80);
    EXPECT_GT(energy.memoryPj / total, 0.10);
    EXPECT_LT(energy.memoryPj / total, 0.45);
    EXPECT_LT(energy.auxiliaryPj / total, 0.20);
}

TEST(AcceleratorTest, LatencyConsistentWithMapper)
{
    Fixture fx;
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const auto result =
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    EXPECT_EQ(result.report.latency.total(),
              result.mapping.latency.total());
    EXPECT_GT(result.report.latency.total(), 0u);
}

TEST(AcceleratorTest, TrafficAccounted)
{
    Fixture fx;
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    const auto result =
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig);
    EXPECT_GT(result.report.traffic.reads, 0u);
    EXPECT_GT(result.report.traffic.writes, 0u);
    EXPECT_EQ(result.report.traffic.total(),
              result.tokenKvAccesses + result.weightAccesses +
                  result.resultAccesses);
}

TEST(AcceleratorTest, LongerSequencesMoreTrafficAndCycles)
{
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    Rng rng(5);
    const auto params = AttentionHeadParams::randomInit(64, 64, rng);
    CtaConfig config;
    config.w0 = config.w1 = 0.8f;
    config.w2 = 0.4f;
    std::uint64_t prev_traffic = 0;
    cta::core::Cycles prev_cycles = 0;
    for (Index n : {128, 256, 384, 512}) {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = n;
        profile.tokenDim = 64;
        cta::nn::WorkloadGenerator gen(profile, 7);
        const Matrix x = gen.sampleTokens();
        const auto result = accel.run(x, x, params, config);
        EXPECT_GT(result.report.traffic.total(), prev_traffic);
        EXPECT_GT(result.report.latency.total(), prev_cycles);
        prev_traffic = result.report.traffic.total();
        prev_cycles = result.report.latency.total();
    }
}

TEST(AcceleratorTest, RejectsOversizedSequence)
{
    HwConfig config = HwConfig::paperDefault();
    config.maxSeqLen = 64;
    const CtaAccelerator accel(config, TechParams::smic40nmClass());
    Fixture fx; // 256 tokens
    EXPECT_DEATH(
        accel.run(fx.tokens, fx.tokens, fx.params, fx.algConfig),
        "exceeds configured maximum");
}

TEST(AcceleratorTest, MemorySizingFormulas)
{
    const CtaAccelerator accel(HwConfig::paperDefault(),
                               TechParams::smic40nmClass());
    // n = 512, d = 64, 2-byte words.
    EXPECT_NEAR(accel.tokenKvMemKb(), 64.0, 1e-9);
    EXPECT_NEAR(accel.resultMemKb(), 96.0, 1e-9);
    EXPECT_GT(accel.weightMemKb(), 20.0);
    EXPECT_LT(accel.weightMemKb(), 40.0);
}

} // namespace

/**
 * @file
 * Tests for the logging/assertion layer: message formatting, the
 * panic/fatal distinction (abort vs exit), and the assert/require
 * macro contracts.
 */

#include <gtest/gtest.h>

#include "core/logging.h"

namespace {

TEST(LoggingTest, ConcatFormatsMixedTypes)
{
    const std::string text =
        cta::core::detail::concat("x=", 42, " y=", 2.5, " z=", 'q');
    EXPECT_EQ(text, "x=42 y=2.5 z=q");
}

TEST(LoggingTest, ConcatEmpty)
{
    EXPECT_EQ(cta::core::detail::concat(), "");
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(CTA_FATAL("bad config ", 7),
                ::testing::ExitedWithCode(1), "bad config 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(CTA_PANIC("invariant ", "broken"),
                 "invariant broken");
}

TEST(LoggingDeathTest, RequireFailureIsFatal)
{
    const int value = 3;
    EXPECT_EXIT(CTA_REQUIRE(value > 5, "value was ", value),
                ::testing::ExitedWithCode(1),
                "requirement failed: value > 5");
}

TEST(LoggingDeathTest, RequirePassesSilently)
{
    CTA_REQUIRE(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(LoggingDeathTest, MessagesIncludeSourceLocation)
{
    EXPECT_EXIT(CTA_FATAL("locate me"),
                ::testing::ExitedWithCode(1), "logging_test.cc");
}

TEST(LoggingTest, WarnDoesNotTerminate)
{
    CTA_WARN("just a warning: ", 1);
    SUCCEED();
}

} // namespace

/**
 * @file
 * Tests for the functional (cycle-by-cycle) systolic array: both
 * Fig. 8 dataflows must compute exact matrix products, and their
 * emergence cycles must match the analytical SystolicArrayModel's
 * stream + skew accounting — the executable proof that the timing
 * model is consistent with the dataflow the paper describes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.h"
#include "cta/lsh.h"
#include "cta_accel/sa_functional.h"
#include "cta_accel/systolic_array.h"

namespace {

using cta::accel::FunctionalRun;
using cta::accel::FunctionalSystolicArray;
using cta::accel::HwConfig;
using cta::accel::SystolicArrayModel;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;

TEST(SaFunctionalTest, Dataflow1ComputesDotProducts)
{
    Rng rng(1);
    const FunctionalSystolicArray sa(8, 16);
    const Matrix stationary = Matrix::randomNormal(6, 16, rng);
    const Matrix streaming = Matrix::randomNormal(20, 16, rng);
    const FunctionalRun run = sa.runDataflow1(stationary, streaming);
    const Matrix expect = matmulTransB(streaming, stationary);
    EXPECT_LT(maxAbsDiff(run.result, expect), 1e-4f);
}

TEST(SaFunctionalTest, Dataflow1EmergenceCycleFormula)
{
    // Last output: token (T-1) leaves column (cols-1) at cycle
    // (T-1) + (cols-1) + (d-1): exactly the stream + skew charge of
    // the analytical model.
    Rng rng(2);
    const Index cols = 5, d = 12, tokens = 9;
    const FunctionalSystolicArray sa(8, d);
    const FunctionalRun run = sa.runDataflow1(
        Matrix::randomNormal(cols, d, rng),
        Matrix::randomNormal(tokens, d, rng));
    EXPECT_EQ(run.lastOutputCycle,
              static_cast<cta::core::Cycles>(
                  (tokens - 1) + (cols - 1) + (d - 1)));
}

TEST(SaFunctionalTest, Dataflow1MatchesAnalyticalSkewBound)
{
    // The analytical model charges stream + (height + width) skew;
    // the functional array must never take longer than that.
    HwConfig hw;
    hw.saWidth = 8;
    hw.saHeight = 32;
    const SystolicArrayModel model(hw);
    const FunctionalSystolicArray sa(hw.saWidth, hw.saHeight);
    Rng rng(3);
    const Index tokens = 40;
    const auto run = sa.runDataflow1(
        Matrix::randomNormal(hw.saWidth, hw.saHeight, rng),
        Matrix::randomNormal(tokens, hw.saHeight, rng));
    const auto analytical = model.scoreStep(tokens, "score");
    EXPECT_LE(run.lastOutputCycle,
              analytical.streamCycles + analytical.skewCycles);
}

TEST(SaFunctionalTest, Dataflow1ReproducesLshProjections)
{
    // The LSH phase is dataflow 1 with A stationary: H raw
    // projections X . A^T must match the algorithm library's
    // pre-floor values.
    Rng rng(4);
    const Index d = 16, n = 24, l = 6;
    const auto params = cta::alg::LshParams::sample(l, d, 1.0f, rng);
    const Matrix x = Matrix::randomNormal(n, d, rng);
    const FunctionalSystolicArray sa(8, d);
    const auto run = sa.runDataflow1(params.a, x);
    // Apply PPE post-processing (add b, scale 1/w, floor) and
    // compare against hashTokens.
    const auto codes = cta::alg::hashTokens(x, params);
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < l; ++j) {
            const auto hashed = static_cast<std::int32_t>(std::floor(
                (run.result(i, j) + params.b(j, 0)) / params.w));
            EXPECT_EQ(hashed, codes(i, j)) << i << "," << j;
        }
    }
}

TEST(SaFunctionalTest, Dataflow2ComputesMatrixProduct)
{
    Rng rng(5);
    const FunctionalSystolicArray sa(8, 16);
    const Matrix ap = Matrix::randomUniform(6, 30, rng, 0, 1);
    const Matrix vb = Matrix::randomNormal(30, 12, rng);
    const FunctionalRun run = sa.runDataflow2(ap, vb);
    const Matrix expect = matmul(ap, vb);
    EXPECT_LT(maxAbsDiff(run.result, expect), 1e-4f);
}

TEST(SaFunctionalTest, Dataflow2EmergenceCycleFormula)
{
    Rng rng(6);
    const Index rows = 7, d = 10, inner = 25;
    const FunctionalSystolicArray sa(8, 16);
    const auto run = sa.runDataflow2(
        Matrix::randomNormal(rows, inner, rng),
        Matrix::randomNormal(inner, d, rng));
    // Last accumulation: tau = inner-1 at PE (rows-1, d-1).
    EXPECT_EQ(run.lastOutputCycle,
              static_cast<cta::core::Cycles>(
                  (inner - 1) + (rows - 1) + (d - 1)));
}

TEST(SaFunctionalTest, RejectsOversizedOperands)
{
    const FunctionalSystolicArray sa(4, 8);
    Rng rng(7);
    EXPECT_DEATH(sa.runDataflow1(Matrix::randomNormal(5, 8, rng),
                                 Matrix::randomNormal(3, 8, rng)),
                 "stationary operand");
    EXPECT_DEATH(sa.runDataflow2(Matrix::randomNormal(5, 6, rng),
                                 Matrix::randomNormal(6, 8, rng)),
                 "exceeds SA width");
}

TEST(SaFunctionalTest, SingleElementGrid)
{
    const FunctionalSystolicArray sa(1, 1);
    Matrix stationary(1, 1);
    stationary(0, 0) = 3.0f;
    Matrix streaming(2, 1);
    streaming(0, 0) = 2.0f;
    streaming(1, 0) = -1.0f;
    const auto run = sa.runDataflow1(stationary, streaming);
    EXPECT_FLOAT_EQ(run.result(0, 0), 6.0f);
    EXPECT_FLOAT_EQ(run.result(1, 0), -3.0f);
}

/** Property sweep: dataflow 1 equals GEMM across random shapes. */
class Dataflow1Property
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(Dataflow1Property, MatchesGemm)
{
    const auto [cols, d, tokens] = GetParam();
    Rng rng(100 + cols + d + tokens);
    const FunctionalSystolicArray sa(cols, d);
    const Matrix stationary = Matrix::randomNormal(cols, d, rng);
    const Matrix streaming = Matrix::randomNormal(tokens, d, rng);
    const auto run = sa.runDataflow1(stationary, streaming);
    EXPECT_LT(relativeError(run.result,
                            matmulTransB(streaming, stationary)),
              1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Dataflow1Property,
    ::testing::Values(std::make_tuple(1, 4, 4),
                      std::make_tuple(8, 64, 8),
                      std::make_tuple(3, 7, 11),
                      std::make_tuple(8, 16, 100),
                      std::make_tuple(2, 2, 2)));

} // namespace

/**
 * @file
 * Tests for the A^3 baseline reconstruction: sorted-key
 * preprocessing, greedy candidate search, approximation quality and
 * the accelerator model.
 */

#include <gtest/gtest.h>

#include "a3/a3_accel.h"
#include "a3/a3_attention.h"
#include "core/rng.h"
#include "core/stats.h"
#include "cta/error.h"
#include "nn/workload.h"

namespace {

using cta::a3::A3Accelerator;
using cta::a3::A3Config;
using cta::a3::A3HwConfig;
using cta::a3::A3Result;
using cta::a3::SortedKeys;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;
using cta::sim::TechParams;

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    explicit Fixture(Index n = 128)
        : params([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(32, 16, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = n;
        profile.tokenDim = 32;
        profile.coarseClusters = 12;
        profile.fineClusters = 8;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
    }
};

TEST(SortedKeysTest, ColumnsSortedDescending)
{
    Rng rng(3);
    const Matrix k = Matrix::randomNormal(20, 5, rng);
    const SortedKeys sorted(k);
    for (Index j = 0; j < 5; ++j) {
        for (Index r = 1; r < 20; ++r) {
            EXPECT_GE(sorted.rankToValue(j, r - 1),
                      sorted.rankToValue(j, r));
        }
    }
}

TEST(SortedKeysTest, RanksAreAPermutation)
{
    Rng rng(4);
    const Matrix k = Matrix::randomNormal(16, 3, rng);
    const SortedKeys sorted(k);
    for (Index j = 0; j < 3; ++j) {
        std::vector<int> seen(16, 0);
        for (Index r = 0; r < 16; ++r)
            ++seen[static_cast<std::size_t>(sorted.rankToKey(j, r))];
        for (int count : seen)
            EXPECT_EQ(count, 1);
    }
}

TEST(A3AttentionTest, OutputShape)
{
    Fixture fx;
    const A3Result r =
        a3Attention(fx.tokens, fx.tokens, fx.params, A3Config{});
    EXPECT_EQ(r.output.rows(), 128);
    EXPECT_EQ(r.output.cols(), 16);
    EXPECT_GT(r.candidateRatio, 0.0f);
    EXPECT_LE(r.candidateRatio, 1.0f);
}

TEST(A3AttentionTest, MoreRoundsMoreAccurate)
{
    Fixture fx;
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    A3Config few, many;
    few.searchRounds = 16;
    few.candidates = 8;
    many.searchRounds = 512;
    many.candidates = 64;
    const auto r_few =
        a3Attention(fx.tokens, fx.tokens, fx.params, few);
    const auto r_many =
        a3Attention(fx.tokens, fx.tokens, fx.params, many);
    const auto err_few =
        cta::alg::compareOutputs(r_few.output, exact);
    const auto err_many =
        cta::alg::compareOutputs(r_many.output, exact);
    EXPECT_LT(err_many.relativeFrobenius,
              err_few.relativeFrobenius);
}

TEST(A3AttentionTest, ConservativeConfigIsAccurate)
{
    Fixture fx;
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    A3Config config;
    config.searchRounds = 1024;
    config.candidates = 96;
    const auto r =
        a3Attention(fx.tokens, fx.tokens, fx.params, config);
    const auto err = cta::alg::compareOutputs(r.output, exact);
    EXPECT_GT(err.meanCosine, 0.95f);
}

TEST(A3AttentionTest, CandidateCountRespected)
{
    Fixture fx;
    A3Config config;
    config.searchRounds = 256;
    config.candidates = 8;
    const auto r =
        a3Attention(fx.tokens, fx.tokens, fx.params, config);
    EXPECT_LE(r.candidateRatio, 8.0f / 128.0f + 1e-5f);
}

TEST(A3AttentionTest, GreedySearchRecallsTopKey)
{
    // The greedy component search must recover each query's true
    // highest-scoring key far more often than a random candidate set
    // of the same size would (chance = candidates / n = 12.5 %).
    Fixture fx;
    A3Config config;
    config.searchRounds = 256;
    config.candidates = 16;
    const auto trace = cta::nn::exactAttentionTraced(
        fx.tokens, fx.tokens, fx.params);

    // Recompute the candidate sets the algorithm would select by
    // checking which keys carry softmax mass in the A^3 output: a
    // key outside the candidate set contributes exactly zero, so
    // compare the A^3 output against the exact top-1-only output.
    const auto r =
        a3Attention(fx.tokens, fx.tokens, fx.params, config);
    int recalled = 0;
    for (Index i = 0; i < 128; ++i) {
        Index best = 0;
        for (Index j = 1; j < 128; ++j)
            if (trace.scores(i, j) > trace.scores(i, best))
                best = j;
        // If the top key was selected, the output row correlates
        // strongly with an attention distribution containing it; use
        // the cheap necessary condition that the A^3 row is closer
        // to the exact row than to the uniform value mean.
        const cta::core::Real cos = cta::core::cosineSimilarity(
            r.output.row(i), trace.output.row(i));
        recalled += cos > 0.8f ? 1 : 0;
    }
    // Well above the 12.5 % chance rate.
    EXPECT_GT(recalled, 40);
}

TEST(A3AccelTest, QuerySerialTiming)
{
    const A3Accelerator accel(A3HwConfig::paperDefault(),
                              TechParams::smic40nmClass());
    Fixture small(64);
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 256;
    profile.tokenDim = 32;
    cta::nn::WorkloadGenerator gen(profile, 9);
    Fixture large(256);
    A3Config config;
    const auto r_small = accel.run(small.tokens, small.tokens,
                                   small.params, config, "A3");
    const auto r_large = accel.run(large.tokens, large.tokens,
                                   large.params, config, "A3");
    // Per-query cost is ~constant, so latency scales ~linearly in m
    // (plus the n log n preprocessing).
    const double ratio =
        static_cast<double>(r_large.report.latency.total()) /
        static_cast<double>(r_small.report.latency.total());
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(A3AccelTest, EnergyAndTrafficPositive)
{
    const A3Accelerator accel(A3HwConfig::paperDefault(),
                              TechParams::smic40nmClass());
    Fixture fx;
    const auto r = accel.run(fx.tokens, fx.tokens, fx.params,
                             A3Config{}, "A3");
    EXPECT_GT(r.report.energy.total(), 0.0);
    EXPECT_GT(r.report.traffic.reads, 0u);
    EXPECT_GT(r.report.areaMm2, 0.0);
}

// The cycle and SRAM-sizing expressions divide by freqGhz and scale
// with maxSeqLen; degenerate values must die at construction.
TEST(A3AccelTest, RejectsDegenerateHwConfig)
{
    auto zero_freq = A3HwConfig::paperDefault();
    zero_freq.freqGhz = 0;
    EXPECT_DEATH(A3Accelerator(zero_freq,
                               TechParams::smic40nmClass()),
                 "A3 clock frequency must be positive");
    auto zero_mem = A3HwConfig::paperDefault();
    zero_mem.maxSeqLen = 0;
    EXPECT_DEATH(A3Accelerator(zero_mem,
                               TechParams::smic40nmClass()),
                 "A3 memory sizing must be positive");
    auto zero_lanes = A3HwConfig::paperDefault();
    zero_lanes.searchLanes = 0;
    EXPECT_DEATH(A3Accelerator(zero_lanes,
                               TechParams::smic40nmClass()),
                 "invalid A3 configuration");
}

} // namespace

/**
 * @file
 * Tests for full-matrix recovery (paper eq. 6 / Fig. 5): the
 * recovered scores must equal the per-pair sums, the recovered
 * probabilities must be row-stochastic and close to exact attention
 * probabilities, and — the punchline identity — attention computed
 * with the recovered full probability matrix against approximate
 * values must equal CTA's aggregated output path.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "cta/recovery.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::alg::CtaResult;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;

struct Fixture
{
    Matrix tokens;
    cta::nn::AttentionHeadParams params;
    CtaResult result;

    Fixture()
        : params([] {
              Rng rng(1);
              return cta::nn::AttentionHeadParams::randomInit(16, 16,
                                                              rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = 96;
        profile.tokenDim = 16;
        profile.coarseClusters = 10;
        profile.fineClusters = 6;
        profile.noiseScale = 0.02f;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
        CtaConfig config;
        config.subtractRowMax = false;
        result = ctaAttention(tokens, tokens, params, config);
    }
};

TEST(RecoveryTest, ScoresAreEqSixSums)
{
    Fixture fx;
    const Matrix recovered =
        recoverScores(fx.result.inter, fx.tokens.rows());
    const Index k1 = fx.result.stats.k1;
    for (Index i = 0; i < 5; ++i) {
        for (Index j = 0; j < 5; ++j) {
            const Index c0 = fx.result.inter.queryComp
                .table[static_cast<std::size_t>(i)];
            const Index c1 = fx.result.inter.kvComp.level1
                .table[static_cast<std::size_t>(j)];
            const Index c2 = k1 + fx.result.inter.kvComp.level2
                .table[static_cast<std::size_t>(j)];
            EXPECT_FLOAT_EQ(recovered(i, j),
                            fx.result.inter.sBar(c0, c1) +
                                fx.result.inter.sBar(c0, c2));
        }
    }
}

TEST(RecoveryTest, RecoveredScoresApproximateExact)
{
    Fixture fx;
    const auto trace = cta::nn::exactAttentionTraced(
        fx.tokens, fx.tokens, fx.params);
    const Matrix recovered =
        recoverScores(fx.result.inter, fx.tokens.rows());
    EXPECT_LT(relativeError(recovered, trace.scores), 0.25f);
}

TEST(RecoveryTest, ProbabilitiesAreRowStochastic)
{
    Fixture fx;
    const Matrix probs =
        recoverProbabilities(fx.result.inter, fx.tokens.rows());
    for (Index i = 0; i < probs.rows(); ++i) {
        Real sum = 0;
        for (Index j = 0; j < probs.cols(); ++j) {
            EXPECT_GE(probs(i, j), 0.0f);
            sum += probs(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(RecoveryTest, FullPathEqualsAggregatedPath)
{
    // The identity behind eq. 7/8: multiplying the recovered full
    // probability matrix with the approximate values V~ (eq. 4)
    // reproduces CTA's aggregated output exactly — probability
    // aggregation is just the factored form of this product.
    Fixture fx;
    const Matrix probs =
        recoverProbabilities(fx.result.inter, fx.tokens.rows());
    // V~_j = Vb[CT1[j]] + Vb[k1 + CT2[j]].
    const auto n = fx.tokens.rows();
    const Index d = fx.result.stats.d;
    const Index k1 = fx.result.stats.k1;
    Matrix v_approx(n, d);
    for (Index j = 0; j < n; ++j) {
        const Index c1 = fx.result.inter.kvComp.level1
            .table[static_cast<std::size_t>(j)];
        const Index c2 = k1 + fx.result.inter.kvComp.level2
            .table[static_cast<std::size_t>(j)];
        for (Index c = 0; c < d; ++c)
            v_approx(j, c) = fx.result.inter.vBar(c1, c) +
                             fx.result.inter.vBar(c2, c);
    }
    const Matrix full_path = matmul(probs, v_approx);
    EXPECT_LT(relativeError(full_path, fx.result.output), 2e-3f)
        << "aggregation must be the factored form of the full "
           "probability product";
}

TEST(RecoveryTest, OutputInvariantToRowMaxFlag)
{
    // Recovered probabilities are softmax-normalized, so the PPE
    // max-subtraction variant recovers the same matrix.
    Fixture fx;
    CtaConfig with_max;
    with_max.subtractRowMax = true;
    const CtaResult shifted =
        ctaAttention(fx.tokens, fx.tokens, fx.params, with_max);
    const Matrix p_plain =
        recoverProbabilities(fx.result.inter, fx.tokens.rows());
    const Matrix p_shifted =
        recoverProbabilities(shifted.inter, fx.tokens.rows());
    EXPECT_LT(maxAbsDiff(p_plain, p_shifted), 1e-4f);
}

} // namespace

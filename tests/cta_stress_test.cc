/**
 * @file
 * Stress and invariant tests for the full CTA pipeline across random
 * shapes and hostile inputs: outputs must stay finite, compression
 * tables must stay consistent partitions, and the pipeline must
 * behave sensibly at degenerate extremes (single token, constant
 * tokens, huge magnitudes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::alg::CtaResult;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;

bool
allFinite(const Matrix &m)
{
    for (Index i = 0; i < m.size(); ++i)
        if (!std::isfinite(m.data()[i]))
            return false;
    return true;
}

/** The cluster tables must partition [0, n) onto [0, k). */
void
checkPartition(const std::vector<Index> &table, Index k, Index n)
{
    ASSERT_EQ(static_cast<Index>(table.size()), n);
    std::vector<int> used(static_cast<std::size_t>(k), 0);
    for (Index c : table) {
        ASSERT_GE(c, 0);
        ASSERT_LT(c, k);
        used[static_cast<std::size_t>(c)] = 1;
    }
    for (int flag : used)
        EXPECT_EQ(flag, 1) << "empty cluster";
}

class CtaShapeStress
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CtaShapeStress, InvariantsHoldAcrossShapes)
{
    const auto [m, n, d] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 1000 + n * 10 + d));
    const auto params = AttentionHeadParams::randomInit(d, d, rng);
    const Matrix xq = Matrix::randomNormal(m, d, rng, 0, 0.5f);
    const Matrix xkv = Matrix::randomNormal(n, d, rng, 0, 0.5f);
    CtaConfig config;
    config.w0 = 0.7f;
    config.w1 = 0.7f;
    config.w2 = 0.35f;
    const CtaResult r = ctaAttention(xq, xkv, params, config);

    EXPECT_EQ(r.output.rows(), m);
    EXPECT_EQ(r.output.cols(), d);
    EXPECT_TRUE(allFinite(r.output));
    checkPartition(r.inter.queryComp.table, r.stats.k0, m);
    checkPartition(r.inter.kvComp.level1.table, r.stats.k1, n);
    checkPartition(r.inter.kvComp.level2.table, r.stats.k2, n);
    // Cluster counts never exceed token counts.
    EXPECT_LE(r.stats.k0, m);
    EXPECT_LE(r.stats.k1, n);
    EXPECT_LE(r.stats.k2, n);
    // AP is non-negative (sums of exponentials).
    for (Index i = 0; i < r.inter.ap.size(); ++i)
        EXPECT_GE(r.inter.ap.data()[i], 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CtaShapeStress,
    ::testing::Values(std::make_tuple(1, 1, 4),
                      std::make_tuple(1, 64, 8),
                      std::make_tuple(64, 1, 8),
                      std::make_tuple(17, 33, 16),
                      std::make_tuple(128, 128, 32),
                      std::make_tuple(5, 512, 8),
                      std::make_tuple(512, 5, 8)));

TEST(CtaStressTest, ConstantTokensCollapseToOneCluster)
{
    Rng rng(1);
    const auto params = AttentionHeadParams::randomInit(8, 8, rng);
    const Matrix x(32, 8, 1.5f); // all tokens identical
    const CtaResult r = ctaAttention(x, x, params, CtaConfig{});
    EXPECT_EQ(r.stats.k0, 1);
    EXPECT_EQ(r.stats.k1, 1);
    EXPECT_EQ(r.stats.k2, 1);
    // Output equals exact attention exactly (one token repeated).
    const Matrix exact = exactAttention(x, x, params);
    EXPECT_LT(maxAbsDiff(r.output, exact), 1e-4f);
}

TEST(CtaStressTest, LargeMagnitudeTokensStayFinite)
{
    Rng rng(2);
    const auto params = AttentionHeadParams::randomInit(8, 8, rng);
    const Matrix x = Matrix::randomNormal(64, 8, rng, 0, 30.0f);
    CtaConfig config;
    config.w1 = 10.0f;
    config.w0 = 10.0f;
    config.w2 = 5.0f;
    const CtaResult r = ctaAttention(x, x, params, config);
    EXPECT_TRUE(allFinite(r.output))
        << "row-max subtraction must keep exponentials bounded";
}

TEST(CtaStressTest, RowMaxGuardsAgainstOverflow)
{
    // Without max subtraction, large scores overflow float exp; the
    // hardware path (subtractRowMax = true) must survive inputs the
    // naive path cannot.
    Rng rng(3);
    const auto params = AttentionHeadParams::randomInit(8, 8, rng);
    const Matrix x = Matrix::randomNormal(48, 8, rng, 0, 12.0f);
    CtaConfig guarded;
    guarded.subtractRowMax = true;
    guarded.w0 = guarded.w1 = 4.0f;
    guarded.w2 = 2.0f;
    const CtaResult r = ctaAttention(x, x, params, guarded);
    EXPECT_TRUE(allFinite(r.output));
}

TEST(CtaStressTest, SeedChangesClusteringNotValidity)
{
    Rng rng(4);
    const auto params = AttentionHeadParams::randomInit(16, 16, rng);
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 96;
    profile.tokenDim = 16;
    cta::nn::WorkloadGenerator gen(profile, 5);
    const Matrix x = gen.sampleTokens();
    CtaConfig a, b;
    a.seed = 1;
    b.seed = 2;
    const CtaResult ra = ctaAttention(x, x, params, a);
    const CtaResult rb = ctaAttention(x, x, params, b);
    EXPECT_TRUE(allFinite(ra.output));
    EXPECT_TRUE(allFinite(rb.output));
    // Different hyperplanes give (almost surely) different k's, but
    // both outputs approximate the same exact attention.
    const Matrix exact = exactAttention(x, x, params);
    EXPECT_LT(relativeError(ra.output, exact), 0.8f);
    EXPECT_LT(relativeError(rb.output, exact), 0.8f);
}

TEST(CtaStressTest, DeterministicAcrossCalls)
{
    Rng rng(6);
    const auto params = AttentionHeadParams::randomInit(16, 16, rng);
    const Matrix x = Matrix::randomNormal(64, 16, rng, 0, 0.4f);
    const CtaResult a = ctaAttention(x, x, params, CtaConfig{});
    const CtaResult b = ctaAttention(x, x, params, CtaConfig{});
    EXPECT_LT(maxAbsDiff(a.output, b.output), 0.0f + 1e-9f);
    EXPECT_EQ(a.stats.k0, b.stats.k0);
    EXPECT_EQ(a.totalOps(), b.totalOps());
}

} // namespace

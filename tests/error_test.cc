/**
 * @file
 * Unit tests for approximation-error metrics.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta/error.h"

namespace {

using cta::alg::ApproximationError;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;

TEST(ErrorTest, IdenticalMatricesPerfectScores)
{
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(10, 8, rng);
    const ApproximationError err = cta::alg::compareOutputs(a, a);
    EXPECT_FLOAT_EQ(err.relativeFrobenius, 0.0f);
    EXPECT_FLOAT_EQ(err.maxAbs, 0.0f);
    EXPECT_NEAR(err.meanCosine, 1.0f, 1e-6f);
    EXPECT_NEAR(err.worstCosine, 1.0f, 1e-6f);
}

TEST(ErrorTest, ScaledMatrixKeepsCosine)
{
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(10, 8, rng);
    const Matrix b = scale(a, 2.0f);
    const ApproximationError err = cta::alg::compareOutputs(b, a);
    EXPECT_NEAR(err.meanCosine, 1.0f, 1e-5f);
    EXPECT_NEAR(err.relativeFrobenius, 1.0f, 1e-5f);
}

TEST(ErrorTest, NegatedMatrixWorstCosine)
{
    Rng rng(3);
    const Matrix a = Matrix::randomNormal(5, 8, rng);
    const Matrix b = scale(a, -1.0f);
    const ApproximationError err = cta::alg::compareOutputs(b, a);
    EXPECT_NEAR(err.meanCosine, -1.0f, 1e-5f);
    EXPECT_NEAR(err.worstCosine, -1.0f, 1e-5f);
}

TEST(ErrorTest, WorstCosineIsMinimum)
{
    Matrix exact(2, 2);
    exact(0, 0) = 1; exact(0, 1) = 0;
    exact(1, 0) = 0; exact(1, 1) = 1;
    Matrix approx(2, 2);
    approx(0, 0) = 1; approx(0, 1) = 0;   // perfect row
    approx(1, 0) = 1; approx(1, 1) = 0;   // orthogonal row
    const ApproximationError err =
        cta::alg::compareOutputs(approx, exact);
    EXPECT_NEAR(err.worstCosine, 0.0f, 1e-6f);
    EXPECT_NEAR(err.meanCosine, 0.5f, 1e-6f);
}

TEST(ErrorTest, MaxAbsTracksLargestDeviation)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    b(1, 1) = 4.0f;
    const ApproximationError err = cta::alg::compareOutputs(a, b);
    EXPECT_FLOAT_EQ(err.maxAbs, 3.0f);
}

TEST(ErrorTest, ShapeMismatchDies)
{
    const Matrix a(2, 2), b(3, 2);
    EXPECT_DEATH(cta::alg::compareOutputs(a, b), "shape mismatch");
}

} // namespace

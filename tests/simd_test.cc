/**
 * @file
 * Tests for the runtime-dispatched SIMD layer (core/simd.h): level
 * detection and forcing, bitwise parity of every vector primitive
 * against its scalar reference at every supported ISA level, the
 * FMA-chain routing contract of the packed/vecmat GEMM paths, and
 * the SimdBackend's cross-level / cross-thread bit-identity.
 */

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/matrix.h"
#include "core/rng.h"
#include "core/simd.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::core::SimdBackend;
using cta::core::SimdLevel;

/** RAII guard forcing a SIMD level for one scope. */
class ScopedSimdLevel
{
  public:
    explicit ScopedSimdLevel(SimdLevel level)
        : previous_(cta::core::setSimdLevel(level))
    {
    }
    ~ScopedSimdLevel() { cta::core::setSimdLevel(previous_); }

  private:
    SimdLevel previous_;
};

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels;
    for (const SimdLevel level :
         {SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512,
          SimdLevel::Neon})
        if (cta::core::simdLevelSupported(level))
            levels.push_back(level);
    return levels;
}

/** Lengths hitting full vectors, partial tails and sub-vector rows
 *  for every lane width (4, 8, 16). */
const std::vector<Index> kLengths = {1,  3,  4,  7,  8,   15,
                                     16, 17, 31, 64, 100, 257};

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

std::vector<Real>
randomVec(Index n, Rng &rng)
{
    const Matrix m = Matrix::randomNormal(1, n, rng);
    return {m.data(), m.data() + n};
}

TEST(SimdLevelTest, DetectionAndNames)
{
    EXPECT_TRUE(cta::core::simdLevelSupported(SimdLevel::Scalar));
    EXPECT_TRUE(
        cta::core::simdLevelSupported(cta::core::detectSimdLevel()));
    EXPECT_STREQ(cta::core::simdLevelName(SimdLevel::Scalar),
                 "scalar");
    EXPECT_STREQ(cta::core::simdLevelName(SimdLevel::Avx2), "avx2");
    EXPECT_STREQ(cta::core::simdLevelName(SimdLevel::Avx512),
                 "avx512");
    EXPECT_STREQ(cta::core::simdLevelName(SimdLevel::Neon), "neon");
}

TEST(SimdLevelTest, SetSimdLevelRoundTrips)
{
    const SimdLevel before = cta::core::activeSimdLevel();
    {
        ScopedSimdLevel guard(SimdLevel::Scalar);
        EXPECT_EQ(cta::core::activeSimdLevel(), SimdLevel::Scalar);
    }
    EXPECT_EQ(cta::core::activeSimdLevel(), before);
}

TEST(SimdLevelDeathTest, ForcingAnUnsupportedLevelIsFatal)
{
    // x86 hosts cannot run NEON and vice versa, so one of the two is
    // always unsupported and must be rejected loudly.
    const SimdLevel unsupported =
        cta::core::simdLevelSupported(SimdLevel::Neon)
            ? SimdLevel::Avx2
            : SimdLevel::Neon;
    if (cta::core::simdLevelSupported(unsupported))
        GTEST_SKIP() << "host supports every level";
    EXPECT_EXIT(cta::core::setSimdLevel(unsupported),
                ::testing::ExitedWithCode(1), "not supported");
}

TEST(SimdPrimitiveTest, RowMaxMatchesScalarScanAtEveryLevel)
{
    Rng rng(5);
    for (const Index n : kLengths) {
        const auto x = randomVec(n, rng);
        Real ref = x[0];
        for (Index j = 1; j < n; ++j)
            ref = std::max(ref, x[static_cast<std::size_t>(j)]);
        for (const SimdLevel level : supportedLevels()) {
            ScopedSimdLevel guard(level);
            EXPECT_EQ(cta::core::simdRowMax(x.data(), n), ref)
                << "n=" << n << " level="
                << cta::core::simdLevelName(level);
        }
    }
}

TEST(SimdPrimitiveTest, RowMaxOfAllNegativeInfinityIsNegativeInfinity)
{
    // The fully-masked softmax row guard (nn/softmax.cc) depends on
    // this exact value coming back.
    constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();
    for (const Index n : kLengths) {
        const std::vector<Real> x(static_cast<std::size_t>(n),
                                  kNegInf);
        for (const SimdLevel level : supportedLevels()) {
            ScopedSimdLevel guard(level);
            EXPECT_EQ(cta::core::simdRowMax(x.data(), n), kNegInf);
        }
    }
}

TEST(SimdPrimitiveTest, ElementwiseKernelsMatchScalarAtEveryLevel)
{
    Rng rng(7);
    const Real w = 1.37f, s = 0.73f;
    for (const Index n : kLengths) {
        const auto x = randomVec(n, rng);
        const auto acc0 = randomVec(n, rng);
        const auto sn = static_cast<std::size_t>(n);

        // Scalar references, one rounding sequence per element.
        std::vector<Real> ref_scale(x), ref_add(acc0), ref_mul(acc0),
            ref_fma(acc0);
        for (std::size_t j = 0; j < sn; ++j) {
            ref_scale[j] *= s;
            ref_add[j] += x[j];
            ref_mul[j] += w * x[j];
            ref_fma[j] = std::fma(w, x[j], ref_fma[j]);
        }

        for (const SimdLevel level : supportedLevels()) {
            ScopedSimdLevel guard(level);
            std::vector<Real> got(x);
            cta::core::simdScaleRow(got.data(), n, s);
            EXPECT_EQ(got, ref_scale)
                << "scale n=" << n << " level="
                << cta::core::simdLevelName(level);

            got = acc0;
            cta::core::simdAddRow(got.data(), x.data(), n);
            EXPECT_EQ(got, ref_add) << "add n=" << n;

            got = acc0;
            cta::core::simdMulAddRow(got.data(), x.data(), w, n);
            EXPECT_EQ(got, ref_mul) << "muladd n=" << n;

            got = acc0;
            cta::core::simdFmaRow(got.data(), x.data(), w, n);
            EXPECT_EQ(got, ref_fma) << "fma n=" << n;
        }
    }
}

/** Shapes covering packed panels (full + partial), micro-kernel row
 *  blocks and their tails, and the vecmat route (rows < kSimdMr). */
struct GemmShape
{
    Index m, k, n;
};

const std::vector<GemmShape> kGemmShapes = {
    {1, 8, 16},   {2, 17, 63},  {3, 64, 64},   {4, 16, 64},
    {5, 33, 65},  {17, 64, 128}, {64, 64, 64}, {70, 128, 96},
};

TEST(SimdGemmTest, BitIdenticalAcrossLevelsThreadsAndRouting)
{
    Rng rng(11);
    const auto levels = supportedLevels();
    for (const auto &[m, k, n] : kGemmShapes) {
        const Matrix a = Matrix::randomNormal(m, k, rng);
        const Matrix b = Matrix::randomNormal(k, n, rng);

        // Reference: scalar level, single thread.
        Matrix ref(m, n);
        {
            ScopedSimdLevel guard(SimdLevel::Scalar);
            SimdBackend backend(1);
            backend.gemm(a, b, ref);
        }
        for (const SimdLevel level : levels) {
            ScopedSimdLevel guard(level);
            for (const int threads : {1, 2, 8}) {
                SimdBackend backend(threads);
                Matrix out(m, n);
                backend.gemm(a, b, out);
                EXPECT_TRUE(bitIdentical(out, ref))
                    << "gemm " << m << "x" << k << "x" << n
                    << " level=" << cta::core::simdLevelName(level)
                    << " threads=" << threads;
            }
        }

        // Routing invariance: the no-pack vecmat path and the packed
        // micro-kernel run the same FMA chain per element, so calling
        // them directly on the same rows must agree bitwise.
        for (const SimdLevel level : levels) {
            ScopedSimdLevel guard(level);
            Matrix via_vecmat(m, n);
            cta::core::simdVecMatRows(a, b, via_vecmat, 0, m);
            std::vector<Real> packed;
            cta::core::simdPackB(b, packed);
            Matrix via_packed(m, n);
            cta::core::simdGemmRowsPacked(a, packed.data(), n,
                                          via_packed, 0, m);
            EXPECT_TRUE(bitIdentical(via_vecmat, via_packed))
                << "routing " << m << "x" << k << "x" << n
                << " level=" << cta::core::simdLevelName(level);
            EXPECT_TRUE(bitIdentical(via_packed, ref))
                << "packed-vs-ref " << m << "x" << k << "x" << n;
        }
    }
}

TEST(SimdGemmTest, CloseToNaiveReference)
{
    // The FMA chains drop one rounding per step relative to the naive
    // mul-then-add chains — bitwise different, numerically tighter.
    // Guard against gross kernel bugs with a tolerance check.
    Rng rng(13);
    const Index m = 70, k = 128, n = 96;
    const Matrix a = Matrix::randomNormal(m, k, rng);
    const Matrix b = Matrix::randomNormal(k, n, rng);
    Matrix ref(m, n);
    cta::core::NaiveBackend().gemm(a, b, ref);
    Matrix out(m, n);
    SimdBackend(1).gemm(a, b, out);
    EXPECT_LT(maxAbsDiff(out, ref), 1e-3f);
}

TEST(SimdBackendTest, NameCarriesLevelAndThreads)
{
    ScopedSimdLevel guard(SimdLevel::Scalar);
    SimdBackend backend(3);
    EXPECT_EQ(backend.name(), "simd[scalar]:3");
    EXPECT_TRUE(backend.gemmFmaChains());
    EXPECT_FALSE(cta::core::NaiveBackend().gemmFmaChains());
    EXPECT_FALSE(cta::core::ParallelBackend(1).gemmFmaChains());
}

TEST(SimdBackendTest, InheritedKernelsMatchNaiveBitwise)
{
    // gemmTransposedB / mapRows / reduceRows come from
    // ParallelBackend unchanged — still bit-identical to naive.
    Rng rng(17);
    const Matrix a = Matrix::randomNormal(33, 48, rng);
    const Matrix b = Matrix::randomNormal(29, 48, rng);
    Matrix ref(33, 29), out(33, 29);
    cta::core::NaiveBackend().gemmTransposedB(a, b, ref);
    SimdBackend(8).gemmTransposedB(a, b, out);
    EXPECT_TRUE(bitIdentical(out, ref));
}

TEST(SimdBackendTest, FactoryParsesSimdSpecs)
{
    EXPECT_EQ(cta::core::makeBackend("simd:5")->threadCount(), 5);
    EXPECT_GE(cta::core::makeBackend("simd")->threadCount(), 1);
    EXPECT_TRUE(cta::core::makeBackend("simd")->gemmFmaChains());
}

TEST(SimdPeakTest, MeasuredPeakIsPositive)
{
    EXPECT_GT(cta::core::simdFmaPeakGflops(), 0.0);
}

} // namespace

/**
 * @file
 * Unit tests for exact attention: algebraic identities, op-count
 * formulas and the multi-head wrapper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/matrix.h"
#include "core/op_counter.h"
#include "core/rng.h"
#include "nn/attention.h"
#include "nn/softmax.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Real;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;

TEST(AttentionTest, OutputShape)
{
    Rng rng(1);
    const auto params = AttentionHeadParams::randomInit(16, 8, rng);
    const Matrix xq = Matrix::randomNormal(5, 16, rng);
    const Matrix xkv = Matrix::randomNormal(9, 16, rng);
    const Matrix out = exactAttention(xq, xkv, params);
    EXPECT_EQ(out.rows(), 5);
    EXPECT_EQ(out.cols(), 8);
}

TEST(AttentionTest, ProbabilitiesAreRowStochastic)
{
    Rng rng(2);
    const auto params = AttentionHeadParams::randomInit(12, 6, rng);
    const Matrix x = Matrix::randomNormal(7, 12, rng);
    const auto trace = exactAttentionTraced(x, x, params);
    for (Index i = 0; i < trace.probs.rows(); ++i) {
        Real sum = 0;
        for (Index j = 0; j < trace.probs.cols(); ++j)
            sum += trace.probs(i, j);
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(AttentionTest, SingleKeyReturnsItsValue)
{
    // With one key-value pair, attention output is exactly V's row.
    Rng rng(3);
    const auto params = AttentionHeadParams::randomInit(10, 4, rng);
    const Matrix xq = Matrix::randomNormal(3, 10, rng);
    const Matrix xkv = Matrix::randomNormal(1, 10, rng);
    const auto trace = exactAttentionTraced(xq, xkv, params);
    for (Index i = 0; i < 3; ++i)
        for (Index j = 0; j < 4; ++j)
            EXPECT_NEAR(trace.output(i, j), trace.v(0, j), 1e-5f);
}

TEST(AttentionTest, OutputIsConvexCombinationOfValues)
{
    Rng rng(4);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    const auto trace = exactAttentionTraced(x, x, params);
    // Each output coordinate lies within [min, max] of value column.
    for (Index j = 0; j < 4; ++j) {
        Real vmin = trace.v(0, j), vmax = trace.v(0, j);
        for (Index i = 1; i < 6; ++i) {
            vmin = std::min(vmin, trace.v(i, j));
            vmax = std::max(vmax, trace.v(i, j));
        }
        for (Index i = 0; i < 6; ++i) {
            EXPECT_GE(trace.output(i, j), vmin - 1e-5f);
            EXPECT_LE(trace.output(i, j), vmax + 1e-5f);
        }
    }
}

TEST(AttentionTest, ScoresAreScaledDotProducts)
{
    Rng rng(5);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    const auto trace = exactAttentionTraced(x, x, params);
    const Real inv_sqrt_d = 1.0f / std::sqrt(4.0f);
    for (Index i = 0; i < 5; ++i) {
        for (Index j = 0; j < 5; ++j) {
            Real dot = 0;
            for (Index k = 0; k < 4; ++k)
                dot += trace.q(i, k) * trace.k(j, k);
            EXPECT_NEAR(trace.scores(i, j), dot * inv_sqrt_d, 1e-4f);
        }
    }
}

TEST(AttentionTest, IdenticalTokensGiveIdenticalOutputs)
{
    // The semantic-repetition premise (paper SII-B): repeated tokens
    // produce exactly repeated queries, hence repeated outputs.
    Rng rng(6);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    Matrix x = Matrix::randomNormal(6, 8, rng);
    for (Index j = 0; j < 8; ++j)
        x(3, j) = x(1, j); // duplicate token 1 at position 3
    const Matrix out = exactAttention(x, x, params);
    for (Index j = 0; j < 4; ++j)
        EXPECT_NEAR(out(1, j), out(3, j), 1e-5f);
}

TEST(AttentionTest, MeasuredOpsMatchClosedForm)
{
    Rng rng(7);
    const Index m = 6, n = 9, dw = 12, d = 4;
    const auto params = AttentionHeadParams::randomInit(dw, d, rng);
    const Matrix xq = Matrix::randomNormal(m, dw, rng);
    const Matrix xkv = Matrix::randomNormal(n, dw, rng);
    OpCounts measured;
    exactAttention(xq, xkv, params, &measured);
    const OpCounts linears = cta::nn::exactLinearOps(m, n, dw, d);
    const OpCounts attn = cta::nn::exactAttentionCalcOps(m, n, d);
    EXPECT_EQ(measured.macs, linears.macs + attn.macs);
    EXPECT_EQ(measured.exps, attn.exps);
    EXPECT_EQ(measured.divs, attn.divs);
}

TEST(AttentionTest, SelfVsCrossSameTokensAgree)
{
    Rng rng(8);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    const Matrix self = exactAttention(x, x, params);
    Matrix copy = x;
    const Matrix cross = exactAttention(x, copy, params);
    EXPECT_LT(maxAbsDiff(self, cross), 1e-6f);
}

TEST(MultiHeadAttentionTest, ShapeAndDeterminism)
{
    Rng rng(9);
    cta::nn::MultiHeadAttention mha(32, 4, rng);
    EXPECT_EQ(mha.headDim(), 8);
    EXPECT_EQ(mha.heads().size(), 4u);
    Rng data_rng(10);
    const Matrix x = Matrix::randomNormal(6, 32, data_rng);
    const Matrix a = mha.forward(x);
    const Matrix b = mha.forward(x);
    EXPECT_EQ(a.rows(), 6);
    EXPECT_EQ(a.cols(), 32);
    EXPECT_LT(maxAbsDiff(a, b), 1e-9f);
}


TEST(AttentionTest, CausalMaskZerosFutureProbabilities)
{
    Rng rng(20);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(6, 8, rng);
    const auto trace = cta::nn::exactAttentionTraced(
        x, x, params, nullptr, cta::nn::AttentionMask::Causal);
    for (Index i = 0; i < 6; ++i) {
        Real sum = 0;
        for (Index j = 0; j < 6; ++j) {
            if (j > i) {
                EXPECT_FLOAT_EQ(trace.probs(i, j), 0.0f);
            }
            sum += trace.probs(i, j);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(AttentionTest, CausalFirstRowAttendsOnlyItself)
{
    Rng rng(21);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(5, 8, rng);
    const auto trace = cta::nn::exactAttentionTraced(
        x, x, params, nullptr, cta::nn::AttentionMask::Causal);
    EXPECT_NEAR(trace.probs(0, 0), 1.0f, 1e-6f);
    for (Index j = 0; j < 4; ++j)
        EXPECT_NEAR(trace.output(0, j), trace.v(0, j), 1e-5f);
}

TEST(AttentionTest, CausalLastRowMatchesUnmasked)
{
    // The final query sees the whole prefix, so its masked output
    // equals the unmasked one.
    Rng rng(22);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix x = Matrix::randomNormal(7, 8, rng);
    const auto masked = cta::nn::exactAttentionTraced(
        x, x, params, nullptr, cta::nn::AttentionMask::Causal);
    const auto full = cta::nn::exactAttentionTraced(x, x, params);
    for (Index j = 0; j < 4; ++j)
        EXPECT_NEAR(masked.output(6, j), full.output(6, j), 1e-5f);
}

TEST(AttentionTest, CausalCrossAttentionDies)
{
    Rng rng(23);
    const auto params = AttentionHeadParams::randomInit(8, 4, rng);
    const Matrix xq = Matrix::randomNormal(3, 8, rng);
    const Matrix xkv = Matrix::randomNormal(5, 8, rng);
    EXPECT_DEATH(cta::nn::exactAttention(
                     xq, xkv, params, nullptr,
                     cta::nn::AttentionMask::Causal),
                 "causal mask requires self-attention");
}

} // namespace

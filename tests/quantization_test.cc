/**
 * @file
 * Tests for fixed-point CTA inference (paper SIV-C): the quantized
 * pipeline must track the float pipeline closely (the paper reports
 * < 0.1 % accuracy impact).
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta/error.h"
#include "cta/quantization.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::QuantScheme;
using cta::core::Rng;
using cta::nn::AttentionHeadParams;

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    Fixture()
        : params([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(32, 16, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = 192;
        profile.tokenDim = 32;
        profile.coarseClusters = 12;
        profile.fineClusters = 8;
        profile.noiseScale = 0.03f;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
    }
};

TEST(QuantizationTest, QuantizedTracksFloatPipeline)
{
    Fixture fx;
    CtaConfig config;
    config.w0 = 0.5f;
    config.w1 = 0.5f;
    config.w2 = 0.25f;
    const auto fp = ctaAttention(fx.tokens, fx.tokens, fx.params,
                                 config);
    const auto q = ctaAttentionQuantized(fx.tokens, fx.tokens,
                                         fx.params, config);
    const auto err = cta::alg::compareOutputs(q.output, fp.output);
    EXPECT_GT(err.meanCosine, 0.995f);
    EXPECT_LT(err.relativeFrobenius, 0.05f);
}

TEST(QuantizationTest, QuantizedStillApproximatesExact)
{
    Fixture fx;
    CtaConfig config;
    config.w0 = 0.5f;
    config.w1 = 0.5f;
    config.w2 = 0.25f;
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const auto q = ctaAttentionQuantized(fx.tokens, fx.tokens,
                                         fx.params, config);
    const auto err = cta::alg::compareOutputs(q.output, exact);
    EXPECT_GT(err.meanCosine, 0.97f);
}

TEST(QuantizationTest, ExactQuantizedCloseToExactFloat)
{
    Fixture fx;
    const Matrix fp = exactAttention(fx.tokens, fx.tokens, fx.params);
    const Matrix q = cta::alg::exactAttentionQuantized(
        fx.tokens, fx.tokens, fx.params);
    EXPECT_LT(relativeError(q, fp), 0.02f);
}

TEST(QuantizationTest, CompressionStatsUnaffectedByGridChoice)
{
    // Quantized clustering may differ slightly, but counts stay in
    // the same ballpark (tokens barely move on a Q6.7 grid).
    Fixture fx;
    CtaConfig config;
    const auto fp =
        ctaAttention(fx.tokens, fx.tokens, fx.params, config);
    const auto q = ctaAttentionQuantized(fx.tokens, fx.tokens,
                                         fx.params, config);
    EXPECT_NEAR(static_cast<double>(q.stats.k0),
                static_cast<double>(fp.stats.k0),
                0.25 * static_cast<double>(fp.stats.k0) + 4.0);
}

TEST(QuantizationTest, CoarserTokensDegradeGracefully)
{
    Fixture fx;
    CtaConfig config;
    QuantScheme coarse = QuantScheme::paperDefault();
    coarse.tokens = cta::core::FxpFormat{8, 4};
    coarse.centroids = cta::core::FxpFormat{8, 4};
    const auto fine = ctaAttentionQuantized(fx.tokens, fx.tokens,
                                            fx.params, config);
    const auto rough = ctaAttentionQuantized(fx.tokens, fx.tokens,
                                             fx.params, config, coarse);
    const Matrix exact =
        exactAttention(fx.tokens, fx.tokens, fx.params);
    const auto err_fine = cta::alg::compareOutputs(fine.output, exact);
    const auto err_rough =
        cta::alg::compareOutputs(rough.output, exact);
    EXPECT_GE(err_fine.meanCosine, err_rough.meanCosine - 1e-4f);
}

} // namespace

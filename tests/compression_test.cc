/**
 * @file
 * Unit tests for token compression (paper SIII-B): centroid
 * aggregation, one-level and two-level residual compression,
 * reconstruction error behaviour.
 */

#include <gtest/gtest.h>

#include "core/op_counter.h"
#include "core/rng.h"
#include "cta/compression.h"
#include "nn/workload.h"

namespace {

using cta::alg::ClusterTable;
using cta::alg::CompressionLevel;
using cta::alg::LshParams;
using cta::alg::TwoLevelCompression;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Real;
using cta::core::Rng;

TEST(CentroidAggregationTest, MeanOfClusterMembers)
{
    Matrix x(4, 2);
    x(0, 0) = 1; x(0, 1) = 2;
    x(1, 0) = 3; x(1, 1) = 4;
    x(2, 0) = 5; x(2, 1) = 6;
    x(3, 0) = 100; x(3, 1) = 200;
    ClusterTable ct;
    ct.table = {0, 0, 0, 1};
    ct.numClusters = 2;
    const Matrix c = aggregateCentroids(x, ct);
    EXPECT_FLOAT_EQ(c(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 4.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 100.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 200.0f);
}

TEST(CentroidAggregationTest, OpCountMatchesFig4b)
{
    // Paper SIII-D: n*d additions, k*d divisions.
    Rng rng(1);
    const Matrix x = Matrix::randomNormal(30, 8, rng);
    ClusterTable ct;
    for (Index i = 0; i < 30; ++i)
        ct.table.push_back(i % 5);
    ct.numClusters = 5;
    OpCounts ops;
    aggregateCentroids(x, ct, &ops);
    EXPECT_EQ(ops.adds, 30u * 8u);
    EXPECT_EQ(ops.divs, 5u * 8u);
}

TEST(CompressTokensTest, SingletonClustersReproduceTokens)
{
    // With tiny buckets every token is its own cluster: the
    // "compression" is lossless.
    Rng rng(2);
    const Matrix x = Matrix::randomNormal(20, 8, rng);
    const LshParams params = LshParams::sample(6, 8, 0.001f, rng);
    const CompressionLevel level = cta::alg::compressTokens(x, params);
    EXPECT_EQ(level.numClusters, 20);
    EXPECT_LT(maxAbsDiff(reconstruct(level), x), 1e-5f);
}

TEST(CompressTokensTest, ClusteredDataCompressesHard)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 256;
    profile.tokenDim = 32;
    profile.coarseClusters = 10;
    profile.fineClusters = 1;
    profile.fineScale = 0.0f;
    profile.noiseScale = 0.001f;
    cta::nn::WorkloadGenerator gen(profile, 3);
    const Matrix x = gen.sampleTokens();
    Rng rng(4);
    const LshParams params = LshParams::sample(6, 32, 1.0f, rng);
    const CompressionLevel level = cta::alg::compressTokens(x, params);
    // ~10 latent clusters should land in far fewer than 64 buckets.
    EXPECT_LE(level.numClusters, 40);
    EXPECT_LT(relativeError(reconstruct(level), x), 0.05f);
}

TEST(CompressTokensTest, RatioIsClusterFraction)
{
    Rng rng(5);
    const Matrix x = Matrix::randomNormal(40, 8, rng);
    const LshParams params = LshParams::sample(4, 8, 2.0f, rng);
    const CompressionLevel level = cta::alg::compressTokens(x, params);
    EXPECT_FLOAT_EQ(level.ratio(),
                    static_cast<Real>(level.numClusters) / 40.0f);
}

TEST(TwoLevelTest, ResidualLevelReducesReconstructionError)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 256;
    profile.tokenDim = 32;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.fineScale = 0.4f;
    profile.noiseScale = 0.01f;
    cta::nn::WorkloadGenerator gen(profile, 6);
    const Matrix x = gen.sampleTokens();
    Rng rng(7);
    const LshParams lsh1 = LshParams::sample(6, 32, 2.5f, rng);
    const LshParams lsh2 = LshParams::sample(6, 32, 1.0f, rng);

    const CompressionLevel one =
        cta::alg::compressTokens(x, lsh1);
    const TwoLevelCompression two =
        cta::alg::compressTwoLevel(x, lsh1, lsh2);

    const Real err_one = relativeError(reconstruct(one), x);
    const Real err_two = relativeError(reconstruct(two), x);
    EXPECT_LT(err_two, err_one)
        << "second level must refine the approximation";
}

TEST(TwoLevelTest, Level1TablesMatchStandalone)
{
    Rng rng(8);
    const Matrix x = Matrix::randomNormal(64, 16, rng);
    Rng rng_a(9), rng_b(9);
    const LshParams lsh1 = LshParams::sample(4, 16, 2.0f, rng_a);
    const LshParams lsh1_copy = LshParams::sample(4, 16, 2.0f, rng_b);
    const LshParams lsh2 = LshParams::sample(4, 16, 1.0f, rng_a);
    const auto standalone = cta::alg::compressTokens(x, lsh1_copy);
    const auto two = cta::alg::compressTwoLevel(x, lsh1, lsh2);
    EXPECT_EQ(two.level1.table, standalone.table);
    EXPECT_EQ(two.totalClusters(),
              two.level1.numClusters + two.level2.numClusters);
}

TEST(TwoLevelTest, ResidualMeansAreSmall)
{
    // Residual tokens are token - centroid; their centroid-level
    // means per level-1 cluster must be ~0 by construction, so the
    // level-2 centroid magnitudes are bounded by the fine structure.
    Rng rng(10);
    const Matrix x = Matrix::randomNormal(128, 16, rng);
    const LshParams lsh1 = LshParams::sample(4, 16, 3.0f, rng);
    const LshParams lsh2 = LshParams::sample(4, 16, 1.5f, rng);
    const auto two = cta::alg::compressTwoLevel(x, lsh1, lsh2);
    EXPECT_LE(frobeniusNorm(two.level2.centroids),
              frobeniusNorm(x));
}

TEST(TwoLevelTest, ReconstructIsSumOfLevels)
{
    Rng rng(11);
    const Matrix x = Matrix::randomNormal(32, 8, rng);
    const LshParams lsh1 = LshParams::sample(4, 8, 2.0f, rng);
    const LshParams lsh2 = LshParams::sample(4, 8, 1.0f, rng);
    const auto two = cta::alg::compressTwoLevel(x, lsh1, lsh2);
    const Matrix sum = add(reconstruct(two.level1),
                           reconstruct(two.level2));
    EXPECT_LT(maxAbsDiff(reconstruct(two), sum), 1e-6f);
}

} // namespace

/**
 * @file
 * Unit tests for core statistics helpers.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/stats.h"

namespace {

using cta::core::Real;
using cta::core::RunningStat;
using cta::core::Wide;

TEST(StatsTest, MeanOfKnownValues)
{
    const std::vector<Wide> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(cta::core::mean(v), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(cta::core::mean({}), 0.0);
}

TEST(StatsTest, StddevOfConstantIsZero)
{
    const std::vector<Wide> v{5, 5, 5, 5};
    EXPECT_DOUBLE_EQ(cta::core::stddev(v), 0.0);
}

TEST(StatsTest, StddevKnown)
{
    const std::vector<Wide> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(cta::core::stddev(v), 2.138, 0.001);
}

TEST(StatsTest, GeomeanOfPowers)
{
    const std::vector<Wide> v{1, 4, 16};
    EXPECT_NEAR(cta::core::geomean(v), 4.0, 1e-9);
}

TEST(StatsTest, GeomeanSingleton)
{
    const std::vector<Wide> v{7.5};
    EXPECT_NEAR(cta::core::geomean(v), 7.5, 1e-12);
}

TEST(StatsTest, GeomeanPositiveMatchesGeomeanOnCleanInput)
{
    const std::vector<Wide> v{1, 4, 16};
    EXPECT_NEAR(cta::core::geomeanPositive(v),
                cta::core::geomean(v), 1e-12);
}

TEST(StatsTest, GeomeanPositiveDropsNonPositiveValues)
{
    // Zeros, negatives, NaN and inf are all skipped; only {1, 4, 16}
    // contribute.
    const std::vector<Wide> v{
        1, 0, 4, -2, 16, std::numeric_limits<Wide>::quiet_NaN(),
        std::numeric_limits<Wide>::infinity()};
    EXPECT_NEAR(cta::core::geomeanPositive(v), 4.0, 1e-9);
}

TEST(StatsTest, GeomeanPositiveAllDroppedReturnsZero)
{
    const std::vector<Wide> v{0, -1,
                              std::numeric_limits<Wide>::quiet_NaN()};
    EXPECT_DOUBLE_EQ(cta::core::geomeanPositive(v), 0.0);
    EXPECT_DOUBLE_EQ(cta::core::geomeanPositive({}), 0.0);
}

TEST(StatsTest, MinMax)
{
    const std::vector<Wide> v{3, -1, 7, 2};
    EXPECT_DOUBLE_EQ(cta::core::minOf(v), -1);
    EXPECT_DOUBLE_EQ(cta::core::maxOf(v), 7);
}

TEST(StatsTest, CosineOfParallelVectors)
{
    const std::vector<Real> a{1, 2, 3};
    const std::vector<Real> b{2, 4, 6};
    EXPECT_NEAR(cta::core::cosineSimilarity(a, b), 1.0f, 1e-6f);
}

TEST(StatsTest, CosineOfOrthogonalVectors)
{
    const std::vector<Real> a{1, 0};
    const std::vector<Real> b{0, 1};
    EXPECT_NEAR(cta::core::cosineSimilarity(a, b), 0.0f, 1e-6f);
}

TEST(StatsTest, CosineOfZeroVectorIsZero)
{
    const std::vector<Real> a{0, 0};
    const std::vector<Real> b{1, 1};
    EXPECT_FLOAT_EQ(cta::core::cosineSimilarity(a, b), 0.0f);
}

TEST(StatsTest, L2DistanceKnown)
{
    const std::vector<Real> a{0, 0};
    const std::vector<Real> b{3, 4};
    EXPECT_FLOAT_EQ(cta::core::l2Distance(a, b), 5.0f);
}

TEST(StatsTest, SquaredNorm)
{
    const std::vector<Real> a{1, 2, 2};
    EXPECT_FLOAT_EQ(cta::core::squaredNorm(a), 9.0f);
}

TEST(RunningStatTest, TracksAllSummaries)
{
    RunningStat rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    rs.add(2);
    rs.add(8);
    rs.add(-1);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.sum(), 9.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
    EXPECT_DOUBLE_EQ(rs.min(), -1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 8.0);
}

} // namespace

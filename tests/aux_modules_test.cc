/**
 * @file
 * Direct unit tests for the auxiliary hardware modules: CIM (cluster
 * index module), CAG (centroid aggregation), PAG (probability
 * aggregation) — their timing formulas, energy accounting, overlap
 * semantics and functional agreement with the algorithm library.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "cta/cluster_tree.h"
#include "cta/lsh.h"
#include "cta_accel/cag.h"
#include "cta_accel/cim.h"
#include "cta_accel/pag.h"
#include "nn/workload.h"

namespace {

using cta::accel::CagModel;
using cta::accel::CimModel;
using cta::accel::CimReport;
using cta::accel::HwConfig;
using cta::accel::PagModel;
using cta::accel::PagReport;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::sim::TechParams;

cta::alg::HashMatrix
randomCodes(Index n, Index l, std::uint64_t seed)
{
    Rng rng(seed);
    cta::alg::HashMatrix codes(n, l);
    for (Index i = 0; i < n; ++i)
        for (Index j = 0; j < l; ++j)
            codes(i, j) =
                static_cast<std::int32_t>(rng.uniformInt(5)) - 2;
    return codes;
}

TEST(CimModelTest, OneCodePerCyclePlusPriming)
{
    const CimModel cim(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto codes = randomCodes(200, 6, 1);
    const CimReport report = cim.process(codes);
    EXPECT_EQ(report.cycles, 200u + 6u);
}

TEST(CimModelTest, ClustersMatchSoftwareTrie)
{
    const CimModel cim(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto codes = randomCodes(300, 6, 2);
    const CimReport report = cim.process(codes);
    const auto reference = buildClusterTable(codes);
    EXPECT_EQ(report.clusters.table, reference.table);
    EXPECT_EQ(report.clusters.numClusters, reference.numClusters);
}

TEST(CimModelTest, EnergyScalesWithTraffic)
{
    const CimModel cim(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto small = cim.process(randomCodes(50, 6, 3));
    const auto large = cim.process(randomCodes(500, 6, 3));
    EXPECT_GT(large.energyPj, small.energyPj);
    EXPECT_GT(large.memReads, small.memReads);
}

TEST(CimModelTest, RejectsWrongHashLength)
{
    const CimModel cim(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    EXPECT_DEATH(cim.process(randomCodes(10, 4, 4)), "CIM threads");
}

TEST(CagModelTest, OverlappedPassIsLatencyFree)
{
    const CagModel cag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto overlapped = cag.aggregate(512, 200, true);
    EXPECT_EQ(overlapped.exposedCycles, 0u);
    EXPECT_GT(overlapped.energyPj, 0.0);
}

TEST(CagModelTest, ExposedPassCostsOneCyclePerCentroid)
{
    const CagModel cag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto exposed = cag.aggregate(512, 137, false);
    EXPECT_EQ(exposed.exposedCycles, 137u);
}

TEST(CagModelTest, EnergyScalesWithTokensAndClusters)
{
    const CagModel cag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const auto few = cag.aggregate(100, 10, true);
    const auto many_tokens = cag.aggregate(1000, 10, true);
    const auto many_clusters = cag.aggregate(100, 100, true);
    EXPECT_GT(many_tokens.energyPj, few.energyPj);
    EXPECT_GT(many_clusters.energyPj, few.energyPj);
}

TEST(PagModelTest, BatchLatencyFormula)
{
    // 8 tiles x 2/cycle, 8 rows, n tokens: one round of
    // ceil(n/2) cycles.
    const PagModel pag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const PagReport r = pag.aggregateBatch(8, 512);
    EXPECT_EQ(r.cycles, 256u);
}

TEST(PagModelTest, MoreRowsThanTilesTakeRounds)
{
    HwConfig hw = HwConfig::paperDefault();
    hw.pagTiles = 4;
    const PagModel pag(hw, TechParams::smic40nmClass());
    // 8 rows on 4 tiles: two rounds.
    const PagReport r = pag.aggregateBatch(8, 100);
    EXPECT_EQ(r.cycles, 2u * 50u);
}

TEST(PagModelTest, OddTokenCountRoundsUp)
{
    const PagModel pag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    EXPECT_EQ(pag.aggregateBatch(8, 101).cycles, 51u);
}

TEST(PagModelTest, EmptyBatchFree)
{
    const PagModel pag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const PagReport r = pag.aggregateBatch(0, 512);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_DOUBLE_EQ(r.energyPj, 0.0);
}

TEST(PagModelTest, BufferTrafficIsTwoPerIterationEachWay)
{
    const PagModel pag(HwConfig::paperDefault(),
                       TechParams::smic40nmClass());
    const PagReport r = pag.aggregateBatch(8, 100);
    EXPECT_EQ(r.csReads, 2u * 8u * 100u);
    EXPECT_EQ(r.apWrites, 2u * 8u * 100u);
}

TEST(PagModelTest, DoublingParallelismHalvesLatency)
{
    HwConfig slow = HwConfig::paperDefault();
    slow.pagTiles = 4;
    HwConfig fast = HwConfig::paperDefault();
    fast.pagTiles = 8;
    const PagModel pag_slow(slow, TechParams::smic40nmClass());
    const PagModel pag_fast(fast, TechParams::smic40nmClass());
    EXPECT_EQ(pag_slow.aggregateBatch(8, 512).cycles,
              2 * pag_fast.aggregateBatch(8, 512).cycles);
}

TEST(AuxAreaTest, ModulesAreSmallVsSa)
{
    // Paper Fig. 15: auxiliary modules are a small area fraction.
    const auto tech = TechParams::smic40nmClass();
    const HwConfig hw = HwConfig::paperDefault();
    const double sa_area =
        static_cast<double>(hw.multiplierCount()) * tech.peAreaMm2;
    EXPECT_LT(CimModel(hw, tech).areaMm2(), 0.05 * sa_area);
    EXPECT_LT(CagModel(hw, tech).areaMm2(), 0.05 * sa_area);
    EXPECT_LT(PagModel(hw, tech).areaMm2(), 0.10 * sa_area);
}

} // namespace

/**
 * @file
 * End-to-end integration test: executes the complete CTA pipeline
 * with every matrix stage computed by the *functional* cycle-level
 * systolic array (dataflow 1 for LSH projections, linears and
 * scores; dataflow 2 for outputs) and the hardware-faithful
 * LinearClusterTree as the CIM — then checks the final attention
 * output bit-for-bit against the algorithm library. This is the
 * hardware/software equivalence proof across module boundaries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "cta/compression.h"
#include "cta_accel/sa_functional.h"
#include "nn/workload.h"

namespace {

using cta::accel::FunctionalSystolicArray;
using cta::alg::ClusterTable;
using cta::alg::CompressionLevel;
using cta::alg::CtaConfig;
using cta::alg::HashMatrix;
using cta::alg::LinearClusterTree;
using cta::alg::LshParams;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;

/** LSH on the functional SA: dataflow 1 + PPE (bias, 1/w, floor),
 *  clustered by the hardware trie. */
CompressionLevel
hardwareCompress(const FunctionalSystolicArray &sa, const Matrix &x,
                 const LshParams &params)
{
    const auto projections = sa.runDataflow1(params.a, x);
    HashMatrix codes(x.rows(), params.hashLen());
    for (Index i = 0; i < x.rows(); ++i) {
        for (Index j = 0; j < params.hashLen(); ++j) {
            codes(i, j) = static_cast<std::int32_t>(std::floor(
                (projections.result(i, j) + params.b(j, 0)) /
                params.w));
        }
    }
    LinearClusterTree cim(params.hashLen());
    ClusterTable table;
    for (Index i = 0; i < codes.rows(); ++i)
        table.table.push_back(cim.assign(codes.code(i)));
    table.numClusters = cim.numClusters();
    CompressionLevel level;
    level.centroids = aggregateCentroids(x, table);
    level.numClusters = table.numClusters;
    level.table = std::move(table.table);
    return level;
}

/** Linear phase on the functional SA in saWidth-token batches. */
Matrix
hardwareLinear(const FunctionalSystolicArray &sa, const Matrix &tokens,
               const Matrix &weight)
{
    // Stationary: a batch of tokens (one per column); streaming: the
    // weight columns (transposed to rows).
    const Matrix wt = transpose(weight);
    Matrix out(tokens.rows(), weight.cols());
    for (Index start = 0; start < tokens.rows();
         start += sa.width()) {
        const Index end =
            std::min(tokens.rows(), start + sa.width());
        const Matrix batch = tokens.rowSlice(start, end);
        const auto run = sa.runDataflow1(batch, wt);
        // run.result(c, i) = <W[:,c], token_i>.
        for (Index i = 0; i < end - start; ++i)
            for (Index c = 0; c < weight.cols(); ++c)
                out(start + i, c) = run.result(c, i);
    }
    return out;
}

TEST(PipelineIntegrationTest, FunctionalHardwareMatchesAlgorithm)
{
    constexpr Index kSeq = 96;
    constexpr Index kDim = 16;
    cta::nn::WorkloadProfile profile;
    profile.seqLen = kSeq;
    profile.tokenDim = kDim;
    profile.coarseClusters = 10;
    profile.fineClusters = 6;
    cta::nn::WorkloadGenerator gen(profile, 1);
    const Matrix x = gen.sampleTokens();
    Rng rng(2);
    const auto head =
        cta::nn::AttentionHeadParams::randomInit(kDim, kDim, rng);

    CtaConfig config;
    config.w0 = 0.8f;
    config.w1 = 0.8f;
    config.w2 = 0.4f;
    config.subtractRowMax = true;

    // ---- Reference: algorithm library. ----
    const auto reference = ctaAttention(x, x, head, config);

    // ---- "Hardware" path on the functional SA. ----
    const FunctionalSystolicArray sa(8, kDim);
    const auto lsh = cta::alg::sampleLshParams(config, kDim);

    // Token compression: LSH1, residuals, LSH2, LSH0 — all through
    // the SA + CIM trie.
    cta::alg::TwoLevelCompression kv;
    kv.level1 = hardwareCompress(sa, x, lsh.lsh1);
    Matrix residual(kSeq, kDim);
    for (Index i = 0; i < kSeq; ++i) {
        const Index c = kv.level1.table[static_cast<std::size_t>(i)];
        for (Index j = 0; j < kDim; ++j)
            residual(i, j) = x(i, j) - kv.level1.centroids(c, j);
    }
    kv.level2 = hardwareCompress(sa, residual, lsh.lsh2);
    const CompressionLevel qc = hardwareCompress(sa, x, lsh.lsh0);

    ASSERT_EQ(qc.table, reference.inter.queryComp.table);
    ASSERT_EQ(kv.level1.table, reference.inter.kvComp.level1.table);
    ASSERT_EQ(kv.level2.table, reference.inter.kvComp.level2.table);

    // Linears on the SA.
    Matrix c_cat = kv.level1.centroids;
    c_cat.appendRows(kv.level2.centroids);
    const Matrix q_bar =
        hardwareLinear(sa, qc.centroids, head.wq.weight());
    const Matrix k_bar = hardwareLinear(sa, c_cat, head.wk.weight());
    const Matrix v_bar = hardwareLinear(sa, c_cat, head.wv.weight());
    EXPECT_LT(maxAbsDiff(q_bar, reference.inter.qBar), 1e-4f);
    EXPECT_LT(maxAbsDiff(k_bar, reference.inter.kBar), 1e-4f);

    // Scores on the SA (queries stationary, keys streaming), scaled
    // and max-adjusted like the PPE.
    const Index k0 = qc.numClusters;
    const Index k1 = kv.level1.numClusters;
    const Index k2 = kv.level2.numClusters;
    Matrix s_bar(k0, k1 + k2);
    const Real inv_sqrt_d =
        1.0f / std::sqrt(static_cast<Real>(kDim));
    for (Index start = 0; start < k0; start += sa.width()) {
        const Index end = std::min(k0, start + sa.width());
        const auto run = sa.runDataflow1(
            q_bar.rowSlice(start, end), k_bar);
        for (Index i = 0; i < end - start; ++i)
            for (Index j = 0; j < k1 + k2; ++j)
                s_bar(start + i, j) = run.result(j, i) * inv_sqrt_d;
    }
    for (Index i = 0; i < k0; ++i) {
        Real row_max = s_bar(i, 0);
        for (Index j = 1; j < k1; ++j)
            row_max = std::max(row_max, s_bar(i, j));
        for (Index j = k1; j < k1 + k2; ++j)
            s_bar(i, j) -= row_max;
    }
    EXPECT_LT(maxAbsDiff(s_bar, reference.inter.sBar), 1e-3f);

    // PAG + output phase (dataflow 2) + normalization + expansion.
    Matrix ap, sums;
    cta::alg::aggregateProbabilities(s_bar, kv.level1.table,
                                     kv.level2.table, k1, ap, sums);
    Matrix o_bar(k0, kDim);
    for (Index start = 0; start < k0; start += sa.width()) {
        const Index end = std::min(k0, start + sa.width());
        const auto run =
            sa.runDataflow2(ap.rowSlice(start, end), v_bar);
        for (Index i = 0; i < end - start; ++i)
            for (Index j = 0; j < kDim; ++j)
                o_bar(start + i, j) = run.result(i, j);
    }
    Matrix output(kSeq, kDim);
    for (Index i = 0; i < kSeq; ++i) {
        const Index c = qc.table[static_cast<std::size_t>(i)];
        const Real inv = 1.0f / (sums(c, 0) * 0.5f);
        for (Index j = 0; j < kDim; ++j)
            output(i, j) = o_bar(c, j) * inv;
    }
    EXPECT_LT(relativeError(output, reference.output), 1e-3f)
        << "functional hardware pipeline diverged from algorithm";
}

} // namespace

/**
 * @file
 * Unit tests for presets and bucket-width calibration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "cta/config.h"
#include "nn/workload.h"

namespace {

using cta::alg::CtaConfig;
using cta::alg::Preset;
using cta::alg::PresetTargets;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;

Matrix
sampleTokens(Index n, Index dw, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dw;
    profile.coarseClusters = 40;
    profile.fineClusters = 24;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

TEST(PresetTest, NamesMatchPaper)
{
    EXPECT_EQ(presetName(Preset::Cta0), "CTA-0");
    EXPECT_EQ(presetName(Preset::Cta05), "CTA-0.5");
    EXPECT_EQ(presetName(Preset::Cta1), "CTA-1");
}

TEST(PresetTest, TargetsMonotoneInAggressiveness)
{
    const PresetTargets t0 = presetTargets(Preset::Cta0);
    const PresetTargets t05 = presetTargets(Preset::Cta05);
    const PresetTargets t1 = presetTargets(Preset::Cta1);
    EXPECT_GT(t0.queryRatio, t05.queryRatio);
    EXPECT_GT(t05.queryRatio, t1.queryRatio);
    EXPECT_GT(t0.kvRatio, t05.kvRatio);
    EXPECT_GT(t05.kvRatio, t1.kvRatio);
}

TEST(CalibrateWidthTest, HitsTargetRatio)
{
    const Matrix x = sampleTokens(256, 32, 1);
    const Real target = 0.5f;
    const Real w = cta::alg::calibrateWidth(x, 6, target, 7, 0);
    // Re-measure with the calibrated width.
    CtaConfig config;
    config.hashLen = 6;
    config.seed = 7;
    config.w0 = w;
    // Use the calibration slot-0 LSH path by running a compression
    // via the public API with matching seed.
    cta::core::Rng rng(7);
    const auto lsh0 =
        cta::alg::LshParams::sample(6, 32, w, rng);
    const auto level = cta::alg::compressTokens(x, lsh0);
    EXPECT_NEAR(level.ratio(), target, 0.1f);
}

TEST(CalibrateWidthTest, SmallerTargetLargerWidth)
{
    const Matrix x = sampleTokens(256, 32, 2);
    const Real w_mild = cta::alg::calibrateWidth(x, 6, 0.7f, 3, 0);
    const Real w_hard = cta::alg::calibrateWidth(x, 6, 0.2f, 3, 0);
    EXPECT_GT(w_hard, w_mild);
}

TEST(CalibrateTest, PresetRatiosRealized)
{
    const Matrix x = sampleTokens(512, 64, 3);
    for (const Preset preset :
         {Preset::Cta0, Preset::Cta05, Preset::Cta1}) {
        const CtaConfig config =
            cta::alg::calibrate(x, x, preset, 6, 11);
        cta::core::Rng rng(11);
        const auto lsh0 =
            cta::alg::LshParams::sample(6, 64, config.w0, rng);
        const auto lsh1 =
            cta::alg::LshParams::sample(6, 64, config.w1, rng);
        const auto lsh2 =
            cta::alg::LshParams::sample(6, 64, config.w2, rng);
        const auto q = cta::alg::compressTokens(x, lsh0);
        const auto kv = cta::alg::compressTwoLevel(x, lsh1, lsh2);
        const auto targets = presetTargets(preset);
        EXPECT_NEAR(q.ratio(), targets.queryRatio, 0.12f)
            << presetName(preset);
        const Real kv_ratio =
            static_cast<Real>(kv.totalClusters()) / 512.0f;
        EXPECT_NEAR(kv_ratio, targets.kvRatio, 0.15f)
            << presetName(preset);
    }
}

TEST(CalibrateTest, StrongerPresetCompressesMore)
{
    const Matrix x = sampleTokens(384, 32, 4);
    cta::nn::WorkloadProfile profile;
    const CtaConfig c0 = cta::alg::calibrate(x, x, Preset::Cta0, 6, 5);
    const CtaConfig c1 = cta::alg::calibrate(x, x, Preset::Cta1, 6, 5);
    EXPECT_GT(c1.w0, c0.w0) << "CTA-1 must use wider buckets";
}

TEST(CalibrateTest, ConfigCarriesHashLenAndSeed)
{
    const Matrix x = sampleTokens(128, 16, 6);
    const CtaConfig config =
        cta::alg::calibrate(x, x, Preset::Cta05, 4, 99);
    EXPECT_EQ(config.hashLen, 4);
    EXPECT_EQ(config.seed, 99u);
}

} // namespace

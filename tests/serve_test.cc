/**
 * @file
 * Tests for the serving layer's incremental compression state and
 * DecodeSession — above all the bit-exactness equivalence contract:
 * incrementally maintained cluster tables, centroids, projections and
 * attention outputs must match a from-scratch rebuild of the same
 * prefix exactly, at every prefix length.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "cta/compressed_attention.h"
#include "cta/compression.h"
#include "nn/workload.h"
#include "serve/decode_session.h"
#include "serve/server_stats.h"

namespace {

using cta::alg::CompressionLevel;
using cta::alg::compressTokens;
using cta::alg::compressTwoLevel;
using cta::alg::compressTwoLevelDecode;
using cta::alg::IncrementalCompression;
using cta::alg::IncrementalTwoLevelCompression;
using cta::alg::TwoLevelCompression;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::serve::DecodeSession;
using cta::serve::ServeConfig;

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

/** Cluster-structured tokens the LSH compression actually compresses
 *  (pure noise would make every token its own cluster). */
Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

void
expectLevelsBitIdentical(const CompressionLevel &got,
                         const CompressionLevel &want, Index prefix)
{
    ASSERT_EQ(got.numClusters, want.numClusters)
        << "prefix " << prefix;
    ASSERT_EQ(got.table, want.table) << "prefix " << prefix;
    EXPECT_TRUE(bitIdentical(got.centroids, want.centroids))
        << "prefix " << prefix;
}

TEST(IncrementalCompressionTest, MatchesBatchAtEveryPrefix)
{
    const Index n = 96, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 11);
    cta::alg::CtaConfig config;
    const auto lsh = cta::alg::sampleLshParams(config, dim);

    IncrementalCompression inc(lsh.lsh1);
    for (Index i = 0; i < n; ++i) {
        inc.append(tokens.row(i));
        const CompressionLevel ref =
            compressTokens(tokens.rowSlice(0, i + 1), lsh.lsh1);
        expectLevelsBitIdentical(inc.level(), ref, i + 1);
    }
    EXPECT_EQ(inc.size(), n);
}

TEST(IncrementalTwoLevelTest, SnapshotMatchesDecodeRebuildAtEveryPrefix)
{
    const Index n = 96, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 12);
    cta::alg::CtaConfig config;
    const auto lsh = cta::alg::sampleLshParams(config, dim);

    IncrementalTwoLevelCompression inc(lsh.lsh1, lsh.lsh2);
    for (Index i = 0; i < n; ++i) {
        inc.append(tokens.row(i));
        const TwoLevelCompression ref = compressTwoLevelDecode(
            tokens.rowSlice(0, i + 1), lsh.lsh1, lsh.lsh2);
        const TwoLevelCompression snap = inc.snapshot();
        expectLevelsBitIdentical(snap.level1, ref.level1, i + 1);
        expectLevelsBitIdentical(snap.level2, ref.level2, i + 1);
    }
}

TEST(CompressTwoLevelDecodeTest, Level1MatchesBatchCompression)
{
    // The decode-time semantics only changes level-2 residual
    // formation; level 1 must be exactly the batch compression.
    const Index n = 80, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 13);
    cta::alg::CtaConfig config;
    const auto lsh = cta::alg::sampleLshParams(config, dim);

    const TwoLevelCompression decode =
        compressTwoLevelDecode(tokens, lsh.lsh1, lsh.lsh2);
    const TwoLevelCompression batch =
        compressTwoLevel(tokens, lsh.lsh1, lsh.lsh2);
    expectLevelsBitIdentical(decode.level1, batch.level1, n);
}

TEST(DecodeSessionTest, ExactModeMatchesBatchRebuildEveryStep)
{
    const Index prefill = 48, steps = 24, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + steps, dim, 14);
    Rng rng(3);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    ServeConfig config;
    config.groupedAggregation = false;
    DecodeSession session(params, config, dim);
    session.prefill(tokens.rowSlice(0, prefill));
    ASSERT_EQ(session.contextLength(), prefill);

    const auto lsh = cta::alg::sampleLshParams(config.cta, dim);
    for (Index i = prefill; i < prefill + steps; ++i) {
        const Matrix out = session.step(tokens.row(i));

        // From-scratch rebuild of the same prefix: the new token is
        // the lone query (its own cluster, centroid = itself).
        const TwoLevelCompression kv_ref = compressTwoLevelDecode(
            tokens.rowSlice(0, i + 1), lsh.lsh1, lsh.lsh2);
        CompressionLevel query;
        query.centroids = tokens.rowSlice(i, i + 1);
        query.table = {0};
        query.numClusters = 1;
        const cta::alg::CtaResult ref =
            cta::alg::ctaAttentionFromCompression(
                query, kv_ref, 1, params, config.cta.subtractRowMax);
        EXPECT_TRUE(bitIdentical(out, ref.output)) << "step " << i;
    }
}

TEST(DecodeSessionTest, CachedProjectionsMatchFullForward)
{
    const Index n = 72, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(n, dim, 15);
    Rng rng(4);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    DecodeSession session(params, ServeConfig{}, dim);
    session.prefill(tokens);

    const TwoLevelCompression snap = session.kv().snapshot();
    EXPECT_TRUE(bitIdentical(session.kBar(1),
                             params.wk.forward(snap.level1.centroids)));
    EXPECT_TRUE(bitIdentical(session.kBar(2),
                             params.wk.forward(snap.level2.centroids)));
    EXPECT_TRUE(bitIdentical(session.vBar(1),
                             params.wv.forward(snap.level1.centroids)));
    EXPECT_TRUE(bitIdentical(session.vBar(2),
                             params.wv.forward(snap.level2.centroids)));
}

TEST(DecodeSessionTest, GroupedAggregationMatchesExactToRounding)
{
    const Index prefill = 64, steps = 8, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + steps, dim, 16);
    Rng rng(5);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    ServeConfig grouped;
    grouped.groupedAggregation = true;
    ServeConfig exact;
    exact.groupedAggregation = false;
    DecodeSession a(params, grouped, dim);
    DecodeSession b(params, exact, dim);
    a.prefill(tokens.rowSlice(0, prefill));
    b.prefill(tokens.rowSlice(0, prefill));

    for (Index i = prefill; i < prefill + steps; ++i) {
        const Matrix out_a = a.step(tokens.row(i));
        const Matrix out_b = b.step(tokens.row(i));
        ASSERT_EQ(out_a.cols(), out_b.cols());
        for (Index j = 0; j < out_a.cols(); ++j)
            EXPECT_NEAR(out_a(0, j), out_b(0, j), 1e-4f)
                << "step " << i << " col " << j;
    }
}

TEST(DecodeSessionTest, PairCountsMatchClusterTables)
{
    const Index n = 90, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 17);
    Rng rng(6);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, 16, rng);

    DecodeSession session(params, ServeConfig{}, dim);
    session.prefill(tokens);

    const TwoLevelCompression snap = session.kv().snapshot();
    EXPECT_EQ(session.pairs().tokens(), n);
    Index total = 0;
    for (const auto &pair : session.pairs().pairs()) {
        Index expect = 0;
        for (std::size_t i = 0; i < snap.level1.table.size(); ++i)
            if (snap.level1.table[i] == pair.c1 &&
                snap.level2.table[i] == pair.c2)
                ++expect;
        EXPECT_EQ(pair.count, expect);
        total += pair.count;
    }
    EXPECT_EQ(total, n);
}

TEST(DecodeSessionTest, StepCostIsFarBelowBatchRecompression)
{
    const Index n = 256, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(n + 1, dim, 18);
    Rng rng(7);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    DecodeSession session(params, ServeConfig{}, dim);
    session.prefill(tokens.rowSlice(0, n));
    (void)session.step(tokens.row(n));

    // A batch CTA evaluation re-hashes and re-projects the whole
    // context; one incremental step touches O(l*d + (k1+k2)*d) state.
    const cta::alg::CtaResult batch = cta::alg::ctaAttention(
        tokens, tokens, params, cta::alg::CtaConfig{});
    EXPECT_LT(session.lastStepOps().flops() * 4,
              batch.totalOps().flops());
}

TEST(IncrementalTwoLevelTest, SaveRestoreRoundTripAtEveryPrefix)
{
    // restoreState() must rebuild trie, tables and centroids so that
    // continued appends are indistinguishable from an uninterrupted
    // run — checked by interrupting at every prefix.
    const Index n = 64, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 19);
    cta::alg::CtaConfig config;
    const auto lsh = cta::alg::sampleLshParams(config, dim);

    IncrementalTwoLevelCompression ref(lsh.lsh1, lsh.lsh2);
    for (Index cut = 0; cut < n; ++cut) {
        ref.append(tokens.row(cut));
        IncrementalTwoLevelCompression resumed(lsh.lsh1, lsh.lsh2);
        resumed.restoreState(ref.saveState());
        ASSERT_EQ(resumed.size(), cut + 1);
        for (Index i = cut + 1; i < std::min(cut + 5, n); ++i)
            resumed.append(tokens.row(i));
        const Index len = std::min(cut + 5, n);
        const TwoLevelCompression want = compressTwoLevelDecode(
            tokens.rowSlice(0, len), lsh.lsh1, lsh.lsh2);
        const TwoLevelCompression got = resumed.snapshot();
        expectLevelsBitIdentical(got.level1, want.level1, len);
        expectLevelsBitIdentical(got.level2, want.level2, len);
    }
}

TEST(DecodeSessionTest, EvictRestoreStepsBitIdenticalAtPrefixes)
{
    // The tentpole contract: serialize -> destroy -> deserialize ->
    // restore -> step must produce the same bits as a session that
    // was never evicted, at several interruption points.
    const Index prefill = 40, steps = 24, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + steps, dim, 20);
    Rng rng(8);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    for (const Index cut : {Index{0}, Index{5}, Index{13}, Index{23}}) {
        DecodeSession reference(params, ServeConfig{}, dim);
        reference.prefill(tokens.rowSlice(0, prefill));
        std::vector<Matrix> want;
        for (Index i = 0; i < steps; ++i)
            want.push_back(reference.step(tokens.row(prefill + i)));

        DecodeSession victim(params, ServeConfig{}, dim);
        victim.prefill(tokens.rowSlice(0, prefill));
        for (Index i = 0; i < cut; ++i) {
            const Matrix out = victim.step(tokens.row(prefill + i));
            ASSERT_TRUE(bitIdentical(out, want[static_cast<
                std::size_t>(i)])) << "cut " << cut << " step " << i;
        }

        // Evict: through the byte codec, into a fresh session.
        const std::vector<std::uint8_t> blob =
            cta::serve::serializeSnapshot(victim.snapshot());
        DecodeSession restored(params, ServeConfig{}, dim);
        restored.restore(cta::serve::deserializeSnapshot(blob));
        ASSERT_EQ(restored.contextLength(), prefill + cut);

        for (Index i = cut; i < steps; ++i) {
            const Matrix out = restored.step(tokens.row(prefill + i));
            EXPECT_TRUE(bitIdentical(out, want[static_cast<
                std::size_t>(i)])) << "cut " << cut << " step " << i;
        }
    }
}

TEST(DecodeSessionTest, RestoredStateMatchesOriginalCaches)
{
    const Index n = 64, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(n, dim, 21);
    Rng rng(9);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    DecodeSession original(params, ServeConfig{}, dim);
    original.prefill(tokens);
    DecodeSession restored(params, ServeConfig{}, dim);
    restored.restore(original.snapshot());

    // Re-derived caches must be bit-identical, not just close.
    EXPECT_TRUE(bitIdentical(restored.kBar(1), original.kBar(1)));
    EXPECT_TRUE(bitIdentical(restored.kBar(2), original.kBar(2)));
    EXPECT_TRUE(bitIdentical(restored.vBar(1), original.vBar(1)));
    EXPECT_TRUE(bitIdentical(restored.vBar(2), original.vBar(2)));
    EXPECT_EQ(restored.pairs().pairs().size(),
              original.pairs().pairs().size());
    EXPECT_EQ(restored.pairs().tokens(), original.pairs().tokens());
}

TEST(DecodeSessionTest, StateBytesAndBlobCompactness)
{
    const Index n = 96, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(n, dim, 22);
    Rng rng(10);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    DecodeSession session(params, ServeConfig{}, dim);
    // Weights and LSH params are model cost, priced separately from
    // the per-session state the eviction budget manages.
    EXPECT_GT(session.modelBytes(),
              static_cast<std::size_t>(3 * dim * d) * sizeof(Real));
    const std::size_t empty_bytes = session.stateBytes();
    EXPECT_GT(empty_bytes, 0u);
    session.prefill(tokens);
    const std::size_t full_bytes = session.stateBytes();
    EXPECT_GT(full_bytes, empty_bytes);

    // The eviction win: the serialized blob drops weights, tries,
    // centroids and cached projections, so it must be much smaller
    // than the live footprint.
    const auto blob = cta::serve::serializeSnapshot(session.snapshot());
    EXPECT_LT(blob.size(), full_bytes / 2);
}

TEST(DecodeSessionTest, ForkedChildStepsBitIdenticalToUnsharedTwin)
{
    // A forked child shares every prefix page copy-on-write, so its
    // decode must be bit-identical to a standalone session that paid
    // for the whole prefix itself — and diverging the child must not
    // perturb the parent.
    const Index prefill = 64, steps = 8, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + 2 * steps, dim, 31);
    Rng rng(12);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    auto parent = std::make_unique<DecodeSession>(params, ServeConfig{},
                                                  dim);
    parent->prefill(tokens.rowSlice(0, prefill));
    const auto prefix = parent->sharedPrefix(0);
    auto child = DecodeSession::forkFrom(prefix);
    ASSERT_EQ(child->contextLength(), prefill);

    DecodeSession twin(params, ServeConfig{}, dim);
    twin.prefill(tokens.rowSlice(0, prefill));
    for (Index i = 0; i < steps; ++i) {
        const Matrix got = child->step(tokens.row(prefill + i));
        const Matrix want = twin.step(tokens.row(prefill + i));
        ASSERT_TRUE(bitIdentical(got, want)) << "step " << i;
    }

    // The parent then decodes a *different* continuation; the child's
    // CoW divergence must not have leaked into shared pages.
    DecodeSession parent_twin(params, ServeConfig{}, dim);
    parent_twin.prefill(tokens.rowSlice(0, prefill));
    for (Index i = 0; i < steps; ++i) {
        const Matrix got =
            parent->step(tokens.row(prefill + steps + i));
        const Matrix want =
            parent_twin.step(tokens.row(prefill + steps + i));
        ASSERT_TRUE(bitIdentical(got, want)) << "parent step " << i;
    }
}

TEST(DecodeSessionTest, ForkedDeltaSnapshotRestoresBitIdentically)
{
    // A forked session's snapshot holds only its divergence; applying
    // it to a fresh fork of the same prefix must reproduce the exact
    // state, and the blob must be far smaller than a full snapshot.
    const Index prefill = 64, steps = 4, dim = 32, d = 16;
    const Matrix tokens = sampleTokens(prefill + steps + 1, dim, 32);
    Rng rng(13);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    auto parent = std::make_unique<DecodeSession>(params, ServeConfig{},
                                                  dim);
    parent->prefill(tokens.rowSlice(0, prefill));
    const auto prefix = parent->sharedPrefix(0);
    auto child = DecodeSession::forkFrom(prefix);
    std::vector<Matrix> want;
    for (Index i = 0; i < steps; ++i)
        want.push_back(child->step(tokens.row(prefill + i)));

    const auto blob = cta::serve::serializeSnapshot(child->snapshot());
    const auto full_blob =
        cta::serve::serializeSnapshot(parent->snapshot());
    EXPECT_LT(blob.size(), full_blob.size() / 4)
        << "delta blob should skip the shared prefix";

    auto restored = DecodeSession::forkFrom(prefix);
    restored->restore(cta::serve::deserializeSnapshot(blob));
    ASSERT_EQ(restored->contextLength(), prefill + steps);
    EXPECT_TRUE(bitIdentical(restored->kBar(1), child->kBar(1)));
    EXPECT_TRUE(bitIdentical(restored->vBar(2), child->vBar(2)));
    const Matrix got = restored->step(tokens.row(prefill + steps));
    const Matrix ref = child->step(tokens.row(prefill + steps));
    EXPECT_TRUE(bitIdentical(got, ref));
}

TEST(IncrementalTwoLevelTest, StateBytesExactAtPrefixes)
{
    // stateBytes() must price every resident arena page exactly once:
    // at any prefix, the session's private footprint covers all live
    // pages (lower bound) with only index/trie/scratch overhead on
    // top (upper bound), and the two-level total decomposes exactly
    // into its levels plus scratch.
    const Index dim = 32, d = 16;
    Rng rng(14);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, d, rng);

    std::size_t prev = 0;
    for (const Index n : {Index{1}, Index{17}, Index{64}, Index{96}}) {
        DecodeSession session(params, ServeConfig{}, dim);
        session.prefill(sampleTokens(n, dim, 33));

        const auto &kv = session.kv();
        EXPECT_EQ(kv.stateBytes(), kv.level1().stateBytes() +
                                       kv.level2().stateBytes() +
                                       kv.scratchBytes())
            << "prefix " << n;

        // Never forked: no page is shared, so the session's private
        // bytes must cover every page the arena has live.
        const auto &arena = *session.arena();
        EXPECT_EQ(arena.sharedBytes(), 0u) << "prefix " << n;
        const std::size_t state = session.stateBytes();
        EXPECT_GE(state, arena.liveBytes()) << "prefix " << n;
        // Index/trie/scratch overhead rides on top but must stay the
        // same order of magnitude as the paged payload.
        EXPECT_LT(state,
                  3 * arena.liveBytes() + (std::size_t{64} << 10))
            << "prefix " << n;
        EXPECT_GT(state, prev) << "prefix " << n;
        prev = state;
    }
}

TEST(SnapshotCodecDeathTest, RejectsMalformedBlobs)
{
    const Index n = 32, dim = 32;
    const Matrix tokens = sampleTokens(n, dim, 23);
    Rng rng(11);
    const auto params =
        cta::nn::AttentionHeadParams::randomInit(dim, 16, rng);
    DecodeSession session(params, ServeConfig{}, dim);
    session.prefill(tokens);
    std::vector<std::uint8_t> blob =
        cta::serve::serializeSnapshot(session.snapshot());

    std::vector<std::uint8_t> truncated(blob.begin(),
                                        blob.end() - 16);
    EXPECT_EXIT(cta::serve::deserializeSnapshot(truncated),
                ::testing::ExitedWithCode(1), "");
    std::vector<std::uint8_t> bad_magic = blob;
    bad_magic[0] ^= 0xff;
    EXPECT_EXIT(cta::serve::deserializeSnapshot(bad_magic),
                ::testing::ExitedWithCode(1), "");
    std::vector<std::uint8_t> trailing = blob;
    trailing.push_back(0);
    EXPECT_EXIT(cta::serve::deserializeSnapshot(trailing),
                ::testing::ExitedWithCode(1), "");
}

TEST(ServerStatsTest, NearestRankPercentilesAndThroughput)
{
    cta::serve::ServerStats stats;
    EXPECT_EQ(stats.steps(), 0);
    EXPECT_EQ(stats.percentileSeconds(99), 0.0);

    // Durations 0.001 .. 0.100 in shuffled insertion order.
    for (int i = 100; i >= 1; --i)
        stats.recordStep(i / 1000.0);
    EXPECT_EQ(stats.steps(), 100);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(50), 0.050);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(95), 0.095);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(99), 0.099);
    EXPECT_DOUBLE_EQ(stats.percentileSeconds(100), 0.100);

    const auto snap = stats.snapshot();
    EXPECT_EQ(snap.steps, 100);
    EXPECT_EQ(snap.tokens, 100);
    EXPECT_DOUBLE_EQ(snap.p50Seconds, 0.050);
    EXPECT_DOUBLE_EQ(snap.p95Seconds, 0.095);
    EXPECT_DOUBLE_EQ(snap.p99Seconds, 0.099);
    EXPECT_DOUBLE_EQ(snap.maxSeconds, 0.100);
    EXPECT_NEAR(snap.totalSeconds, 5.050, 1e-9);
    EXPECT_NEAR(snap.meanSeconds, 0.0505, 1e-9);
    EXPECT_NEAR(snap.tokensPerSecond, 100.0 / 5.050, 1e-6);

    stats.reset();
    EXPECT_EQ(stats.steps(), 0);
}

TEST(ServerStatsDeathTest, RejectsNegativeDurations)
{
    cta::serve::ServerStats stats;
    EXPECT_EXIT(stats.recordStep(-1.0),
                ::testing::ExitedWithCode(1), "negative step");
}

} // namespace

/**
 * @file
 * Unit tests for the dense linear layer.
 */

#include <gtest/gtest.h>

#include "core/matrix.h"
#include "core/op_counter.h"
#include "core/rng.h"
#include "nn/linear.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Rng;
using cta::nn::Linear;

TEST(LinearTest, IdentityWeightsPassThrough)
{
    Linear layer(Matrix::identity(4));
    Rng rng(1);
    const Matrix x = Matrix::randomNormal(3, 4, rng);
    EXPECT_LT(maxAbsDiff(layer.forward(x), x), 1e-6f);
}

TEST(LinearTest, ShapesAndDims)
{
    Rng rng(2);
    const Linear layer = Linear::randomInit(8, 5, rng);
    EXPECT_EQ(layer.inDim(), 8);
    EXPECT_EQ(layer.outDim(), 5);
    const Matrix y = layer.forward(Matrix::randomNormal(3, 8, rng));
    EXPECT_EQ(y.rows(), 3);
    EXPECT_EQ(y.cols(), 5);
}

TEST(LinearTest, ForwardMatchesMatmul)
{
    Rng rng(3);
    const Linear layer = Linear::randomInit(6, 4, rng);
    const Matrix x = Matrix::randomNormal(5, 6, rng);
    EXPECT_LT(maxAbsDiff(layer.forward(x), matmul(x, layer.weight())),
              1e-6f);
}

TEST(LinearTest, BiasIsAddedPerColumn)
{
    Rng rng(4);
    const Linear layer = Linear::randomInit(4, 4, rng, true);
    ASSERT_TRUE(layer.bias().has_value());
    const Matrix x(2, 4, 0.0f); // zero input isolates the bias
    const Matrix y = layer.forward(x);
    for (Index j = 0; j < 4; ++j) {
        EXPECT_FLOAT_EQ(y(0, j), (*layer.bias())(0, j));
        EXPECT_FLOAT_EQ(y(1, j), (*layer.bias())(0, j));
    }
}

TEST(LinearTest, OpCountIsRowsInOut)
{
    Rng rng(5);
    const Linear layer = Linear::randomInit(7, 3, rng);
    const Matrix x = Matrix::randomNormal(11, 7, rng);
    OpCounts ops;
    layer.forward(x, &ops);
    EXPECT_EQ(ops.macs, 11u * 7u * 3u);
}

TEST(LinearTest, XavierScaleKeepsUnitVariance)
{
    Rng rng(6);
    const Linear layer = Linear::randomInit(256, 256, rng);
    const Matrix x = Matrix::randomNormal(64, 256, rng);
    const Matrix y = layer.forward(x);
    // Output variance should stay within ~2x of input variance.
    double var = 0;
    for (Index i = 0; i < y.size(); ++i)
        var += static_cast<double>(y.data()[i]) * y.data()[i];
    var /= y.size();
    EXPECT_GT(var, 0.5);
    EXPECT_LT(var, 2.0);
}

} // namespace

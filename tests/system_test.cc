/**
 * @file
 * Tests for the multi-unit system scheduler (12 x CTA deployment),
 * the schedule-trace export and the FFN-on-SA extension.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cta_accel/ffn_mapper.h"
#include "cta_accel/system.h"
#include "cta_accel/trace.h"

namespace {

using cta::accel::CtaSystem;
using cta::accel::FfnMapper;
using cta::accel::HeadTask;
using cta::accel::HwConfig;
using cta::accel::SystemReport;
using cta::accel::TableIMapper;
using cta::alg::CompressionStats;
using cta::core::Cycles;
using cta::core::Index;

CompressionStats
typicalStats()
{
    CompressionStats stats;
    stats.m = stats.n = 512;
    stats.dw = stats.d = 64;
    stats.k0 = 200;
    stats.k1 = 130;
    stats.k2 = 120;
    return stats;
}

TEST(SystemTest, SingleTaskSingleUnit)
{
    const CtaSystem system(HwConfig::paperDefault(), 1);
    const SystemReport r =
        system.scheduleTasks({HeadTask{0, 0, 1000}});
    EXPECT_EQ(r.makespan, 1000u);
    EXPECT_EQ(r.totalWork, 1000u);
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(SystemTest, PerfectlyParallelHeads)
{
    const CtaSystem system(HwConfig::paperDefault(), 4);
    std::vector<HeadTask> tasks;
    for (Index h = 0; h < 4; ++h)
        tasks.push_back(HeadTask{0, h, 500});
    const SystemReport r = system.scheduleTasks(tasks);
    EXPECT_EQ(r.makespan, 500u);
    EXPECT_DOUBLE_EQ(r.utilization, 1.0);
}

TEST(SystemTest, LptBalancesUnevenTasks)
{
    const CtaSystem system(HwConfig::paperDefault(), 2);
    // LPT on {6,5,4,3} over 2 units -> {6,3} and {5,4}: makespan 9.
    const SystemReport r = system.scheduleTasks({
        HeadTask{0, 0, 6}, HeadTask{0, 1, 5},
        HeadTask{0, 2, 4}, HeadTask{0, 3, 3}});
    EXPECT_EQ(r.makespan, 9u);
}

TEST(SystemTest, MoreUnitsNeverSlower)
{
    std::vector<HeadTask> tasks;
    for (Index h = 0; h < 16; ++h)
        tasks.push_back(HeadTask{0, h,
                                 static_cast<Cycles>(100 + 7 * h)});
    Cycles prev = ~0ull;
    for (Index units : {1, 2, 4, 8, 16}) {
        const CtaSystem system(HwConfig::paperDefault(), units);
        const Cycles makespan =
            system.scheduleTasks(tasks).makespan;
        EXPECT_LE(makespan, prev);
        prev = makespan;
    }
}

TEST(SystemTest, ModelScheduleBarriersAddUp)
{
    const CtaSystem system(HwConfig::paperDefault(), 12);
    // BERT-large-ish: 24 layers x 16 heads, identical shapes.
    std::vector<std::vector<CompressionStats>> layers(
        24, std::vector<CompressionStats>(16, typicalStats()));
    const SystemReport barriered =
        system.scheduleModel(layers, false);
    const SystemReport pipelined =
        system.scheduleModel(layers, true);
    EXPECT_EQ(barriered.totalWork, pipelined.totalWork);
    EXPECT_GE(barriered.makespan, pipelined.makespan);
    // 16 heads on 12 units with a barrier waste 1/3 of the slots:
    // utilization ~ 16/24; pipelined should be near 1.
    EXPECT_LT(barriered.utilization, 0.75);
    EXPECT_GT(pipelined.utilization, 0.95);
}

TEST(SystemTest, MakespanMatchesMapperForOneHead)
{
    const HwConfig hw = HwConfig::paperDefault();
    const CtaSystem system(hw, 12);
    const TableIMapper mapper(hw);
    const auto stats = typicalStats();
    const SystemReport r = system.scheduleModel({{stats}}, false);
    EXPECT_EQ(r.makespan, mapper.schedule(stats).latency.total());
}

TEST(TraceTest, CsvHasHeaderAndAllSteps)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto result = mapper.schedule(typicalStats());
    std::ostringstream oss;
    writeScheduleCsv(result, oss);
    const std::string csv = oss.str();
    EXPECT_NE(csv.find("step,phase,start_cycle"), std::string::npos);
    EXPECT_NE(csv.find("LSH1(X^KV),compression,0,"),
              std::string::npos);
    // One line per step plus header.
    const auto lines = static_cast<std::size_t>(
        std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, result.steps.size() + 1);
}

TEST(TraceTest, ChromeTraceIsWellFormedJson)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto result = mapper.schedule(typicalStats());
    std::ostringstream oss;
    writeChromeTrace(result, oss);
    const std::string json = oss.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Balanced braces (cheap structural check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    // No dangling comma before the closing bracket.
    EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(TraceTest, CsvTimelineIsContiguous)
{
    const TableIMapper mapper{HwConfig::paperDefault()};
    const auto result = mapper.schedule(typicalStats());
    std::ostringstream oss;
    writeScheduleCsv(result, oss);
    // Final start + duration must equal the total latency.
    Cycles total = 0;
    for (const auto &step : result.steps)
        total += step.saCycles + step.exposedAux;
    EXPECT_EQ(total, result.latency.total());
}

TEST(FfnMapperTest, CyclesScaleWithTokens)
{
    const FfnMapper ffn{HwConfig::paperDefault()};
    const auto small = ffn.run(128, 64, 256);
    const auto large = ffn.run(512, 64, 256);
    EXPECT_GT(large.cycles, 3 * small.cycles / 1);
    EXPECT_EQ(large.macs, 4 * small.macs);
}

TEST(FfnMapperTest, HiddenChunksAccounted)
{
    const FfnMapper ffn{HwConfig::paperDefault()};
    // d_hidden = 256 on a 64-tall SA -> 4 chunks for the down proj.
    const auto r = ffn.run(64, 64, 256);
    const Cycles batches = 8; // 64 tokens / b=8
    const Cycles up = batches * (64 + 256);
    const Cycles down = batches * 4 * (64 + 64);
    EXPECT_EQ(r.cycles, up + down + 2 * (64 + 8));
}

TEST(FfnMapperTest, CompressedTokensCheaper)
{
    const FfnMapper ffn{HwConfig::paperDefault()};
    const auto full = ffn.run(512, 64, 256);
    const auto compressed = ffn.runCompressed(200, 64, 256);
    EXPECT_LT(compressed.cycles, full.cycles);
}

TEST(FfnMapperTest, RejectsOversizedModelDim)
{
    const FfnMapper ffn{HwConfig::paperDefault()};
    EXPECT_DEATH(ffn.run(64, 128, 256), "exceeds SA height");
}

} // namespace

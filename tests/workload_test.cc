/**
 * @file
 * Unit tests for the synthetic workload generator and proxy task.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::nn::ProxyTask;
using cta::nn::TokenSample;
using cta::nn::WorkloadGenerator;
using cta::nn::WorkloadProfile;

WorkloadProfile
smallProfile()
{
    WorkloadProfile p;
    p.seqLen = 128;
    p.tokenDim = 16;
    p.coarseClusters = 8;
    p.fineClusters = 4;
    p.noiseScale = 0.02f;
    return p;
}

TEST(WorkloadTest, SampleShapeMatchesProfile)
{
    WorkloadGenerator gen(smallProfile(), 1);
    const TokenSample s = gen.sample();
    EXPECT_EQ(s.tokens.rows(), 128);
    EXPECT_EQ(s.tokens.cols(), 16);
    EXPECT_EQ(s.coarseId.size(), 128u);
    EXPECT_EQ(s.fineId.size(), 128u);
}

TEST(WorkloadTest, LatentIdsWithinRange)
{
    WorkloadGenerator gen(smallProfile(), 2);
    const TokenSample s = gen.sample();
    for (Index c : s.coarseId) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, 8);
    }
    for (Index f : s.fineId) {
        EXPECT_GE(f, 0);
        EXPECT_LT(f, 4);
    }
}

TEST(WorkloadTest, SameSeedSameTokens)
{
    WorkloadGenerator a(smallProfile(), 3);
    WorkloadGenerator b(smallProfile(), 3);
    EXPECT_LT(maxAbsDiff(a.sampleTokens(), b.sampleTokens()), 1e-9f);
}

TEST(WorkloadTest, DifferentSeedsDiffer)
{
    WorkloadGenerator a(smallProfile(), 4);
    WorkloadGenerator b(smallProfile(), 5);
    EXPECT_GT(maxAbsDiff(a.sampleTokens(), b.sampleTokens()), 0.01f);
}

TEST(WorkloadTest, SameLatentPairMeansNearbyTokens)
{
    // Tokens sharing (coarse, fine) ids differ only by noise.
    auto profile = smallProfile();
    profile.seqLen = 256;
    WorkloadGenerator gen(profile, 6);
    const TokenSample s = gen.sample();
    for (Index i = 0; i < profile.seqLen; ++i) {
        for (Index j = i + 1; j < profile.seqLen; ++j) {
            if (s.coarseId[static_cast<std::size_t>(i)] ==
                    s.coarseId[static_cast<std::size_t>(j)] &&
                s.fineId[static_cast<std::size_t>(i)] ==
                    s.fineId[static_cast<std::size_t>(j)]) {
                const Real dist = cta::core::l2Distance(
                    s.tokens.row(i), s.tokens.row(j));
                // Noise is N(0, 0.02) per dim over 16 dims; the
                // distance of two draws concentrates near
                // 0.02 * sqrt(2*16) ~ 0.11.
                EXPECT_LT(dist, 0.5f);
                return; // one verified pair suffices
            }
        }
    }
}

TEST(WorkloadTest, WithSeqLenOverrides)
{
    const WorkloadProfile p = smallProfile().withSeqLen(64);
    EXPECT_EQ(p.seqLen, 64);
    EXPECT_EQ(p.tokenDim, 16);
}

TEST(ProxyTaskTest, LabelsWithinRange)
{
    const ProxyTask task(16, 8, 4, 7);
    WorkloadGenerator gen(smallProfile(), 8);
    for (int s = 0; s < 5; ++s) {
        const Index label = task.groundTruth(gen.sampleTokens());
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 4);
    }
}

TEST(ProxyTaskTest, GroundTruthIsDeterministic)
{
    const ProxyTask task(16, 8, 4, 9);
    WorkloadGenerator gen(smallProfile(), 10);
    const Matrix tokens = gen.sampleTokens();
    EXPECT_EQ(task.groundTruth(tokens), task.groundTruth(tokens));
}

TEST(ProxyTaskTest, ExactOutputGetsPerfectAgreement)
{
    const ProxyTask task(16, 8, 4, 11);
    WorkloadGenerator gen(smallProfile(), 12);
    std::vector<Index> ref, approx;
    for (int s = 0; s < 10; ++s) {
        const Matrix tokens = gen.sampleTokens();
        ref.push_back(task.groundTruth(tokens));
        approx.push_back(task.labelFromOutput(
            exactAttention(tokens, tokens, task.head())));
    }
    EXPECT_FLOAT_EQ(cta::nn::labelAgreement(ref, approx), 1.0f);
}

TEST(LabelAgreementTest, CountsMatches)
{
    const std::vector<Index> a{1, 2, 3, 4};
    const std::vector<Index> b{1, 0, 3, 0};
    EXPECT_FLOAT_EQ(cta::nn::labelAgreement(a, b), 0.5f);
}

} // namespace

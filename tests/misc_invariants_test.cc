/**
 * @file
 * Assorted invariants not covered elsewhere: Zipfian workload
 * frequency ordering, CRLF-tolerant config parsing, unpacked-trace
 * consistency, and FFN mapping inside a system schedule.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/config_io.h"
#include "cta_accel/ffn_mapper.h"
#include "cta_accel/trace.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;

TEST(ZipfWorkloadTest, LowRanksDominate)
{
    // With a positive Zipf exponent, cluster 0 must be used far more
    // often than the median cluster — the repetition premise.
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 4096;
    profile.tokenDim = 8;
    profile.coarseClusters = 32;
    profile.fineClusters = 4;
    profile.zipfExponent = 1.0f;
    cta::nn::WorkloadGenerator gen(profile, 1);
    const auto sample = gen.sample();
    std::vector<int> counts(32, 0);
    for (Index c : sample.coarseId)
        ++counts[static_cast<std::size_t>(c)];
    EXPECT_GT(counts[0], 4 * std::max(1, counts[16]))
        << "rank-0 cluster must dominate mid-rank clusters";
}

TEST(ZipfWorkloadTest, ZeroExponentIsUniform)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 8000;
    profile.tokenDim = 4;
    profile.coarseClusters = 8;
    profile.fineClusters = 2;
    profile.zipfExponent = 0.0f;
    cta::nn::WorkloadGenerator gen(profile, 2);
    const auto sample = gen.sample();
    std::vector<int> counts(8, 0);
    for (Index c : sample.coarseId)
        ++counts[static_cast<std::size_t>(c)];
    const int expect = 1000;
    for (int count : counts)
        EXPECT_NEAR(count, expect, 160);
}

TEST(ZipfWorkloadTest, IdsCoverRangeEventually)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = 6000;
    profile.tokenDim = 4;
    profile.coarseClusters = 12;
    profile.fineClusters = 3;
    profile.zipfExponent = 0.8f;
    cta::nn::WorkloadGenerator gen(profile, 3);
    const auto sample = gen.sample();
    std::vector<int> seen(12, 0);
    for (Index c : sample.coarseId)
        seen[static_cast<std::size_t>(c)] = 1;
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 12);
}

TEST(ConfigMapTest, CrlfLineEndingsTolerated)
{
    const auto map =
        cta::core::ConfigMap::parse("a = 1\r\nb = two\r\n");
    EXPECT_EQ(map.getInt("a"), 1);
    EXPECT_EQ(map.getString("b"), "two");
}

TEST(TraceTest, UnpackedScheduleStillContiguous)
{
    cta::accel::HwConfig hw = cta::accel::HwConfig::paperDefault();
    hw.bubbleRemoval = false;
    const cta::accel::TableIMapper mapper(hw);
    cta::alg::CompressionStats stats;
    stats.m = stats.n = 256;
    stats.dw = stats.d = 64;
    stats.k0 = 100;
    stats.k1 = 70;
    stats.k2 = 60;
    const auto result = mapper.schedule(stats);
    std::ostringstream csv;
    writeScheduleCsv(result, csv);
    cta::core::Cycles sum = 0;
    for (const auto &step : result.steps)
        sum += step.saCycles + step.exposedAux;
    EXPECT_EQ(sum, result.latency.total());
    EXPECT_NE(csv.str().find("LSH1"), std::string::npos);
}

TEST(FfnSystemTest, FfnWorkCompatibleWithHeadTasks)
{
    // FFN cycles can be scheduled on the same units as head tasks —
    // shapes and magnitudes must be sane relative to attention work.
    const cta::accel::FfnMapper ffn{
        cta::accel::HwConfig::paperDefault()};
    const auto report = ffn.runCompressed(256, 64, 256);
    const cta::accel::TableIMapper mapper{
        cta::accel::HwConfig::paperDefault()};
    cta::alg::CompressionStats stats;
    stats.m = stats.n = 512;
    stats.dw = stats.d = 64;
    stats.k0 = 256;
    stats.k1 = 140;
    stats.k2 = 120;
    const auto attn = mapper.schedule(stats);
    // A compressed FFN pass is the same order of magnitude as one
    // attention head (both SA-bound).
    EXPECT_GT(report.cycles, attn.latency.total() / 10);
    EXPECT_LT(report.cycles, attn.latency.total() * 10);
}

} // namespace

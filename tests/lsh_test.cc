/**
 * @file
 * Unit tests for p-stable LSH (paper eq. 1): locality property,
 * determinism, width scaling and op accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/op_counter.h"
#include "core/rng.h"
#include "cta/lsh.h"

namespace {

using cta::alg::HashMatrix;
using cta::alg::LshParams;
using cta::core::Index;
using cta::core::Matrix;
using cta::core::OpCounts;
using cta::core::Real;
using cta::core::Rng;

TEST(LshParamsTest, SampleShapes)
{
    Rng rng(1);
    const LshParams params = LshParams::sample(6, 32, 2.0f, rng);
    EXPECT_EQ(params.hashLen(), 6);
    EXPECT_EQ(params.dim(), 32);
    EXPECT_EQ(params.a.rows(), 6);
    EXPECT_EQ(params.a.cols(), 32);
    EXPECT_EQ(params.b.rows(), 6);
}

TEST(LshParamsTest, BiasWithinWidth)
{
    Rng rng(2);
    const LshParams params = LshParams::sample(8, 16, 3.5f, rng);
    for (Index i = 0; i < 8; ++i) {
        EXPECT_GE(params.b(i, 0), 0.0f);
        EXPECT_LT(params.b(i, 0), 3.5f);
    }
}

TEST(LshParamsTest, WithWidthMatchesDirectSample)
{
    // sample(l, d, w, rng) == sample(l, d, 1, rng).withWidth(w) when
    // both consume the same Rng stream — the property calibration
    // relies on (cta/config.cc).
    Rng rng_a(3), rng_b(3);
    const LshParams direct = LshParams::sample(6, 8, 4.0f, rng_a);
    const LshParams rescaled =
        LshParams::sample(6, 8, 1.0f, rng_b).withWidth(4.0f);
    EXPECT_LT(maxAbsDiff(direct.a, rescaled.a), 1e-9f);
    EXPECT_LT(maxAbsDiff(direct.b, rescaled.b), 1e-5f);
    EXPECT_FLOAT_EQ(direct.w, rescaled.w);
}

TEST(LshTest, HashShape)
{
    Rng rng(4);
    const LshParams params = LshParams::sample(6, 16, 1.0f, rng);
    const Matrix x = Matrix::randomNormal(10, 16, rng);
    const HashMatrix h = hashTokens(x, params);
    EXPECT_EQ(h.rows(), 10);
    EXPECT_EQ(h.cols(), 6);
}

TEST(LshTest, IdenticalTokensIdenticalCodes)
{
    Rng rng(5);
    const LshParams params = LshParams::sample(6, 16, 1.0f, rng);
    Matrix x = Matrix::randomNormal(4, 16, rng);
    for (Index j = 0; j < 16; ++j)
        x(2, j) = x(0, j);
    const HashMatrix h = hashTokens(x, params);
    for (Index j = 0; j < 6; ++j)
        EXPECT_EQ(h(0, j), h(2, j));
}

TEST(LshTest, LocalityNearbyTokensCollideMoreThanFarOnes)
{
    Rng rng(6);
    const Index d = 32, trials = 200;
    const LshParams params = LshParams::sample(4, d, 4.0f, rng);
    int near_collisions = 0, far_collisions = 0;
    for (int t = 0; t < trials; ++t) {
        Matrix x(3, d);
        for (Index j = 0; j < d; ++j) {
            const Real base = rng.normal();
            x(0, j) = base;
            x(1, j) = base + rng.normal(0, 0.05f); // near neighbor
            x(2, j) = rng.normal() * 3.0f;         // far vector
        }
        const HashMatrix h = hashTokens(x, params);
        bool near_same = true, far_same = true;
        for (Index j = 0; j < 4; ++j) {
            near_same &= h(0, j) == h(1, j);
            far_same &= h(0, j) == h(2, j);
        }
        near_collisions += near_same ? 1 : 0;
        far_collisions += far_same ? 1 : 0;
    }
    EXPECT_GT(near_collisions, trials / 2);
    EXPECT_LT(far_collisions, near_collisions / 2 + 5);
}

TEST(LshTest, WiderBucketsMergeMore)
{
    Rng rng(7);
    const Matrix x = Matrix::randomNormal(64, 16, rng);
    Rng rng_a(8), rng_b(8);
    const LshParams narrow = LshParams::sample(4, 16, 0.5f, rng_a);
    const LshParams wide = LshParams::sample(4, 16, 8.0f, rng_b);
    const HashMatrix hn = hashTokens(x, narrow);
    const HashMatrix hw = hashTokens(x, wide);
    // Count distinct codes via pairwise comparison.
    auto distinct = [](const HashMatrix &h) {
        int count = 0;
        for (Index i = 0; i < h.rows(); ++i) {
            bool fresh = true;
            for (Index j = 0; j < i && fresh; ++j) {
                bool same = true;
                for (Index c = 0; c < h.cols(); ++c)
                    same &= h(i, c) == h(j, c);
                fresh = !same;
            }
            count += fresh ? 1 : 0;
        }
        return count;
    };
    EXPECT_LT(distinct(hw), distinct(hn));
}

TEST(LshTest, MatchesScalarFormula)
{
    // Spot-check H = floor((A x + b) / w) element-wise.
    Rng rng(9);
    const LshParams params = LshParams::sample(3, 4, 1.7f, rng);
    const Matrix x = Matrix::randomNormal(5, 4, rng);
    const HashMatrix h = hashTokens(x, params);
    for (Index i = 0; i < 5; ++i) {
        for (Index j = 0; j < 3; ++j) {
            double dot = 0;
            for (Index k = 0; k < 4; ++k)
                dot += static_cast<double>(params.a(j, k)) * x(i, k);
            const auto expect = static_cast<std::int32_t>(
                std::floor((dot + params.b(j, 0)) / params.w));
            EXPECT_EQ(h(i, j), expect);
        }
    }
}

TEST(LshTest, OpAccountingMatchesPaperFormula)
{
    // Paper SIII-D: hashing one matrix costs l*n*d multiplies.
    Rng rng(10);
    const Index l = 6, n = 20, d = 16;
    const LshParams params = LshParams::sample(l, d, 1.0f, rng);
    const Matrix x = Matrix::randomNormal(n, d, rng);
    OpCounts ops;
    hashTokens(x, params, &ops);
    EXPECT_EQ(ops.macs, static_cast<std::uint64_t>(l * n * d));
    EXPECT_EQ(ops.floors, static_cast<std::uint64_t>(l * n));
}

} // namespace

/**
 * @file
 * Unit tests for the model/testcase catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "nn/model_zoo.h"

namespace {

using cta::nn::ModelConfig;
using cta::nn::Testcase;

TEST(ModelZooTest, PublishedHyperparameters)
{
    const ModelConfig bert = ModelConfig::bertLarge();
    EXPECT_EQ(bert.numLayers, 24);
    EXPECT_EQ(bert.numHeads, 16);
    EXPECT_EQ(bert.dModel, 1024);
    EXPECT_EQ(bert.dHead, 64);
    const ModelConfig gpt2 = ModelConfig::gpt2Large();
    EXPECT_EQ(gpt2.numLayers, 36);
    EXPECT_EQ(gpt2.numHeads, 20);
    EXPECT_EQ(gpt2.dModel, 1280);
}

TEST(ModelZooTest, TenTestcases)
{
    const auto cases = cta::nn::paperTestcases(512);
    EXPECT_EQ(cases.size(), 10u);
    std::set<std::string> names;
    for (const auto &tc : cases)
        names.insert(tc.name);
    EXPECT_EQ(names.size(), 10u) << "testcase names must be unique";
}

TEST(ModelZooTest, TestcaseWorkloadsUseRequestedSeqLen)
{
    for (const auto &tc : cta::nn::paperTestcases(384))
        EXPECT_EQ(tc.workload.seqLen, 384);
}

TEST(ModelZooTest, WorkloadTokenDimIsHeadDim)
{
    for (const auto &tc : cta::nn::paperTestcases(512))
        EXPECT_EQ(tc.workload.tokenDim, tc.model.dHead);
}

TEST(ModelZooTest, ClusterCountsGrowSublinearlyWithSeqLen)
{
    // Longer sequences repeat more: clusters grow slower than n, so
    // the cluster/token ratio must fall (the Fig. 2 trend).
    const auto p256 = cta::nn::datasetProfile("SQuAD1.1", 256, 64);
    const auto p512 = cta::nn::datasetProfile("SQuAD1.1", 512, 64);
    const double r256 =
        static_cast<double>(p256.coarseClusters) / 256.0;
    const double r512 =
        static_cast<double>(p512.coarseClusters) / 512.0;
    EXPECT_LE(r512, r256 + 1e-9);
}

TEST(ModelZooTest, UnknownDatasetDies)
{
    EXPECT_DEATH(cta::nn::datasetProfile("nonexistent", 512, 64),
                 "unknown dataset");
}

TEST(ModelZooTest, AttentionFractionInPlausibleRange)
{
    for (const auto &tc : cta::nn::paperTestcases(512)) {
        EXPECT_GT(tc.model.attentionFraction, 0.2f);
        EXPECT_LE(tc.model.attentionFraction, 0.6f);
    }
}

} // namespace

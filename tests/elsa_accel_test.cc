/**
 * @file
 * Tests for the ELSA accelerator cycle model and the ELSA+GPU
 * system combination.
 */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "elsa/elsa_accel.h"
#include "elsa/elsa_system.h"
#include "nn/workload.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Rng;
using cta::elsa::ElsaAccelerator;
using cta::elsa::ElsaAccelResult;
using cta::elsa::ElsaConfig;
using cta::elsa::ElsaHwConfig;
using cta::elsa::ElsaPreset;
using cta::nn::AttentionHeadParams;
using cta::sim::TechParams;

struct Fixture
{
    Matrix tokens;
    AttentionHeadParams params;

    explicit Fixture(Index n = 128)
        : params([] {
              Rng rng(1);
              return AttentionHeadParams::randomInit(64, 64, rng);
          }())
    {
        cta::nn::WorkloadProfile profile;
        profile.seqLen = n;
        profile.tokenDim = 64;
        cta::nn::WorkloadGenerator gen(profile, 2);
        tokens = gen.sampleTokens();
    }
};

TEST(ElsaAccelTest, QuerySerialLatencyScalesWithM)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture small(64), large(256);
    const auto r_small = accel.run(small.tokens, small.tokens,
                                   small.params, ElsaConfig{}, "ELSA");
    const auto r_large = accel.run(large.tokens, large.tokens,
                                   large.params, ElsaConfig{}, "ELSA");
    // Quadratic query-serial behaviour: 4x tokens -> ~16x cycles
    // when the filter scan dominates.
    const double ratio =
        static_cast<double>(r_large.report.latency.total()) /
        static_cast<double>(r_small.report.latency.total());
    EXPECT_GT(ratio, 6.0);
}

TEST(ElsaAccelTest, PerQueryRereadsDriveTraffic)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture fx(128);
    const auto r = accel.run(fx.tokens, fx.tokens, fx.params,
                             ElsaConfig{}, "ELSA");
    // Signature re-reads alone are m*n*sig_words >= 128*128*4.
    EXPECT_GT(r.report.traffic.reads, 128u * 128u * 4u);
}

TEST(ElsaAccelTest, EnergyPositiveAndDecomposed)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture fx;
    const auto r = accel.run(fx.tokens, fx.tokens, fx.params,
                             ElsaConfig{}, "ELSA");
    EXPECT_GT(r.report.energy.memoryPj, 0.0);
    EXPECT_GT(r.report.energy.computePj, 0.0);
    EXPECT_GT(r.report.energy.auxiliaryPj, 0.0);
}

TEST(ElsaAccelTest, AggressivePresetIsFaster)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture fx(256);
    const auto cons = accel.run(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Conservative), "ELSA-C");
    const auto aggr = accel.run(
        fx.tokens, fx.tokens, fx.params,
        ElsaConfig::fromPreset(ElsaPreset::Aggressive), "ELSA-A");
    EXPECT_LE(aggr.report.latency.total(),
              cons.report.latency.total());
}

TEST(ElsaSystemTest, CombinesLatencyAndEnergy)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture fx;
    const ElsaAccelResult r = accel.run(fx.tokens, fx.tokens,
                                        fx.params, ElsaConfig{},
                                        "ELSA-Moderate");
    const auto sys =
        cta::elsa::combineWithGpu(r, 10e-6 /* s */, 300.0, 12);
    EXPECT_EQ(sys.report.platform, "ELSA-Moderate+GPU");
    EXPECT_NEAR(sys.gpuSeconds, 10e-6, 1e-12);
    EXPECT_NEAR(sys.elsaSeconds,
                r.report.seconds() / 12.0, 1e-12);
    // GPU linear energy: 300 W x 10 us = 3 mJ dominates.
    EXPECT_GT(sys.report.energy.computePj, 2.9e9);
}

TEST(ElsaSystemTest, MoreUnitsShrinkAttentionShare)
{
    const ElsaAccelerator accel(ElsaHwConfig::paperDefault(),
                                TechParams::smic40nmClass());
    Fixture fx;
    const auto r = accel.run(fx.tokens, fx.tokens, fx.params,
                             ElsaConfig{}, "ELSA");
    const auto one = cta::elsa::combineWithGpu(r, 1e-5, 300.0, 1);
    const auto twelve = cta::elsa::combineWithGpu(r, 1e-5, 300.0, 12);
    EXPECT_LT(twelve.elsaSeconds, one.elsaSeconds);
    EXPECT_NEAR(one.elsaSeconds / twelve.elsaSeconds, 12.0, 1e-6);
}

// Every downstream timing expression divides by freqGhz and sizes
// SRAM by maxSeqLen, so a zeroed field must die at construction
// instead of surfacing as inf/NaN inside a report.
TEST(ElsaAccelTest, RejectsDegenerateHwConfig)
{
    auto zero_freq = ElsaHwConfig::paperDefault();
    zero_freq.freqGhz = 0;
    EXPECT_DEATH(ElsaAccelerator(zero_freq,
                                 TechParams::smic40nmClass()),
                 "ELSA clock frequency must be positive");
    auto zero_mem = ElsaHwConfig::paperDefault();
    zero_mem.maxSeqLen = 0;
    EXPECT_DEATH(ElsaAccelerator(zero_mem,
                                 TechParams::smic40nmClass()),
                 "ELSA memory/hash sizing must be positive");
    auto zero_lanes = ElsaHwConfig::paperDefault();
    zero_lanes.filterLanes = 0;
    EXPECT_DEATH(ElsaAccelerator(zero_lanes,
                                 TechParams::smic40nmClass()),
                 "invalid ELSA configuration");
}

} // namespace

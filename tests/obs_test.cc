/**
 * @file
 * Tests for the observability layer (obs/trace.h, obs/metrics.h):
 * span recording and the Chrome-trace JSON shape, the
 * disabled-by-default contract, the per-thread buffer cap, and the
 * counter determinism contract — identical totals for a fixed
 * workload under any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using cta::core::Index;
using cta::core::ThreadPool;

/** Restores the runtime trace flag and clears buffers on exit, so
 *  tests cannot leak state into each other. */
class TraceSandbox
{
  public:
    TraceSandbox()
    {
        cta::obs::setTraceEnabled(false);
        cta::obs::clearTrace();
    }
    ~TraceSandbox()
    {
        cta::obs::setTraceEnabled(false);
        cta::obs::clearTrace();
    }
};

TEST(TraceTest, DisabledByDefaultRecordsNothing)
{
    TraceSandbox sandbox;
    {
        CTA_TRACE_SCOPE("test.should_not_record");
    }
    EXPECT_EQ(cta::obs::traceEventCount(), 0u);
}

TEST(TraceTest, ScopeRecordsOneEventPerEntry)
{
    TraceSandbox sandbox;
    cta::obs::setTraceEnabled(true);
    for (int i = 0; i < 5; ++i) {
        cta::obs::TraceScope scope("test.span");
    }
    {
        cta::obs::TraceScope scope("test.with_id", 42);
    }
    EXPECT_EQ(cta::obs::traceEventCount(), 6u);
    EXPECT_EQ(cta::obs::droppedTraceEvents(), 0u);
}

TEST(TraceTest, MacrosFollowBuildConfiguration)
{
    // With CTA_OBS=OFF the macros compile away even though the
    // library (and its direct API) is still built; otherwise they
    // behave exactly like the underlying calls.
    TraceSandbox sandbox;
    cta::obs::resetMetrics();
    cta::obs::setTraceEnabled(true);
    {
        CTA_TRACE_SCOPE("test.macro");
    }
    CTA_OBS_COUNT("test.macro.count", 2);
#ifdef CTA_OBS_DISABLED
    EXPECT_EQ(cta::obs::traceEventCount(), 0u);
    EXPECT_EQ(cta::obs::counter("test.macro.count").value(), 0u);
#else
    EXPECT_EQ(cta::obs::traceEventCount(), 1u);
    EXPECT_EQ(cta::obs::counter("test.macro.count").value(), 2u);
#endif
    cta::obs::resetMetrics();
}

TEST(TraceTest, ToggleMidScopeNeverRecordsHalfOpenSpans)
{
    TraceSandbox sandbox;
    // Enabled at entry, disabled at exit: the span was armed, so it
    // records (name_ was latched). Disabled at entry, enabled at
    // exit: never armed, never records.
    cta::obs::setTraceEnabled(false);
    {
        CTA_TRACE_SCOPE("test.never_armed");
        cta::obs::setTraceEnabled(true);
    }
    EXPECT_EQ(cta::obs::traceEventCount(), 0u);
}

TEST(TraceTest, ChromeTraceJsonShape)
{
    TraceSandbox sandbox;
    cta::obs::setTraceEnabled(true);
    {
        cta::obs::TraceScope outer("test.outer");
        cta::obs::TraceScope inner("test.inner", 7);
    }
    std::ostringstream os;
    cta::obs::writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.outer\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.inner\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"id\": 7"), std::string::npos);
    // Balanced braces/brackets as a cheap well-formedness check.
    long braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, ConcurrentScopesAllLand)
{
    TraceSandbox sandbox;
    cta::obs::setTraceEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                cta::obs::TraceScope scope("test.concurrent");
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(cta::obs::traceEventCount(),
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(cta::obs::droppedTraceEvents(), 0u);
}

TEST(TraceTest, BufferCapDropsAndCounts)
{
    TraceSandbox sandbox;
    cta::obs::setTraceEnabled(true);
    constexpr std::size_t kOver = 100;
    for (std::size_t i = 0; i < cta::obs::kMaxEventsPerThread + kOver;
         ++i) {
        cta::obs::TraceScope scope("test.flood");
    }
    EXPECT_EQ(cta::obs::traceEventCount(),
              cta::obs::kMaxEventsPerThread);
    EXPECT_EQ(cta::obs::droppedTraceEvents(), kOver);
}

TEST(TraceTest, WriteSidecarsNoOpWhenDisabled)
{
    TraceSandbox sandbox;
    EXPECT_FALSE(cta::obs::writeSidecars("should_not_exist"));
}

TEST(MetricsTest, CounterAddAndReset)
{
    cta::obs::resetMetrics();
    cta::obs::counter("test.counter").add(3);
    cta::obs::counter("test.counter").add();
    EXPECT_EQ(cta::obs::counter("test.counter").value(), 4u);
    cta::obs::resetMetrics();
    EXPECT_EQ(cta::obs::counter("test.counter").value(), 0u);
}

TEST(MetricsTest, GaugeMaxAndAdd)
{
    cta::obs::resetMetrics();
    auto &g = cta::obs::gauge("test.gauge_max");
    g.max(1.5);
    g.max(0.5);
    g.max(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    auto &s = cta::obs::gauge("test.gauge_sum");
    s.add(1.25);
    s.add(0.75);
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(MetricsTest, RegistryReferencesAreStable)
{
    cta::obs::resetMetrics();
    cta::obs::Counter &a = cta::obs::counter("test.stable");
    // Force registry growth past typical small-map sizes.
    for (int i = 0; i < 100; ++i)
        cta::obs::counter("test.filler." + std::to_string(i)).add(1);
    cta::obs::Counter &b = cta::obs::counter("test.stable");
    EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, CounterTotalsDeterministicAcrossThreadCounts)
{
    // The determinism contract: counters accumulate workload-derived
    // event counts with commutative adds, so a fixed workload yields
    // identical totals no matter how the pool partitions it.
    constexpr Index kTasks = 257; // deliberately not a multiple of 4
    auto run_workload = [&](int threads) {
        cta::obs::resetMetrics();
        ThreadPool pool(threads);
        cta::obs::Counter &calls = cta::obs::counter("test.det.calls");
        cta::obs::Counter &weighted =
            cta::obs::counter("test.det.weighted");
        pool.run(kTasks, [&](Index t) {
            calls.add(1);
            weighted.add(static_cast<std::uint64_t>(t) + 1);
        });
        return std::make_pair(
            cta::obs::counter("test.det.calls").value(),
            cta::obs::counter("test.det.weighted").value());
    };
    const auto serial = run_workload(1);
    const auto quad = run_workload(4);
    const auto odd = run_workload(3);
    EXPECT_EQ(serial, quad);
    EXPECT_EQ(serial, odd);
    EXPECT_EQ(serial.first, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(serial.second,
              static_cast<std::uint64_t>(kTasks) * (kTasks + 1) / 2);
    cta::obs::resetMetrics();
}

TEST(MetricsTest, MetricsJsonSortedAndComplete)
{
    cta::obs::resetMetrics();
    cta::obs::counter("test.json.b").add(2);
    cta::obs::counter("test.json.a").add(1);
    cta::obs::gauge("test.json.g").set(1.5);
    std::ostringstream os;
    cta::obs::writeMetricsJson(os);
    const std::string json = os.str();
    const auto pos_a = json.find("\"test.json.a\": 1");
    const auto pos_b = json.find("\"test.json.b\": 2");
    EXPECT_NE(pos_a, std::string::npos);
    EXPECT_NE(pos_b, std::string::npos);
    EXPECT_LT(pos_a, pos_b); // sorted keys
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.g\""), std::string::npos);
    cta::obs::resetMetrics();
}

TEST(MetricsTest, LabeledComposesPerEntityNames)
{
    EXPECT_EQ(cta::obs::labeled("serve.queue_wait_max_s", "tenant",
                                "gold"),
              "serve.queue_wait_max_s{tenant=gold}");
    // Labeled names are ordinary registry entries, distinct from
    // their base and from each other, and sort next to the base in
    // the metrics JSON.
    cta::obs::resetMetrics();
    cta::obs::gauge("test.labeled").set(1.0);
    cta::obs::gauge(cta::obs::labeled("test.labeled", "t", "a"))
        .set(2.0);
    cta::obs::gauge(cta::obs::labeled("test.labeled", "t", "b"))
        .set(3.0);
    EXPECT_DOUBLE_EQ(cta::obs::gauge("test.labeled{t=a}").value(),
                     2.0);
    EXPECT_DOUBLE_EQ(cta::obs::gauge("test.labeled{t=b}").value(),
                     3.0);
    EXPECT_DOUBLE_EQ(cta::obs::gauge("test.labeled").value(), 1.0);
    cta::obs::resetMetrics();
}

TEST(MetricsDeathTest, LabeledRejectsReservedDelimiters)
{
    EXPECT_EXIT(cta::obs::labeled("base", "key", "va=lue"),
                ::testing::ExitedWithCode(1), "reserved delimiter");
    EXPECT_EXIT(cta::obs::labeled("base", "k,ey", "value"),
                ::testing::ExitedWithCode(1), "reserved delimiter");
    EXPECT_EXIT(cta::obs::labeled("base", "", "value"),
                ::testing::ExitedWithCode(1), "non-empty");
}

TEST(MetricsTest, SnapshotsSorted)
{
    cta::obs::resetMetrics();
    cta::obs::counter("test.snap.z").add(1);
    cta::obs::counter("test.snap.a").add(1);
    const auto counters = cta::obs::counterSnapshot();
    for (std::size_t i = 1; i < counters.size(); ++i)
        EXPECT_LT(counters[i - 1].first, counters[i].first);
    cta::obs::resetMetrics();
}

} // namespace

/**
 * @file
 * Tests for shard fault domains (DESIGN.md §4.10): the health state
 * machine, flush wedging and step bouncing, snapshot failover with
 * root-first prefix-chain migration, quarantine drops, deferred
 * re-homing when no shard survives, operator drain/recovery, and the
 * export/adopt migration primitives at the SessionManager level.
 * The through-line is the bit-identity contract: no fence, bounce or
 * migration may ever change a surviving session's output stream.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/rng.h"
#include "fault/fault.h"
#include "nn/workload.h"
#include "serve/frontend.h"
#include "serve/session_manager.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;
using cta::serve::Completion;
using cta::serve::DecodeSession;
using cta::serve::FrontendConfig;
using cta::serve::PrefixExport;
using cta::serve::ServeConfig;
using cta::serve::ServeFrontend;
using cta::serve::SessionExport;
using cta::serve::SessionManager;
using cta::serve::ShardHealth;
using cta::serve::StepStatus;
using cta::serve::SubmitResult;

constexpr Index kDim = 32;
constexpr Index kHeadDim = 16;

Matrix
sampleTokens(Index n, Index dim, std::uint64_t seed)
{
    cta::nn::WorkloadProfile profile;
    profile.seqLen = n;
    profile.tokenDim = dim;
    profile.coarseClusters = 8;
    profile.fineClusters = 6;
    profile.noiseScale = 0.05f;
    cta::nn::WorkloadGenerator gen(profile, seed);
    return gen.sampleTokens();
}

bool
bitIdentical(const Matrix &a, const Matrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    return std::memcmp(a.data(), b.data(),
                       static_cast<std::size_t>(a.size()) *
                           sizeof(Real)) == 0;
}

cta::nn::AttentionHeadParams
testParams()
{
    Rng rng(5);
    return cta::nn::AttentionHeadParams::randomInit(kDim, kHeadDim,
                                                    rng);
}

// ---- manager-level migration primitives --------------------------

TEST(SessionMigrationTest, ExportAdoptRoundTripIsBitIdentical)
{
    const auto params = testParams();
    const Matrix ctx = sampleTokens(24, kDim, 130);
    const Matrix steps = sampleTokens(4, kDim, 131);

    // Source and an identical twin that never migrates: the twin is
    // the bit-identity reference for the migrated session.
    SessionManager src(params, ServeConfig{}, kDim, 0);
    SessionManager twin(params, ServeConfig{}, kDim, 0);
    const Index s = src.createSession(ctx);
    const Index t = twin.createSession(ctx);
    const Matrix before = src.acquire(s).step(steps.row(0));
    ASSERT_TRUE(
        bitIdentical(before, twin.acquire(t).step(steps.row(0))));

    // The destination already holds its own sessions, so adopted ids
    // never collide with source ids by accident.
    SessionManager dst(params, ServeConfig{}, kDim, 0);
    dst.createSession(sampleTokens(8, kDim, 132));

    SessionExport exp = src.exportSession(s);
    EXPECT_EQ(exp.prefixId, -1); // standalone session
    EXPECT_FALSE(exp.corruptionInjected);
    const Index adopted = dst.adoptSession(std::move(exp), -1);
    src.removeSession(s);
    EXPECT_TRUE(dst.isEvicted(adopted)); // restores lazily

    // The migrated restore replays the exact bytes the source would
    // have restored, so the stream continues bit-identically.
    for (Index i = 1; i < 4; ++i) {
        const Matrix got = dst.acquire(adopted).step(steps.row(i));
        EXPECT_TRUE(
            bitIdentical(got, twin.acquire(t).step(steps.row(i))))
            << "step " << i;
    }
}

TEST(SessionMigrationTest, AdoptRemapsPrefixReferences)
{
    const auto params = testParams();
    const Matrix ctx = sampleTokens(16, kDim, 135);
    const Matrix steps = sampleTokens(4, kDim, 136);

    SessionManager src(params, ServeConfig{}, kDim, 0);
    SessionManager twin(params, ServeConfig{}, kDim, 0);
    const Index parent = src.createSession(ctx);
    const Index child = src.forkSession(parent); // registers prefix 0
    const Index tp = twin.createSession(ctx);
    const Index tc = twin.forkSession(tp);

    // The destination's prefix id space is offset by one pre-existing
    // prefix, so the migrated blob's embedded reference MUST be
    // rewritten or the child would silently resolve a stranger.
    SessionManager dst(params, ServeConfig{}, kDim, 0);
    const Index filler = dst.createSession(sampleTokens(8, kDim, 137));
    dst.forkSession(filler); // occupies dst prefix 0

    SessionExport exp = src.exportSession(child);
    ASSERT_EQ(exp.prefixId, 0);
    PrefixExport pexp = src.exportPrefix(exp.prefixId);
    EXPECT_EQ(pexp.parentId, -1); // single-level chain
    const std::int64_t newPrefix = dst.adoptPrefix(std::move(pexp), -1);
    EXPECT_EQ(newPrefix, 1);
    const Index adopted =
        dst.adoptSession(std::move(exp), newPrefix);
    for (Index i = 0; i < 4; ++i) {
        const Matrix got = dst.acquire(adopted).step(steps.row(i));
        EXPECT_TRUE(
            bitIdentical(got, twin.acquire(tc).step(steps.row(i))))
            << "step " << i;
    }
}

TEST(SessionMigrationDeathTest, ExportingQuarantinedOrRemovedIsFatal)
{
    const auto params = testParams();
    SessionManager mgr(params, ServeConfig{}, kDim, 0);
    const Index s = mgr.createSession(sampleTokens(8, kDim, 138));
    mgr.removeSession(s);
    EXPECT_EXIT(mgr.exportSession(s), ::testing::ExitedWithCode(1),
                "removed");
}

#ifndef CTA_FAULT_DISABLED
TEST(SessionMigrationTest, PoisonedSnapshotIsQuarantinedOnArrival)
{
    const auto params = testParams();
    SessionManager src(params, ServeConfig{}, kDim, 0);
    SessionManager dst(params, ServeConfig{}, kDim, 0);
    const Index s = src.createSession(sampleTokens(8, kDim, 140));
    ASSERT_TRUE(src.poisonSession(s, 0xB10Bull));
    ASSERT_TRUE(src.isEvicted(s)); // poisoned, not yet detected
    EXPECT_EQ(src.stats().corruptionsInjected, 1u);

    SessionExport exp = src.exportSession(s);
    EXPECT_TRUE(exp.corruptionInjected);
    const Index adopted = dst.adoptSession(std::move(exp), -1);
    // The corrupt blob is detected right at adoption: the injection
    // was counted on the source, the detection lands on the
    // destination — the cross-shard ledger still balances.
    EXPECT_TRUE(dst.isQuarantined(adopted));
    EXPECT_EQ(dst.stats().corruptionsDetected, 1u);
    EXPECT_EQ(dst.stats().corruptionsSilent, 0u);
}
#endif // CTA_FAULT_DISABLED

// ---- front-end failover ------------------------------------------

TEST(ShardFailoverTest, FailShardMigratesSessionsBitIdentically)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 64});
    const Matrix ctx_a = sampleTokens(24, kDim, 150);
    const Matrix ctx_b = sampleTokens(16, kDim, 151);
    const Index sa = frontend.createSession(tenant, ctx_a);
    const Index sb = frontend.createSession(tenant, ctx_b);
    ASSERT_EQ(frontend.shardOf(sa), 0);
    ASSERT_EQ(frontend.shardOf(sb), 1);

    DecodeSession ref_a(params, ServeConfig{}, kDim);
    DecodeSession ref_b(params, ServeConfig{}, kDim);
    ref_a.prefill(ctx_a);
    ref_b.prefill(ctx_b);

    const Matrix steps = sampleTokens(4, kDim, 152);
    ASSERT_EQ(frontend.trySubmit(sa, steps.row(0)),
              SubmitResult::Accepted);
    ASSERT_EQ(frontend.trySubmit(sb, steps.row(1)),
              SubmitResult::Accepted);
    for (const Completion &c : frontend.flushOnce()) {
        ASSERT_EQ(c.status, StepStatus::Ok);
        EXPECT_TRUE(bitIdentical(
            c.output, c.session == sa ? ref_a.step(steps.row(0))
                                      : ref_b.step(steps.row(1))));
    }

    frontend.failShard(0);
    EXPECT_EQ(frontend.shardHealth(0), ShardHealth::Failed);
    EXPECT_EQ(frontend.shardOf(sa), 1); // re-homed to the survivor
    EXPECT_EQ(frontend.shardStats(0).sessionsMigratedOut, 1u);
    EXPECT_EQ(frontend.shardStats(0).failovers, 1u);
    EXPECT_EQ(frontend.shardStats(1).sessionsMigratedIn, 1u);

    // Post-migration steps replay the snapshot through the ordinary
    // restore path — bit-identical to the never-migrated twins.
    ASSERT_EQ(frontend.trySubmit(sa, steps.row(2)),
              SubmitResult::Accepted);
    ASSERT_EQ(frontend.trySubmit(sb, steps.row(3)),
              SubmitResult::Accepted);
    const auto after = frontend.flushOnce();
    ASSERT_EQ(after.size(), 2u);
    for (const Completion &c : after) {
        ASSERT_EQ(c.status, StepStatus::Ok);
        EXPECT_EQ(c.shard, 1);
        EXPECT_TRUE(bitIdentical(
            c.output, c.session == sa ? ref_a.step(steps.row(2))
                                      : ref_b.step(steps.row(3))));
    }

    // Recovery returns the (now empty) shard to rotation, and the
    // load-aware placement immediately prefers it.
    frontend.recoverShard(0);
    EXPECT_EQ(frontend.shardHealth(0), ShardHealth::Healthy);
    EXPECT_EQ(frontend.shardStats(0).recoveries, 1u);
    EXPECT_EQ(frontend.shardOf(frontend.createSession(tenant)), 0);
}

TEST(ShardFailoverTest, PrefixChainMigratesWithItsSessions)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 64});
    const Matrix ctx = sampleTokens(24, kDim, 160);
    const Index parent = frontend.createSession(tenant, ctx);
    const Index child = frontend.forkSession(parent);
    ASSERT_EQ(frontend.shardOf(parent), 0);
    ASSERT_EQ(frontend.shardOf(child), 0);

    // Reference: the same fork pair on a standalone manager.
    SessionManager ref(params, ServeConfig{}, kDim, 0);
    const Index rp = ref.createSession(ctx);
    const Index rc = ref.forkSession(rp);

    const Matrix steps = sampleTokens(4, kDim, 161);
    ASSERT_EQ(frontend.trySubmit(parent, steps.row(0)),
              SubmitResult::Accepted);
    ASSERT_EQ(frontend.trySubmit(child, steps.row(1)),
              SubmitResult::Accepted);
    for (const Completion &c : frontend.flushOnce()) {
        ASSERT_EQ(c.status, StepStatus::Ok);
        EXPECT_TRUE(bitIdentical(
            c.output,
            c.session == parent
                ? ref.acquire(rp).step(steps.row(0))
                : ref.acquire(rc).step(steps.row(1))));
    }

    // Both sessions — and the shared prefix the child's snapshot
    // references — re-home together, root-first.
    frontend.failShard(0);
    EXPECT_EQ(frontend.shardOf(parent), 1);
    EXPECT_EQ(frontend.shardOf(child), 1);
    EXPECT_EQ(frontend.shardStats(0).sessionsMigratedOut, 2u);
    EXPECT_GE(frontend.shardStats(1).prefixesMigratedIn, 1u);

    ASSERT_EQ(frontend.trySubmit(parent, steps.row(2)),
              SubmitResult::Accepted);
    ASSERT_EQ(frontend.trySubmit(child, steps.row(3)),
              SubmitResult::Accepted);
    const auto after = frontend.flushOnce();
    ASSERT_EQ(after.size(), 2u);
    for (const Completion &c : after) {
        ASSERT_EQ(c.status, StepStatus::Ok);
        EXPECT_TRUE(bitIdentical(
            c.output,
            c.session == parent
                ? ref.acquire(rp).step(steps.row(2))
                : ref.acquire(rc).step(steps.row(3))));
    }
}

TEST(ShardFailoverTest, LastShardFencesDefersAndRecovers)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 1;
    fc.retryBaseSeconds = 0.25;
    fc.retryMaxSeconds = 2.0;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    const Matrix ctx = sampleTokens(16, kDim, 170);
    const Index s = frontend.createSession(tenant, ctx);

    DecodeSession ref(params, ServeConfig{}, kDim);
    ref.prefill(ctx);

    const Matrix steps = sampleTokens(2, kDim, 171);
    ASSERT_EQ(frontend.trySubmit(s, steps.row(0)),
              SubmitResult::Accepted);
    const auto first = frontend.flushOnce();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_TRUE(
        bitIdentical(first[0].output, ref.step(steps.row(0))));

    // With no survivor the failover defers: the session stays fenced
    // on the Failed shard instead of being dropped.
    frontend.failShard(0);
    EXPECT_EQ(frontend.shardStats(0).sessionsMigratedOut, 0u);
    EXPECT_EQ(frontend.shardStats(0).sessionsDropped, 0u);
    const auto fenced = frontend.admit(s, steps.row(1));
    EXPECT_EQ(fenced.result, SubmitResult::ShardFenced);
    EXPECT_DOUBLE_EQ(fenced.retryAfterSeconds, 0.25);
    EXPECT_DOUBLE_EQ(frontend.admit(s, steps.row(1)).retryAfterSeconds,
                     0.5); // the backoff hint keeps doubling
    EXPECT_EQ(frontend.tenantCounters(tenant).shedFenced, 2u);

    // Recovery resumes serving with the stream exactly where the
    // fence left it.
    frontend.recoverShard(0);
    ASSERT_EQ(frontend.trySubmit(s, steps.row(1)),
              SubmitResult::Accepted);
    const auto second = frontend.flushOnce();
    ASSERT_EQ(second.size(), 1u);
    ASSERT_EQ(second[0].status, StepStatus::Ok);
    EXPECT_TRUE(
        bitIdentical(second[0].output, ref.step(steps.row(1))));
}

TEST(ShardFailoverDeathTest, LifecycleGuards)
{
    FrontendConfig fc;
    fc.shards = 2;
    ServeFrontend frontend(testParams(), ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    EXPECT_EXIT(frontend.recoverShard(0),
                ::testing::ExitedWithCode(1),
                "only a Failed shard can recover");
    frontend.failShard(0);
    EXPECT_EXIT(frontend.failShard(0), ::testing::ExitedWithCode(1),
                "already Failed");
    frontend.failShard(1);
    EXPECT_EXIT(frontend.createSession(tenant),
                ::testing::ExitedWithCode(1),
                "every shard is Failed");
}

#ifndef CTA_FAULT_DISABLED

/** The ShardFault site bit, alone. */
unsigned
shardFaultSite()
{
    return 1u << static_cast<unsigned>(cta::fault::Site::ShardFault);
}

/**
 * A seed whose ShardFault poison mix-bit is clear for shard 0's
 * first @p flushes flush ordinals: the wedges fire (rate 1) but the
 * poison arm stays quiet, so the test exercises pure wedge/bounce
 * behavior without losing its sessions to snapshot corruption. The
 * draw is a pure function of (seed, site, key), so probing with
 * fault::mix is exact, not statistical.
 */
std::uint64_t
seedWithoutPoison(Index flushes)
{
    for (std::uint64_t seed = 1; seed < 10'000; ++seed) {
        cta::fault::FaultConfig probe;
        probe.seed = seed;
        probe.rate = 1.0;
        probe.sites = shardFaultSite();
        cta::fault::setConfig(probe);
        bool clean = true;
        for (std::uint64_t ord = 1;
             ord <= static_cast<std::uint64_t>(flushes); ++ord)
            if ((cta::fault::mix(cta::fault::Site::ShardFault,
                                 ord ^ 0xD15EA5Eull) &
                 1u) != 0)
                clean = false;
        if (clean)
            return seed;
    }
    ADD_FAILURE() << "no poison-free seed below 10000";
    return 1;
}

TEST(ShardFailoverTest, WedgedFlushBouncesAndHealthEscalates)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 1;
    fc.shardFailAfter = 2;
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 16});
    const Matrix ctx = sampleTokens(16, kDim, 180);
    const Index s = frontend.createSession(tenant, ctx);

    DecodeSession ref(params, ServeConfig{}, kDim);
    ref.prefill(ctx);
    const Matrix steps = sampleTokens(2, kDim, 181);

    const std::uint64_t injectedBefore =
        cta::fault::totalInjections(cta::fault::Site::ShardFault);
    cta::fault::FaultConfig wedging;
    wedging.seed = seedWithoutPoison(2);
    wedging.rate = 1.0;
    wedging.sites = shardFaultSite();
    cta::fault::setConfig(wedging);

    // First wedge: every dispatched step bounces, health degrades.
    for (Index i = 0; i < 2; ++i)
        ASSERT_EQ(frontend.trySubmit(s, steps.row(i)),
                  SubmitResult::Accepted);
    const auto bounced = frontend.flushOnce();
    ASSERT_EQ(bounced.size(), 2u);
    for (const Completion &c : bounced)
        EXPECT_EQ(c.status, StepStatus::Bounced);
    EXPECT_EQ(frontend.shardHealth(0), ShardHealth::Degraded);
    EXPECT_EQ(frontend.shardStats(0).consecutiveFlushFailures, 1u);
    EXPECT_EQ(frontend.tenantCounters(tenant).shedBounced, 2u);

    // Second consecutive wedge crosses shardFailAfter: the shard
    // fails, and with no survivor its session defers, fenced.
    ASSERT_EQ(frontend.trySubmit(s, steps.row(0)),
              SubmitResult::Accepted);
    for (const Completion &c : frontend.flushOnce())
        EXPECT_EQ(c.status, StepStatus::Bounced);
    cta::fault::setConfig(cta::fault::FaultConfig{});
    EXPECT_EQ(frontend.shardHealth(0), ShardHealth::Failed);
    EXPECT_EQ(frontend.shardStats(0).flushFailures, 2u);
    EXPECT_EQ(frontend.shardStats(0).failovers, 1u);
    EXPECT_EQ(frontend.admit(s, steps.row(0)).result,
              SubmitResult::ShardFenced);
    // Every wedge came from one counted ShardFault draw: the chaos
    // soak's detected == injected ledger hinges on this equality.
    EXPECT_EQ(cta::fault::totalInjections(
                  cta::fault::Site::ShardFault) -
                  injectedBefore,
              2u);

    // Bounces never touched the stream: after recovery the same
    // steps complete bit-identically to the fault-free reference.
    frontend.recoverShard(0);
    for (Index i = 0; i < 2; ++i)
        ASSERT_EQ(frontend.trySubmit(s, steps.row(i)),
                  SubmitResult::Accepted);
    const auto done = frontend.flushOnce();
    ASSERT_EQ(done.size(), 2u);
    for (Index i = 0; i < 2; ++i) {
        ASSERT_EQ(done[static_cast<std::size_t>(i)].status,
                  StepStatus::Ok);
        EXPECT_TRUE(bitIdentical(
            done[static_cast<std::size_t>(i)].output,
            ref.step(steps.row(i))));
    }
    EXPECT_EQ(frontend.shardHealth(0), ShardHealth::Healthy);
}

TEST(ShardFailoverTest, QuarantinedSessionsAreDroppedAtFailover)
{
    const auto params = testParams();
    FrontendConfig fc;
    fc.shards = 2;
    fc.shardFailAfter = 5; // keep corruption from auto-failing shard 0
    fc.memBudgetBytes = 2; // 1 byte per shard: evict all but the MRU
    ServeFrontend frontend(params, ServeConfig{}, kDim, fc);
    const Index tenant = frontend.registerTenant({"solo", 1, 64});
    const Matrix ctx = sampleTokens(8, kDim, 190);
    const Index s0 = frontend.createSession(tenant, ctx);
    const Index s1 =
        frontend.createSession(tenant, sampleTokens(8, kDim, 191));
    const Index s2 =
        frontend.createSession(tenant, sampleTokens(8, kDim, 192));
    ASSERT_EQ(frontend.shardOf(s0), 0);
    ASSERT_EQ(frontend.shardOf(s1), 1);
    ASSERT_EQ(frontend.shardOf(s2), 0);

    DecodeSession ref(params, ServeConfig{}, kDim);
    ref.prefill(ctx);
    const Matrix steps = sampleTokens(3, kDim, 193);

    // Every blob evicted while armed corrupts. Stepping only s0
    // makes it the MRU, so budget enforcement evicts s2 — with a
    // corrupt snapshot.
    cta::fault::FaultConfig corrupting;
    corrupting.seed = 31;
    corrupting.rate = 1.0;
    corrupting.sites =
        1u << static_cast<unsigned>(cta::fault::Site::SnapshotBlob);
    cta::fault::setConfig(corrupting);
    ASSERT_EQ(frontend.trySubmit(s0, steps.row(0)),
              SubmitResult::Accepted);
    const auto first = frontend.flushOnce();
    cta::fault::setConfig(cta::fault::FaultConfig{});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(first[0].status, StepStatus::Ok);
    EXPECT_TRUE(
        bitIdentical(first[0].output, ref.step(steps.row(0))));

    // The corrupt blob is detected at the next restore: s2 comes
    // back Corrupted and is quarantined.
    ASSERT_EQ(frontend.trySubmit(s2, steps.row(1)),
              SubmitResult::Accepted);
    const auto second = frontend.flushOnce();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].status, StepStatus::Corrupted);
    EXPECT_EQ(frontend.trySubmit(s2, steps.row(1)),
              SubmitResult::Corrupted);

    // Failover drops the quarantined tombstone and migrates the
    // healthy session.
    frontend.failShard(0);
    EXPECT_EQ(frontend.shardStats(0).sessionsDropped, 1u);
    EXPECT_EQ(frontend.shardStats(0).sessionsMigratedOut, 1u);
    EXPECT_EQ(frontend.shardOf(s0), 1);
    const auto verdict = frontend.admit(s2, steps.row(1));
    EXPECT_EQ(verdict.result, SubmitResult::Corrupted);
    EXPECT_DOUBLE_EQ(verdict.retryAfterSeconds, 0); // terminal

    // The survivor still serves bit-identically after migration.
    ASSERT_EQ(frontend.trySubmit(s0, steps.row(1)),
              SubmitResult::Accepted);
    const auto third = frontend.flushOnce();
    ASSERT_EQ(third.size(), 1u);
    ASSERT_EQ(third[0].status, StepStatus::Ok);
    EXPECT_TRUE(
        bitIdentical(third[0].output, ref.step(steps.row(1))));
    (void)s1;

    // Regression: the dropped tombstone's ref still names shard 0,
    // so a second fail/recover cycle of that shard revisits it. The
    // failover loop must skip the already-removed slot instead of
    // trying to export it.
    frontend.recoverShard(0);
    frontend.failShard(0);
    EXPECT_EQ(frontend.shardStats(0).sessionsDropped, 1u);
    EXPECT_EQ(frontend.admit(s2, steps.row(1)).result,
              SubmitResult::Corrupted);
    frontend.recoverShard(0);

    // And the survivor keeps serving through the churn.
    ASSERT_EQ(frontend.trySubmit(s0, steps.row(2)),
              SubmitResult::Accepted);
    const auto fourth = frontend.flushOnce();
    ASSERT_EQ(fourth.size(), 1u);
    ASSERT_EQ(fourth[0].status, StepStatus::Ok);
    EXPECT_TRUE(
        bitIdentical(fourth[0].output, ref.step(steps.row(2))));
}

#endif // CTA_FAULT_DISABLED

} // namespace

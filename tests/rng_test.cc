/**
 * @file
 * Unit tests for core::Rng: determinism, distribution moments,
 * range contracts, and split independence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/rng.h"

namespace {

using cta::core::Real;
using cta::core::Rng;

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Real u = rng.uniform();
        EXPECT_GE(u, 0.0f);
        EXPECT_LT(u, 1.0f);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const Real u = rng.uniform(-3.0f, 5.0f);
        EXPECT_GE(u, -3.0f);
        EXPECT_LT(u, 5.0f);
    }
}

TEST(RngTest, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(13);
    double sum = 0, sum_sq = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / samples, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / samples, 1.0, 0.03);
}

TEST(RngTest, NormalScaleAndShift)
{
    Rng rng(17);
    double sum = 0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i)
        sum += rng.normal(5.0f, 2.0f);
    EXPECT_NEAR(sum / samples, 5.0, 0.05);
}

TEST(RngTest, UniformIntWithinBound)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(RngTest, UniformIntZeroBoundReturnsZero)
{
    Rng rng(19);
    EXPECT_EQ(rng.uniformInt(0), 0u);
}

TEST(RngTest, UniformIntCoversAllValues)
{
    Rng rng(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(29);
    int hits = 0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i)
        hits += rng.bernoulli(0.3f) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.split();
    // The child stream should differ from the parent's continuation.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(RngTest, SplitIsDeterministic)
{
    Rng a(37), b(37);
    Rng ca = a.split(), cb = b.split();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace

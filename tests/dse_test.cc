/**
 * @file
 * Tests for the design-space exploration API: grid shape, knee
 * detection (paper Fig. 13: PAG = 2 x SA width), monotonicity and
 * input validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cta_accel/dse.h"

namespace {

using cta::accel::DsePoint;
using cta::accel::HwConfig;
using cta::alg::CompressionStats;
using cta::core::Index;

std::vector<CompressionStats>
shapes()
{
    CompressionStats s;
    s.m = s.n = 512;
    s.dw = s.d = 64;
    s.k0 = 200;
    s.k1 = 130;
    s.k2 = 120;
    CompressionStats t = s;
    t.k0 = 280;
    t.k1 = 150;
    t.k2 = 130;
    return {s, t};
}

TEST(DseTest, GridShape)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 16}, {8, 16, 32});
    EXPECT_EQ(points.size(), 6u);
    for (const auto &p : points) {
        EXPECT_GT(p.throughput, 0.0);
        EXPECT_GT(p.meanCycles, 0.0);
    }
}

TEST(DseTest, KneeAtTwiceWidth)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 16, 32},
        {4, 8, 16, 32, 64, 128});
    EXPECT_EQ(cta::accel::saturationKnee(points, 8), 16);
    EXPECT_EQ(cta::accel::saturationKnee(points, 16), 32);
    EXPECT_EQ(cta::accel::saturationKnee(points, 32), 64);
}

TEST(DseTest, ThroughputMonotoneInParallelismPerWidth)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8},
        {4, 8, 16, 32, 64});
    double prev = 0;
    for (const auto &p : points) {
        EXPECT_GE(p.throughput, prev - 1e-9);
        prev = p.throughput;
    }
}

TEST(DseTest, StallsVanishPastKnee)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8}, {4, 16});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[0].meanPagStalls, 0.0)
        << "PAG=4 must be the bottleneck";
    EXPECT_DOUBLE_EQ(points[1].meanPagStalls, 0.0)
        << "PAG=16 = 2b must hide entirely";
}

TEST(DseTest, SublinearWidthScaling)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 64}, {128});
    ASSERT_EQ(points.size(), 2u);
    const double speedup =
        points[1].throughput / points[0].throughput;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 8.0) << "8x width must give < 8x throughput";
}

// Regression for the throughput definition: total evaluations over
// total time, not an arithmetic mean of per-shape rates. With one
// long and one short shape the two disagree badly (the mean
// overweights the short shape).
TEST(DseTest, ThroughputIsTotalEvalsOverTotalTime)
{
    CompressionStats longer;
    longer.m = longer.n = 512;
    longer.dw = longer.d = 64;
    longer.k0 = 200;
    longer.k1 = 130;
    longer.k2 = 120;
    CompressionStats shorter = longer;
    shorter.m = shorter.n = 128;
    shorter.k0 = 60;
    shorter.k1 = 40;
    shorter.k2 = 30;

    // Width 8 x PAG 16 resolves to exactly the paper default, so the
    // expected cycle counts come straight from the mapper.
    const HwConfig config = HwConfig::paperDefault();
    const auto points = exploreDesignSpace(config, {longer, shorter},
                                           {8}, {16});
    ASSERT_EQ(points.size(), 1u);
    const cta::accel::TableIMapper mapper(config);
    const double c_long =
        static_cast<double>(mapper.schedule(longer).latency.total());
    const double c_short =
        static_cast<double>(mapper.schedule(shorter).latency.total());
    const double hz = static_cast<double>(config.freqGhz) * 1e9;
    EXPECT_DOUBLE_EQ(points[0].throughput,
                     2.0 * hz / (c_long + c_short));
    const double rate_mean = (hz / c_long + hz / c_short) / 2.0;
    EXPECT_GT(std::abs(points[0].throughput - rate_mean),
              0.05 * rate_mean)
        << "total-time throughput must not degenerate to the "
           "per-shape rate mean on unequal shapes";
}

// Regression for the former dead clamp: a PAG parallelism below the
// base pagPerTile must run as a single down-rated tile instead of
// dying in the tiling arithmetic.
TEST(DseTest, SubPerTileParallelismRunsAsDownRatedTile)
{
    HwConfig base = HwConfig::paperDefault();
    ASSERT_GT(base.pagPerTile, 1);
    const auto points =
        exploreDesignSpace(base, shapes(), {8}, {1, 16});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].pagParallelism, 1);
    EXPECT_GT(points[0].throughput, 0.0);
    EXPECT_LT(points[0].throughput, points[1].throughput);
}

TEST(DseTest, BottleneckAttributionFollowsStarvation)
{
    const auto points =
        exploreDesignSpace(HwConfig::paperDefault(), shapes(), {8},
                           {1, 16});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].bottleneckModule, "PAG")
        << "one down-rated PAG lane must bind the schedule";
    EXPECT_EQ(points[1].bottleneckModule, "SA")
        << "the paper default is SA-bound";
    for (const auto &p : points) {
        EXPECT_GE(p.pagBindingShare, 0.0);
        EXPECT_LE(p.pagBindingShare, 1.0);
    }
    EXPECT_GT(points[0].pagBindingShare, points[1].pagBindingShare);
}

TEST(DseTest, HeightSweepSelectsMatchingShapes)
{
    auto all = shapes();
    auto half = all[0];
    half.d = 32;
    all.push_back(half);
    cta::accel::DseGrid grid;
    grid.saWidths = {8};
    grid.saHeights = {32, 64};
    grid.pagParallelisms = {16};
    const auto points = exploreDesignSpace(HwConfig::paperDefault(),
                                           all, grid);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].saHeight, 32);
    EXPECT_EQ(points[1].saHeight, 64);
    for (const auto &p : points)
        EXPECT_GT(p.throughput, 0.0);
    // The half-height point averages one shape, the base-height
    // point two — the heights really partition the shape set.
    EXPECT_NE(points[0].meanCycles, points[1].meanCycles);
}

TEST(DseTest, RepeatRunsAreBitIdentical)
{
    const auto a = exploreDesignSpace(HwConfig::paperDefault(),
                                      shapes(), {8, 16}, {4, 16});
    const auto b = exploreDesignSpace(HwConfig::paperDefault(),
                                      shapes(), {8, 16}, {4, 16});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].saWidth, b[i].saWidth);
        EXPECT_EQ(a[i].saHeight, b[i].saHeight);
        EXPECT_EQ(a[i].pagParallelism, b[i].pagParallelism);
        EXPECT_EQ(a[i].throughput, b[i].throughput);
        EXPECT_EQ(a[i].meanCycles, b[i].meanCycles);
        EXPECT_EQ(a[i].meanPagStalls, b[i].meanPagStalls);
        EXPECT_EQ(a[i].bottleneckModule, b[i].bottleneckModule);
        EXPECT_EQ(a[i].pagBindingShare, b[i].pagBindingShare);
    }
}

TEST(DseTest, RejectsBadInputs)
{
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(), {},
                                    {8}, {16}),
                 "at least one shape");
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(),
                                    shapes(), {4}, {16}),
                 "below hash length");
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(),
                                    shapes(), {8}, {7}),
                 "not divisible");
    cta::accel::DseGrid grid;
    grid.saWidths = {8};
    grid.saHeights = {48}; // no shape has d = 48
    grid.pagParallelisms = {16};
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(),
                                    shapes(), grid),
                 "no shape has head dimension");
}

} // namespace

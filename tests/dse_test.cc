/**
 * @file
 * Tests for the design-space exploration API: grid shape, knee
 * detection (paper Fig. 13: PAG = 2 x SA width), monotonicity and
 * input validation.
 */

#include <gtest/gtest.h>

#include "cta_accel/dse.h"

namespace {

using cta::accel::DsePoint;
using cta::accel::HwConfig;
using cta::alg::CompressionStats;
using cta::core::Index;

std::vector<CompressionStats>
shapes()
{
    CompressionStats s;
    s.m = s.n = 512;
    s.dw = s.d = 64;
    s.k0 = 200;
    s.k1 = 130;
    s.k2 = 120;
    CompressionStats t = s;
    t.k0 = 280;
    t.k1 = 150;
    t.k2 = 130;
    return {s, t};
}

TEST(DseTest, GridShape)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 16}, {8, 16, 32});
    EXPECT_EQ(points.size(), 6u);
    for (const auto &p : points) {
        EXPECT_GT(p.throughput, 0.0);
        EXPECT_GT(p.meanCycles, 0.0);
    }
}

TEST(DseTest, KneeAtTwiceWidth)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 16, 32},
        {4, 8, 16, 32, 64, 128});
    EXPECT_EQ(cta::accel::saturationKnee(points, 8), 16);
    EXPECT_EQ(cta::accel::saturationKnee(points, 16), 32);
    EXPECT_EQ(cta::accel::saturationKnee(points, 32), 64);
}

TEST(DseTest, ThroughputMonotoneInParallelismPerWidth)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8},
        {4, 8, 16, 32, 64});
    double prev = 0;
    for (const auto &p : points) {
        EXPECT_GE(p.throughput, prev - 1e-9);
        prev = p.throughput;
    }
}

TEST(DseTest, StallsVanishPastKnee)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8}, {4, 16});
    ASSERT_EQ(points.size(), 2u);
    EXPECT_GT(points[0].meanPagStalls, 0.0)
        << "PAG=4 must be the bottleneck";
    EXPECT_DOUBLE_EQ(points[1].meanPagStalls, 0.0)
        << "PAG=16 = 2b must hide entirely";
}

TEST(DseTest, SublinearWidthScaling)
{
    const auto points = exploreDesignSpace(
        HwConfig::paperDefault(), shapes(), {8, 64}, {128});
    ASSERT_EQ(points.size(), 2u);
    const double speedup =
        points[1].throughput / points[0].throughput;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 8.0) << "8x width must give < 8x throughput";
}

TEST(DseTest, RejectsBadInputs)
{
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(), {},
                                    {8}, {16}),
                 "at least one shape");
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(),
                                    shapes(), {4}, {16}),
                 "below hash length");
    EXPECT_DEATH(exploreDesignSpace(HwConfig::paperDefault(),
                                    shapes(), {8}, {7}),
                 "not divisible");
}

} // namespace

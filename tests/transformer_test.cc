/**
 * @file
 * Unit tests for the transformer substrate (layer norm, GELU, FFN,
 * encoder layer).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/matrix.h"
#include "core/rng.h"
#include "nn/transformer.h"

namespace {

using cta::core::Index;
using cta::core::Matrix;
using cta::core::Real;
using cta::core::Rng;

TEST(LayerNormTest, RowsHaveZeroMeanUnitVar)
{
    Rng rng(1);
    const cta::nn::LayerNorm norm(16);
    const Matrix x = Matrix::randomNormal(8, 16, rng, 3.0f, 2.0f);
    const Matrix y = norm.forward(x);
    for (Index i = 0; i < y.rows(); ++i) {
        double mean = 0, var = 0;
        for (Index j = 0; j < 16; ++j)
            mean += y(i, j);
        mean /= 16;
        for (Index j = 0; j < 16; ++j)
            var += (y(i, j) - mean) * (y(i, j) - mean);
        var /= 16;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(LayerNormTest, ConstantRowMapsToZero)
{
    const cta::nn::LayerNorm norm(8);
    const Matrix x(2, 8, 5.0f);
    const Matrix y = norm.forward(x);
    for (Index j = 0; j < 8; ++j)
        EXPECT_NEAR(y(0, j), 0.0f, 1e-2f);
}

TEST(GeluTest, KnownValues)
{
    Matrix x(1, 3);
    x(0, 0) = 0.0f;
    x(0, 1) = 10.0f;
    x(0, 2) = -10.0f;
    const Matrix y = cta::nn::gelu(x);
    EXPECT_NEAR(y(0, 0), 0.0f, 1e-6f);
    EXPECT_NEAR(y(0, 1), 10.0f, 1e-3f);
    EXPECT_NEAR(y(0, 2), 0.0f, 1e-3f);
}

TEST(GeluTest, MonotoneOnPositiveAxis)
{
    Matrix x(1, 4);
    x(0, 0) = 0.5f;
    x(0, 1) = 1.0f;
    x(0, 2) = 2.0f;
    x(0, 3) = 4.0f;
    const Matrix y = cta::nn::gelu(x);
    EXPECT_LT(y(0, 0), y(0, 1));
    EXPECT_LT(y(0, 1), y(0, 2));
    EXPECT_LT(y(0, 2), y(0, 3));
}

TEST(FeedForwardTest, ShapePreserved)
{
    Rng rng(2);
    const cta::nn::FeedForward ffn(16, 64, rng);
    const Matrix x = Matrix::randomNormal(5, 16, rng);
    const Matrix y = ffn.forward(x);
    EXPECT_EQ(y.rows(), 5);
    EXPECT_EQ(y.cols(), 16);
}

TEST(EncoderLayerTest, ShapeAndFiniteness)
{
    Rng rng(3);
    const cta::nn::EncoderLayer layer(32, 4, 64, rng);
    const Matrix x = Matrix::randomNormal(10, 32, rng);
    const Matrix y = layer.forward(x);
    EXPECT_EQ(y.rows(), 10);
    EXPECT_EQ(y.cols(), 32);
    for (Index i = 0; i < y.size(); ++i)
        EXPECT_TRUE(std::isfinite(y.data()[i]));
}

TEST(EncoderLayerTest, Deterministic)
{
    Rng rng(4);
    const cta::nn::EncoderLayer layer(16, 2, 32, rng);
    Rng data_rng(5);
    const Matrix x = Matrix::randomNormal(6, 16, data_rng);
    EXPECT_LT(maxAbsDiff(layer.forward(x), layer.forward(x)), 1e-9f);
}

TEST(EncoderLayerTest, ResidualPathDominatesForSmallBlocks)
{
    // The residual structure means output correlates with input.
    Rng rng(6);
    const cta::nn::EncoderLayer layer(16, 2, 32, rng);
    const Matrix x = Matrix::randomNormal(6, 16, rng, 0, 10.0f);
    const Matrix y = layer.forward(x);
    // With large-scale inputs the residual term dominates the
    // unit-scale block outputs, so relative error to x is < 1.
    EXPECT_LT(relativeError(y, x), 1.0f);
}

} // namespace

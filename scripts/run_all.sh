#!/usr/bin/env bash
# Full reproduction driver: build, test, run every figure bench and
# render plots. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure | tee test_output.txt

echo "== benches (figures + ablations + micro-kernels) =="
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $(basename "$b") ====="
    "$b"
done 2>&1 | tee bench_output.txt

echo "== plots =="
python3 scripts/plot_results.py || true

echo "done: see test_output.txt, bench_output.txt, results/"

#!/usr/bin/env python3
"""Plot the CSV outputs the benches write into results/.

Usage:
    for b in build/bench/*; do $b; done   # populates results/*.csv
    python3 scripts/plot_results.py       # writes results/*.png

Requires matplotlib; degrades to a textual summary without it.
Each CSV's first column is treated as the x/category axis and every
other column as a series; values like "27.7x", "74.6%" and "327K" are
parsed numerically.
"""

import csv
import pathlib
import re
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def parse_value(text: str):
    """Parses '27.7x' / '74.6%' / '327K' / '1.23' to float, else None."""
    match = re.fullmatch(r"\s*(-?\d+(?:\.\d+)?)\s*([xX%kKmM]?)\s*", text)
    if not match:
        return None
    value = float(match.group(1))
    suffix = match.group(2).lower()
    if suffix == "k":
        value *= 1e3
    elif suffix == "m":
        value *= 1e6
    return value


def load(path: pathlib.Path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        return None
    header, body = rows[0], rows[1:]
    series = {}
    categories = [row[0] for row in body]
    for col in range(1, len(header)):
        values = [parse_value(row[col]) if col < len(row) else None
                  for row in body]
        if any(v is not None for v in values):
            series[header[col]] = values
    return categories, series


def main() -> int:
    if not RESULTS.is_dir():
        print(f"no results directory at {RESULTS}; run the benches first")
        return 1
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable — printing summaries only\n")

    for path in sorted(RESULTS.glob("*.csv")):
        loaded = load(path)
        if not loaded:
            continue
        categories, series = loaded
        print(f"{path.name}: {len(categories)} rows, "
              f"{len(series)} numeric series "
              f"({', '.join(series)})")
        if plt is None or not series:
            continue
        fig, ax = plt.subplots(figsize=(7, 4))
        for name, values in series.items():
            xs = [i for i, v in enumerate(values) if v is not None]
            ys = [v for v in values if v is not None]
            ax.plot(xs, ys, marker="o", label=name)
        ax.set_xticks(range(len(categories)))
        ax.set_xticklabels(categories, rotation=30, ha="right",
                           fontsize=7)
        ax.set_title(path.stem.replace("_", " "))
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        out = path.with_suffix(".png")
        fig.savefig(out, dpi=130)
        plt.close(fig)
        print(f"  -> {out.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
